//! Umbrella crate re-exporting the full `espresso-verif` suite.
//!
//! See the individual crates for the real APIs:
//! [`sparc_isa`], [`sparc_asm`], [`sparc_iss`], [`rtl_sim`], [`leon3_model`],
//! [`fault_inject`], [`workloads`], [`analysis`], [`correlation`].

#![forbid(unsafe_code)]

pub use analysis;
pub use correlation;
pub use fault_inject;
pub use leon3_model;
pub use rtl_sim;
pub use sparc_asm;
pub use sparc_isa;
pub use sparc_iss;
pub use workloads;
