//! Assembler error types.

use std::fmt;

/// What went wrong while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// A token could not be recognised.
    Lex(String),
    /// A statement had the wrong shape.
    Parse(String),
    /// An unknown mnemonic or directive.
    UnknownMnemonic(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A symbol was referenced but never defined.
    UndefinedSymbol(String),
    /// A value did not fit its field (immediate, displacement, …).
    ValueOutOfRange {
        /// What the value was for.
        what: String,
        /// The offending value.
        value: i64,
    },
    /// A misaligned target (e.g. branch to a non-word address).
    Misaligned {
        /// What was misaligned.
        what: String,
        /// The offending address.
        addr: u32,
    },
    /// Segments overlap after `.org` manipulation.
    OverlappingSegments,
}

/// An assembler error with its source line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line, or 0 for whole-file errors.
    pub line: usize,
    /// The error detail.
    pub kind: AsmErrorKind,
}

impl AsmError {
    pub(crate) fn new(line: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, kind }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: ", self.line)?;
        }
        match &self.kind {
            AsmErrorKind::Lex(msg) => write!(f, "lexical error: {msg}"),
            AsmErrorKind::Parse(msg) => write!(f, "parse error: {msg}"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic or directive `{m}`"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::ValueOutOfRange { what, value } => {
                write!(f, "value {value} out of range for {what}")
            }
            AsmErrorKind::Misaligned { what, addr } => {
                write!(f, "misaligned {what} at {addr:#010x}")
            }
            AsmErrorKind::OverlappingSegments => write!(f, "overlapping segments"),
        }
    }
}

impl std::error::Error for AsmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::new(7, AsmErrorKind::UndefinedSymbol("foo".into()));
        assert_eq!(e.to_string(), "line 7: undefined symbol `foo`");
    }

    #[test]
    fn display_omits_zero_line() {
        let e = AsmError::new(0, AsmErrorKind::OverlappingSegments);
        assert_eq!(e.to_string(), "overlapping segments");
    }
}
