//! Statement parser: one source line → zero or more statements.

use crate::error::{AsmError, AsmErrorKind};
use crate::expr::Expr;
use crate::lexer::Token;
use sparc_isa::{Cond, Opcode, Reg};

/// Second operand with a possibly unresolved immediate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum POp2 {
    Reg(Reg),
    Imm(Expr),
}

/// A parsed instruction with unresolved expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum PInsn {
    Alu {
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        op2: POp2,
    },
    Mem {
        op: Opcode,
        rd: Reg,
        rs1: Reg,
        op2: POp2,
    },
    Branch {
        cond: Cond,
        annul: bool,
        target: Expr,
    },
    Call {
        target: Expr,
    },
    Sethi {
        rd: Reg,
        imm: Expr,
    },
    Ticc {
        cond: Cond,
        rs1: Reg,
        op2: POp2,
    },
    Unimp {
        imm: Expr,
    },
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Stmt {
    Label(String),
    Equ(String, Expr),
    Org(Expr),
    Align(Expr),
    Data { width: u8, values: Vec<Expr> },
    Space(Expr),
    Ascii { text: String, nul: bool },
    Insn(PInsn),
}

impl Stmt {
    /// Size in bytes contributed to the image (labels/equ are zero;
    /// `.org`/`.align` are handled by the location-counter logic).
    pub(crate) fn size(&self) -> u32 {
        match self {
            Stmt::Insn(_) => 4,
            Stmt::Data { width, values } => u32::from(*width) * values.len() as u32,
            Stmt::Ascii { text, nul } => text.len() as u32 + u32::from(*nul),
            _ => 0,
        }
    }
}

struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::new(self.line, AsmErrorKind::Parse(msg.into()))
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), AsmError> {
        match self.next() {
            Some(t) if t == token => Ok(()),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn parse_reg(&mut self) -> Result<Reg, AsmError> {
        match self.next() {
            Some(Token::Percent(name)) => {
                reg_by_name(name).ok_or_else(|| self.err(format!("unknown register `%{name}`")))
            }
            other => Err(self.err(format!("expected register, found {other:?}"))),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, AsmError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.next();
                    lhs = Expr::Add(Box::new(lhs), Box::new(self.parse_term()?));
                }
                Some(Token::Minus) => {
                    self.next();
                    lhs = Expr::Sub(Box::new(lhs), Box::new(self.parse_term()?));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr, AsmError> {
        let mut lhs = self.parse_primary()?;
        while let Some(Token::Star) = self.peek() {
            self.next();
            lhs = Expr::Mul(Box::new(lhs), Box::new(self.parse_primary()?));
        }
        Ok(lhs)
    }

    fn parse_primary(&mut self) -> Result<Expr, AsmError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Num(*n)),
            Some(Token::Ident(name)) => Ok(Expr::Sym(name.clone())),
            Some(Token::Dot) => Ok(Expr::Here),
            Some(Token::Minus) => Ok(Expr::Neg(Box::new(self.parse_primary()?))),
            Some(Token::LParen) => {
                let e = self.parse_expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Percent(op)) if op == "hi" || op == "lo" => {
                self.expect(&Token::LParen, "`(` after %hi/%lo")?;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(if op == "hi" {
                    Expr::Hi(Box::new(e))
                } else {
                    Expr::Lo(Box::new(e))
                })
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    /// Parse `%reg` or an immediate expression.
    fn parse_op2(&mut self) -> Result<POp2, AsmError> {
        if let Some(Token::Percent(name)) = self.peek() {
            if name != "hi" && name != "lo" {
                return Ok(POp2::Reg(self.parse_reg()?));
            }
        }
        Ok(POp2::Imm(self.parse_expr()?))
    }

    /// Parse a `[address]` operand: `[rs1]`, `[rs1 + op2]`, `[rs1 - imm]`,
    /// `[imm]`.
    fn parse_addr(&mut self) -> Result<(Reg, POp2), AsmError> {
        self.expect(&Token::LBracket, "`[`")?;
        let (rs1, op2) = if matches!(self.peek(), Some(Token::Percent(n)) if n != "hi" && n != "lo")
        {
            let rs1 = self.parse_reg()?;
            match self.peek() {
                Some(Token::Plus) => {
                    self.next();
                    (rs1, self.parse_op2()?)
                }
                Some(Token::Minus) => {
                    self.next();
                    let e = self.parse_expr()?;
                    (rs1, POp2::Imm(Expr::Neg(Box::new(e))))
                }
                _ => (rs1, POp2::Imm(Expr::Num(0))),
            }
        } else {
            (Reg::G0, POp2::Imm(self.parse_expr()?))
        };
        self.expect(&Token::RBracket, "`]`")?;
        Ok((rs1, op2))
    }
}

fn reg_by_name(name: &str) -> Option<Reg> {
    let reg = match name {
        "sp" => Reg::SP,
        "fp" => Reg::FP,
        _ => {
            let (bank, num) = name.split_at(1);
            let n: u8 = num.parse().ok()?;
            match bank {
                "g" if n < 8 => Reg::g(n),
                "o" if n < 8 => Reg::o(n),
                "l" if n < 8 => Reg::l(n),
                "i" if n < 8 => Reg::i(n),
                "r" if n < 32 => Reg::new(n),
                _ => return None,
            }
        }
    };
    Some(reg)
}

fn branch_cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "b" | "ba" => Cond::Always,
        "bn" => Cond::Never,
        "bne" | "bnz" => Cond::NotEqual,
        "be" | "bz" => Cond::Equal,
        "bg" => Cond::Greater,
        "ble" => Cond::LessOrEqual,
        "bge" => Cond::GreaterOrEqual,
        "bl" => Cond::Less,
        "bgu" => Cond::GreaterUnsigned,
        "bleu" => Cond::LessOrEqualUnsigned,
        "bcc" | "bgeu" => Cond::CarryClear,
        "bcs" | "blu" => Cond::CarrySet,
        "bpos" => Cond::Positive,
        "bneg" => Cond::Negative,
        "bvc" => Cond::OverflowClear,
        "bvs" => Cond::OverflowSet,
        _ => return None,
    })
}

fn trap_cond(mnemonic: &str) -> Option<Cond> {
    Some(match mnemonic {
        "ta" => Cond::Always,
        "tn" => Cond::Never,
        "tne" => Cond::NotEqual,
        "te" => Cond::Equal,
        "tg" => Cond::Greater,
        "tle" => Cond::LessOrEqual,
        "tge" => Cond::GreaterOrEqual,
        "tl" => Cond::Less,
        "tgu" => Cond::GreaterUnsigned,
        "tleu" => Cond::LessOrEqualUnsigned,
        "tcc" => Cond::CarryClear,
        "tcs" => Cond::CarrySet,
        "tpos" => Cond::Positive,
        "tneg" => Cond::Negative,
        "tvc" => Cond::OverflowClear,
        "tvs" => Cond::OverflowSet,
        _ => return None,
    })
}

fn alu_opcode(mnemonic: &str) -> Option<Opcode> {
    use Opcode::*;
    Some(match mnemonic {
        "add" => Add,
        "addcc" => Addcc,
        "addx" => Addx,
        "addxcc" => Addxcc,
        "sub" => Sub,
        "subcc" => Subcc,
        "subx" => Subx,
        "subxcc" => Subxcc,
        "taddcc" => Taddcc,
        "tsubcc" => Tsubcc,
        "taddcctv" => TaddccTv,
        "tsubcctv" => TsubccTv,
        "and" => And,
        "andcc" => Andcc,
        "andn" => Andn,
        "andncc" => Andncc,
        "or" => Or,
        "orcc" => Orcc,
        "orn" => Orn,
        "orncc" => Orncc,
        "xor" => Xor,
        "xorcc" => Xorcc,
        "xnor" => Xnor,
        "xnorcc" => Xnorcc,
        "sll" => Sll,
        "srl" => Srl,
        "sra" => Sra,
        "mulscc" => Mulscc,
        "umul" => Umul,
        "umulcc" => Umulcc,
        "smul" => Smul,
        "smulcc" => Smulcc,
        "udiv" => Udiv,
        "udivcc" => Udivcc,
        "sdiv" => Sdiv,
        "sdivcc" => Sdivcc,
        "save" => Save,
        "restore" => Restore,
        _ => return None,
    })
}

fn mem_opcode(mnemonic: &str) -> Option<Opcode> {
    use Opcode::*;
    Some(match mnemonic {
        "ld" => Ld,
        "ldub" => Ldub,
        "lduh" => Lduh,
        "ldd" => Ldd,
        "ldsb" => Ldsb,
        "ldsh" => Ldsh,
        "st" => St,
        "stb" => Stb,
        "sth" => Sth,
        "std" => Std,
        "ldstub" => Ldstub,
        "swap" => Swap,
        _ => return None,
    })
}

/// Parse the token stream of one line into statements.
pub(crate) fn parse_line(tokens: &[Token], line: usize) -> Result<Vec<Stmt>, AsmError> {
    let mut stmts = Vec::new();
    let mut cur = Cursor {
        tokens,
        pos: 0,
        line,
    };

    // Leading labels: `name:` (possibly several).
    while cur.tokens.len() >= cur.pos + 2 {
        if let (Some(Token::Ident(name)), Some(Token::Colon)) =
            (cur.tokens.get(cur.pos), cur.tokens.get(cur.pos + 1))
        {
            if name.starts_with('.') {
                break;
            }
            stmts.push(Stmt::Label(name.clone()));
            cur.pos += 2;
        } else {
            break;
        }
    }
    if cur.at_end() {
        return Ok(stmts);
    }

    // `name = expr` symbol definition.
    if let (Some(Token::Ident(name)), Some(Token::Equals)) =
        (cur.tokens.get(cur.pos), cur.tokens.get(cur.pos + 1))
    {
        let name = name.clone();
        cur.pos += 2;
        let value = cur.parse_expr()?;
        stmts.push(Stmt::Equ(name, value));
        expect_line_end(&cur)?;
        return Ok(stmts);
    }

    let head = match cur.next() {
        Some(Token::Ident(name)) => name.clone(),
        other => return Err(cur.err(format!("expected mnemonic, found {other:?}"))),
    };

    let stmt = parse_mnemonic(&head, &mut cur)?;
    stmts.extend(stmt);
    expect_line_end(&cur)?;
    Ok(stmts)
}

fn expect_line_end(cur: &Cursor<'_>) -> Result<(), AsmError> {
    if cur.at_end() {
        Ok(())
    } else {
        Err(cur.err(format!("trailing tokens starting at {:?}", cur.peek())))
    }
}

fn parse_mnemonic(head: &str, cur: &mut Cursor<'_>) -> Result<Vec<Stmt>, AsmError> {
    use PInsn::*;

    // Directives.
    match head {
        ".org" => return Ok(vec![Stmt::Org(cur.parse_expr()?)]),
        ".align" => return Ok(vec![Stmt::Align(cur.parse_expr()?)]),
        ".word" | ".half" | ".byte" => {
            let width = match head {
                ".word" => 4,
                ".half" => 2,
                _ => 1,
            };
            let mut values = vec![cur.parse_expr()?];
            while matches!(cur.peek(), Some(Token::Comma)) {
                cur.next();
                values.push(cur.parse_expr()?);
            }
            return Ok(vec![Stmt::Data { width, values }]);
        }
        ".space" | ".skip" => return Ok(vec![Stmt::Space(cur.parse_expr()?)]),
        ".ascii" | ".asciz" => {
            let text = match cur.next() {
                Some(Token::Str(s)) => s.clone(),
                other => return Err(cur.err(format!("expected string, found {other:?}"))),
            };
            return Ok(vec![Stmt::Ascii {
                text,
                nul: head == ".asciz",
            }]);
        }
        ".equ" | ".set" => {
            let name = match cur.next() {
                Some(Token::Ident(n)) => n.clone(),
                other => return Err(cur.err(format!("expected symbol name, found {other:?}"))),
            };
            cur.expect(&Token::Comma, "`,`")?;
            let value = cur.parse_expr()?;
            return Ok(vec![Stmt::Equ(name, value)]);
        }
        ".global" | ".globl" | ".text" | ".data" => {
            // Accepted for source compatibility; the flat image model does
            // not need them. Consume the rest of the line.
            cur.pos = cur.tokens.len();
            return Ok(vec![]);
        }
        _ if head.starts_with('.') => {
            return Err(AsmError::new(
                cur.line,
                AsmErrorKind::UnknownMnemonic(head.to_string()),
            ));
        }
        _ => {}
    }

    // Branches (with optional `,a` annul suffix lexed as Comma + Ident).
    if let Some(cond) = branch_cond(head) {
        let mut annul = false;
        if matches!(cur.peek(), Some(Token::Comma)) {
            cur.next();
            match cur.next() {
                Some(Token::Ident(a)) if a == "a" => annul = true,
                other => return Err(cur.err(format!("expected `a` after `,`, found {other:?}"))),
            }
        }
        let target = cur.parse_expr()?;
        return Ok(vec![Stmt::Insn(Branch {
            cond,
            annul,
            target,
        })]);
    }

    // Traps.
    if let Some(cond) = trap_cond(head) {
        let (rs1, op2) = if matches!(cur.peek(), Some(Token::Percent(n)) if n != "hi" && n != "lo")
        {
            let rs1 = cur.parse_reg()?;
            if matches!(cur.peek(), Some(Token::Plus)) {
                cur.next();
                (rs1, cur.parse_op2()?)
            } else {
                (rs1, POp2::Imm(Expr::Num(0)))
            }
        } else {
            (Reg::G0, POp2::Imm(cur.parse_expr()?))
        };
        return Ok(vec![Stmt::Insn(Ticc { cond, rs1, op2 })]);
    }

    // Plain ALU three-operand form.
    if let Some(op) = alu_opcode(head) {
        // `save`/`restore` with no operands default to %g0, %g0, %g0.
        if (op == Opcode::Save || op == Opcode::Restore) && cur.at_end() {
            return Ok(vec![Stmt::Insn(Alu {
                op,
                rd: Reg::G0,
                rs1: Reg::G0,
                op2: POp2::Reg(Reg::G0),
            })]);
        }
        let rs1 = cur.parse_reg()?;
        cur.expect(&Token::Comma, "`,`")?;
        let op2 = cur.parse_op2()?;
        cur.expect(&Token::Comma, "`,`")?;
        let rd = cur.parse_reg()?;
        return Ok(vec![Stmt::Insn(Alu { op, rd, rs1, op2 })]);
    }

    // Memory operations.
    if let Some(op) = mem_opcode(head) {
        if op.writes_memory() && op != Opcode::Ldstub && op != Opcode::Swap {
            let rd = cur.parse_reg()?;
            cur.expect(&Token::Comma, "`,`")?;
            let (rs1, op2) = cur.parse_addr()?;
            return Ok(vec![Stmt::Insn(Mem { op, rd, rs1, op2 })]);
        }
        let (rs1, op2) = cur.parse_addr()?;
        cur.expect(&Token::Comma, "`,`")?;
        let rd = cur.parse_reg()?;
        return Ok(vec![Stmt::Insn(Mem { op, rd, rs1, op2 })]);
    }

    // Everything else: jumps, special registers and synthetic instructions.
    match head {
        "sethi" => {
            let imm = cur.parse_expr()?;
            cur.expect(&Token::Comma, "`,`")?;
            let rd = cur.parse_reg()?;
            Ok(vec![Stmt::Insn(Sethi { rd, imm })])
        }
        "unimp" => {
            let imm = if cur.at_end() {
                Expr::Num(0)
            } else {
                cur.parse_expr()?
            };
            Ok(vec![Stmt::Insn(Unimp { imm })])
        }
        "call" => Ok(vec![Stmt::Insn(Call {
            target: cur.parse_expr()?,
        })]),
        "jmpl" => {
            let (rs1, op2) = parse_jmpl_addr(cur)?;
            cur.expect(&Token::Comma, "`,`")?;
            let rd = cur.parse_reg()?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Jmpl,
                rd,
                rs1,
                op2,
            })])
        }
        "jmp" => {
            let (rs1, op2) = parse_jmpl_addr(cur)?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Jmpl,
                rd: Reg::G0,
                rs1,
                op2,
            })])
        }
        "rett" => {
            let (rs1, op2) = parse_jmpl_addr(cur)?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Rett,
                rd: Reg::G0,
                rs1,
                op2,
            })])
        }
        "flush" => {
            let (rs1, op2) = parse_jmpl_addr(cur)?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Flush,
                rd: Reg::G0,
                rs1,
                op2,
            })])
        }
        "ret" => Ok(vec![Stmt::Insn(Alu {
            op: Opcode::Jmpl,
            rd: Reg::G0,
            rs1: Reg::I7,
            op2: POp2::Imm(Expr::Num(8)),
        })]),
        "retl" => Ok(vec![Stmt::Insn(Alu {
            op: Opcode::Jmpl,
            rd: Reg::G0,
            rs1: Reg::O7,
            op2: POp2::Imm(Expr::Num(8)),
        })]),
        "nop" => Ok(vec![Stmt::Insn(Sethi {
            rd: Reg::G0,
            imm: Expr::Num(0),
        })]),
        "halt" => Ok(vec![Stmt::Insn(Ticc {
            cond: Cond::Always,
            rs1: Reg::G0,
            op2: POp2::Imm(Expr::Num(0)),
        })]),
        "mov" => {
            // `mov op2, rd`, plus the special-register forms
            // `mov %y, rd` and `mov rs1, %y`.
            if let Some(Token::Percent(n)) = cur.peek() {
                if n == "y" || n == "psr" || n == "wim" || n == "tbr" {
                    let op = match n.as_str() {
                        "y" => Opcode::RdY,
                        "psr" => Opcode::RdPsr,
                        "wim" => Opcode::RdWim,
                        _ => Opcode::RdTbr,
                    };
                    cur.next();
                    cur.expect(&Token::Comma, "`,`")?;
                    let rd = cur.parse_reg()?;
                    return Ok(vec![Stmt::Insn(Alu {
                        op,
                        rd,
                        rs1: Reg::G0,
                        op2: POp2::Reg(Reg::G0),
                    })]);
                }
            }
            let op2 = cur.parse_op2()?;
            cur.expect(&Token::Comma, "`,`")?;
            if let Some(Token::Percent(n)) = cur.peek() {
                if n == "y" || n == "psr" || n == "wim" || n == "tbr" {
                    let op = match n.as_str() {
                        "y" => Opcode::WrY,
                        "psr" => Opcode::WrPsr,
                        "wim" => Opcode::WrWim,
                        _ => Opcode::WrTbr,
                    };
                    cur.next();
                    let rs1 = match op2 {
                        POp2::Reg(r) => r,
                        POp2::Imm(_) => {
                            return Err(cur.err("mov to special register needs a register source"))
                        }
                    };
                    return Ok(vec![Stmt::Insn(Alu {
                        op,
                        rd: Reg::G0,
                        rs1,
                        op2: POp2::Reg(Reg::G0),
                    })]);
                }
            }
            let rd = cur.parse_reg()?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Or,
                rd,
                rs1: Reg::G0,
                op2,
            })])
        }
        "rd" => {
            let src = match cur.next() {
                Some(Token::Percent(n)) => n.clone(),
                other => return Err(cur.err(format!("expected special register, found {other:?}"))),
            };
            cur.expect(&Token::Comma, "`,`")?;
            let rd = cur.parse_reg()?;
            let (op, rs1) = match src.as_str() {
                "y" => (Opcode::RdY, Reg::G0),
                "psr" => (Opcode::RdPsr, Reg::G0),
                "wim" => (Opcode::RdWim, Reg::G0),
                "tbr" => (Opcode::RdTbr, Reg::G0),
                other => {
                    let n: u8 = other
                        .strip_prefix("asr")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| cur.err(format!("unknown special register %{other}")))?;
                    (Opcode::RdAsr, Reg::new(n))
                }
            };
            Ok(vec![Stmt::Insn(Alu {
                op,
                rd,
                rs1,
                op2: POp2::Reg(Reg::G0),
            })])
        }
        "wr" => {
            let rs1 = cur.parse_reg()?;
            cur.expect(&Token::Comma, "`,`")?;
            let op2 = cur.parse_op2()?;
            cur.expect(&Token::Comma, "`,`")?;
            let dst = match cur.next() {
                Some(Token::Percent(n)) => n.clone(),
                other => return Err(cur.err(format!("expected special register, found {other:?}"))),
            };
            let (op, rd) = match dst.as_str() {
                "y" => (Opcode::WrY, Reg::G0),
                "psr" => (Opcode::WrPsr, Reg::G0),
                "wim" => (Opcode::WrWim, Reg::G0),
                "tbr" => (Opcode::WrTbr, Reg::G0),
                other => {
                    let n: u8 = other
                        .strip_prefix("asr")
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| cur.err(format!("unknown special register %{other}")))?;
                    (Opcode::WrAsr, Reg::new(n))
                }
            };
            Ok(vec![Stmt::Insn(Alu { op, rd, rs1, op2 })])
        }
        "set" => {
            let value = cur.parse_expr()?;
            cur.expect(&Token::Comma, "`,`")?;
            let rd = cur.parse_reg()?;
            // Always expanded to sethi+or so that sizes are independent of
            // forward-reference values.
            Ok(vec![
                Stmt::Insn(Sethi {
                    rd,
                    imm: Expr::Hi(Box::new(value.clone())),
                }),
                Stmt::Insn(Alu {
                    op: Opcode::Or,
                    rd,
                    rs1: rd,
                    op2: POp2::Imm(Expr::Lo(Box::new(value))),
                }),
            ])
        }
        "cmp" => {
            let rs1 = cur.parse_reg()?;
            cur.expect(&Token::Comma, "`,`")?;
            let op2 = cur.parse_op2()?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Subcc,
                rd: Reg::G0,
                rs1,
                op2,
            })])
        }
        "tst" => {
            let rs1 = cur.parse_reg()?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Orcc,
                rd: Reg::G0,
                rs1,
                op2: POp2::Reg(Reg::G0),
            })])
        }
        "clr" => {
            if matches!(cur.peek(), Some(Token::LBracket)) {
                let (rs1, op2) = cur.parse_addr()?;
                return Ok(vec![Stmt::Insn(Mem {
                    op: Opcode::St,
                    rd: Reg::G0,
                    rs1,
                    op2,
                })]);
            }
            let rd = cur.parse_reg()?;
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Or,
                rd,
                rs1: Reg::G0,
                op2: POp2::Reg(Reg::G0),
            })])
        }
        "inc" | "dec" => {
            let op = if head == "inc" {
                Opcode::Add
            } else {
                Opcode::Sub
            };
            let first = cur.parse_op2()?;
            if matches!(cur.peek(), Some(Token::Comma)) {
                cur.next();
                let rd = cur.parse_reg()?;
                Ok(vec![Stmt::Insn(Alu {
                    op,
                    rd,
                    rs1: rd,
                    op2: first,
                })])
            } else {
                match first {
                    POp2::Reg(rd) => Ok(vec![Stmt::Insn(Alu {
                        op,
                        rd,
                        rs1: rd,
                        op2: POp2::Imm(Expr::Num(1)),
                    })]),
                    POp2::Imm(_) => Err(cur.err("inc/dec needs a register")),
                }
            }
        }
        "neg" => {
            let rs = cur.parse_reg()?;
            let rd = if matches!(cur.peek(), Some(Token::Comma)) {
                cur.next();
                cur.parse_reg()?
            } else {
                rs
            };
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Sub,
                rd,
                rs1: Reg::G0,
                op2: POp2::Reg(rs),
            })])
        }
        "not" => {
            let rs = cur.parse_reg()?;
            let rd = if matches!(cur.peek(), Some(Token::Comma)) {
                cur.next();
                cur.parse_reg()?
            } else {
                rs
            };
            Ok(vec![Stmt::Insn(Alu {
                op: Opcode::Xnor,
                rd,
                rs1: rs,
                op2: POp2::Reg(Reg::G0),
            })])
        }
        other => Err(AsmError::new(
            cur.line,
            AsmErrorKind::UnknownMnemonic(other.to_string()),
        )),
    }
}

/// Parse a jmpl-style address: `rs1`, `rs1 + op2`, `rs1 - imm` or `imm`,
/// with or without brackets.
fn parse_jmpl_addr(cur: &mut Cursor<'_>) -> Result<(Reg, POp2), AsmError> {
    if matches!(cur.peek(), Some(Token::LBracket)) {
        return cur.parse_addr();
    }
    if matches!(cur.peek(), Some(Token::Percent(n)) if n != "hi" && n != "lo") {
        let rs1 = cur.parse_reg()?;
        match cur.peek() {
            Some(Token::Plus) => {
                cur.next();
                Ok((rs1, cur.parse_op2()?))
            }
            Some(Token::Minus) => {
                cur.next();
                let e = cur.parse_expr()?;
                Ok((rs1, POp2::Imm(Expr::Neg(Box::new(e)))))
            }
            _ => Ok((rs1, POp2::Imm(Expr::Num(0)))),
        }
    } else {
        Ok((Reg::G0, POp2::Imm(cur.parse_expr()?)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex_line;

    fn parse(src: &str) -> Vec<Stmt> {
        parse_line(&lex_line(src, 1).unwrap(), 1).unwrap()
    }

    #[test]
    fn parses_label_and_insn() {
        let stmts = parse("loop: add %g1, 4, %g2");
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0], Stmt::Label("loop".into()));
        assert!(matches!(
            &stmts[1],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::Add,
                ..
            })
        ));
    }

    #[test]
    fn parses_set_as_two_instructions() {
        let stmts = parse("set 0x40000000, %g1");
        assert_eq!(stmts.len(), 2);
        assert!(matches!(&stmts[0], Stmt::Insn(PInsn::Sethi { .. })));
        assert!(matches!(
            &stmts[1],
            Stmt::Insn(PInsn::Alu { op: Opcode::Or, .. })
        ));
    }

    #[test]
    fn parses_annulled_branch() {
        let stmts = parse("bne,a loop");
        match &stmts[0] {
            Stmt::Insn(PInsn::Branch { cond, annul, .. }) => {
                assert_eq!(*cond, Cond::NotEqual);
                assert!(annul);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_memory_forms() {
        assert!(matches!(
            &parse("ld [%g2 + 8], %o0")[0],
            Stmt::Insn(PInsn::Mem { op: Opcode::Ld, .. })
        ));
        assert!(matches!(
            &parse("st %o0, [%sp - 4]")[0],
            Stmt::Insn(PInsn::Mem { op: Opcode::St, .. })
        ));
        assert!(matches!(
            &parse("swap [%g2], %o0")[0],
            Stmt::Insn(PInsn::Mem {
                op: Opcode::Swap,
                ..
            })
        ));
        assert!(matches!(
            &parse("ldstub [%g2], %o0")[0],
            Stmt::Insn(PInsn::Mem {
                op: Opcode::Ldstub,
                ..
            })
        ));
    }

    #[test]
    fn parses_directives() {
        assert!(matches!(&parse(".org 0x100")[0], Stmt::Org(_)));
        assert!(matches!(
            &parse(".word 1, 2, 3")[0],
            Stmt::Data { width: 4, .. }
        ));
        assert!(matches!(
            &parse(".byte 255")[0],
            Stmt::Data { width: 1, .. }
        ));
        assert!(matches!(&parse(".space 64")[0], Stmt::Space(_)));
        assert!(matches!(
            &parse(".asciz \"hi\"")[0],
            Stmt::Ascii { nul: true, .. }
        ));
        assert!(parse(".global foo").is_empty());
        assert!(matches!(&parse("size = 4 * 16")[0], Stmt::Equ(..)));
    }

    #[test]
    fn parses_synthetics() {
        assert!(matches!(
            &parse("cmp %o0, 10")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::Subcc,
                ..
            })
        ));
        assert!(matches!(
            &parse("mov 5, %o0")[0],
            Stmt::Insn(PInsn::Alu { op: Opcode::Or, .. })
        ));
        assert!(matches!(
            &parse("mov %y, %o1")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::RdY,
                ..
            })
        ));
        assert!(matches!(
            &parse("mov %o1, %y")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::WrY,
                ..
            })
        ));
        assert!(matches!(
            &parse("retl")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::Jmpl,
                ..
            })
        ));
        assert!(matches!(&parse("halt")[0], Stmt::Insn(PInsn::Ticc { .. })));
        assert!(matches!(
            &parse("not %o2")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::Xnor,
                ..
            })
        ));
        assert!(matches!(
            &parse("inc %o3")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::Add,
                ..
            })
        ));
        assert!(matches!(
            &parse("dec 4, %o3")[0],
            Stmt::Insn(PInsn::Alu {
                op: Opcode::Sub,
                ..
            })
        ));
    }

    #[test]
    fn rejects_unknown_mnemonic() {
        let toks = lex_line("frobnicate %g1", 9).unwrap();
        let err = parse_line(&toks, 9).unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UnknownMnemonic(_)));
        assert_eq!(err.line, 9);
    }

    #[test]
    fn rejects_trailing_tokens() {
        let toks = lex_line("nop nop", 1).unwrap();
        assert!(parse_line(&toks, 1).is_err());
    }
}
