//! Loadable program images.

use std::collections::BTreeMap;

/// A contiguous block of bytes at a fixed load address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Load address of the first byte.
    pub base: u32,
    /// The raw bytes (big-endian words for code, as SPARC is big-endian).
    pub bytes: Vec<u8>,
}

impl Segment {
    /// The exclusive end address of this segment.
    pub fn end(&self) -> u32 {
        self.base + self.bytes.len() as u32
    }
}

/// A fully resolved program image: segments, entry point and symbol table.
///
/// Both the ISS ([`sparc-iss`](https://docs.rs/sparc-iss)) and the RTL
/// pipeline model load the same `Program`, which is what makes golden-run
/// comparison between the two levels meaningful.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The memory segments in ascending address order.
    pub segments: Vec<Segment>,
    /// The entry point (the `_start` label if defined, else the lowest
    /// segment base).
    pub entry: u32,
    /// All resolved labels/symbols.
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Look up a symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total number of bytes across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.bytes.len()).sum()
    }

    /// Whether the program has no content.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all `(address, byte)` pairs.
    pub fn bytes(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.segments.iter().flat_map(|s| {
            s.bytes
                .iter()
                .enumerate()
                .map(move |(i, &b)| (s.base + i as u32, b))
        })
    }

    /// Read a big-endian 32-bit word from the image, if fully covered.
    pub fn word(&self, addr: u32) -> Option<u32> {
        let end = addr.checked_add(4)?;
        let seg = self
            .segments
            .iter()
            .find(|s| addr >= s.base && end <= s.end())?;
        let off = (addr - seg.base) as usize;
        let b = &seg.bytes[off..off + 4];
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_reads_big_endian() {
        let program = Program {
            segments: vec![Segment {
                base: 0x100,
                bytes: vec![0xde, 0xad, 0xbe, 0xef],
            }],
            entry: 0x100,
            symbols: BTreeMap::new(),
        };
        assert_eq!(program.word(0x100), Some(0xdead_beef));
        assert_eq!(program.word(0x101), None);
        assert_eq!(program.word(0xff), None);
        assert_eq!(program.len(), 4);
        assert!(!program.is_empty());
    }

    #[test]
    fn bytes_iterates_with_addresses() {
        let program = Program {
            segments: vec![
                Segment {
                    base: 0x10,
                    bytes: vec![1, 2],
                },
                Segment {
                    base: 0x20,
                    bytes: vec![3],
                },
            ],
            entry: 0x10,
            symbols: BTreeMap::new(),
        };
        let all: Vec<(u32, u8)> = program.bytes().collect();
        assert_eq!(all, vec![(0x10, 1), (0x11, 2), (0x20, 3)]);
    }
}
