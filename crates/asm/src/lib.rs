//! Two-pass SPARC V8 macro assembler.
//!
//! The `espresso-verif` suite substitutes the proprietary EEMBC toolchain of
//! the reproduced paper with workloads written directly in SPARC V8 assembly;
//! this crate turns that assembly into loadable [`Program`] images for both
//! the ISS and the RTL model.
//!
//! # Supported syntax
//!
//! * All integer-unit instructions of [`sparc_isa`], in GNU `as` syntax.
//! * Synthetic instructions: `mov`, `set`, `cmp`, `tst`, `clr`, `inc`,
//!   `dec`, `neg`, `not`, `ret`, `retl`, `jmp`, `nop`, `halt` (= `ta 0`).
//! * Directives: `.org`, `.align`, `.word`, `.half`, `.byte`, `.space`,
//!   `.ascii`, `.asciz`, `.equ`/`=`, `.global` (accepted, ignored).
//! * Labels, forward references, `%hi(..)`/`%lo(..)`, `+`/`-`/`*`
//!   expressions and the location counter `.`.
//! * Comments with `!` or `#` to end of line.
//!
//! # Example
//!
//! ```
//! use sparc_asm::assemble;
//!
//! # fn main() -> Result<(), sparc_asm::AsmError> {
//! let program = assemble(
//!     r#"
//!         .org 0x40000000
//!     _start:
//!         set 10, %o0
//!     loop:
//!         subcc %o0, 1, %o0
//!         bne loop
//!          nop
//!         halt
//!     "#,
//! )?;
//! assert_eq!(program.entry, 0x4000_0000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembler;
mod error;
mod expr;
mod lexer;
mod listing;
mod parser;
mod program;

pub use assembler::assemble;
pub use error::{AsmError, AsmErrorKind};
pub use listing::listing;
pub use program::{Program, Segment};
