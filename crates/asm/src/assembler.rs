//! Two-pass assembly driver.

use crate::error::{AsmError, AsmErrorKind};
use crate::lexer::{lex_line, strip_comment};
use crate::parser::{parse_line, PInsn, POp2, Stmt};
use crate::program::{Program, Segment};
use sparc_isa::{Instr, Operand2, Reg};
use std::collections::BTreeMap;

/// Default load address when the source has no leading `.org` (the Leon3
/// RAM base).
pub(crate) const DEFAULT_ORG: u32 = 0x4000_0000;

/// Assemble SPARC V8 source text into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: lexical or syntax errors,
/// undefined/duplicate symbols, out-of-range immediates or displacements,
/// misaligned targets, or overlapping segments.
///
/// # Example
///
/// ```
/// use sparc_asm::assemble;
///
/// # fn main() -> Result<(), sparc_asm::AsmError> {
/// let program = assemble("_start: nop\n halt\n");
/// # program?;
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    // Parse everything first.
    let mut stmts: Vec<(usize, Stmt)> = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw_line);
        if line.trim().is_empty() {
            continue;
        }
        let tokens = lex_line(line, lineno)?;
        for stmt in parse_line(&tokens, lineno)? {
            stmts.push((lineno, stmt));
        }
    }

    // Pass 1: assign addresses to labels; evaluate `.equ`, `.org`,
    // `.align` and `.space` (these must not depend on forward references,
    // as in a classic two-pass assembler).
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut lc: u32 = DEFAULT_ORG;
    for (lineno, stmt) in &stmts {
        match stmt {
            Stmt::Label(name) => {
                if symbols.insert(name.clone(), lc).is_some() {
                    return Err(AsmError::new(
                        *lineno,
                        AsmErrorKind::DuplicateLabel(name.clone()),
                    ));
                }
            }
            Stmt::Equ(name, expr) => {
                let value = expr.eval(&symbols, lc, *lineno)? as u32;
                symbols.insert(name.clone(), value);
            }
            Stmt::Org(expr) => {
                lc = expr.eval(&symbols, lc, *lineno)? as u32;
            }
            Stmt::Align(expr) => {
                let align = expr.eval(&symbols, lc, *lineno)? as u32;
                if align == 0 || !align.is_power_of_two() {
                    return Err(AsmError::new(
                        *lineno,
                        AsmErrorKind::ValueOutOfRange {
                            what: ".align (power of two required)".into(),
                            value: i64::from(align),
                        },
                    ));
                }
                lc = lc.next_multiple_of(align);
            }
            Stmt::Space(expr) => {
                lc = lc.wrapping_add(expr.eval(&symbols, lc, *lineno)? as u32);
            }
            other => lc = lc.wrapping_add(other.size()),
        }
    }

    // Pass 2: emit bytes.
    let mut emitter = Emitter::new(DEFAULT_ORG);
    for (lineno, stmt) in &stmts {
        let lineno = *lineno;
        let here = emitter.lc;
        match stmt {
            Stmt::Label(_) | Stmt::Equ(..) => {}
            Stmt::Org(expr) => emitter.set_org(expr.eval(&symbols, here, lineno)? as u32),
            Stmt::Align(expr) => {
                let align = expr.eval(&symbols, here, lineno)? as u32;
                let target = here.next_multiple_of(align);
                emitter.pad_to(target);
            }
            Stmt::Space(expr) => {
                let n = expr.eval(&symbols, here, lineno)? as u32;
                emitter.pad_to(here + n);
            }
            Stmt::Data { width, values } => {
                for value in values {
                    let v = value.eval(&symbols, here, lineno)?;
                    match width {
                        4 => emitter.emit(&(v as u32).to_be_bytes()),
                        2 => {
                            check_range(v, -(1 << 15), (1 << 16) - 1, ".half", lineno)?;
                            emitter.emit(&(v as u16).to_be_bytes());
                        }
                        _ => {
                            check_range(v, -(1 << 7), (1 << 8) - 1, ".byte", lineno)?;
                            emitter.emit(&[v as u8]);
                        }
                    }
                }
            }
            Stmt::Ascii { text, nul } => {
                emitter.emit(text.as_bytes());
                if *nul {
                    emitter.emit(&[0]);
                }
            }
            Stmt::Insn(pinsn) => {
                let instr = resolve(pinsn, &symbols, here, lineno)?;
                emitter.emit(&instr.encode().to_be_bytes());
            }
        }
    }

    let segments = emitter.finish()?;
    let entry = symbols
        .get("_start")
        .copied()
        .or_else(|| segments.first().map(|s| s.base))
        .unwrap_or(DEFAULT_ORG);
    Ok(Program {
        segments,
        entry,
        symbols,
    })
}

fn check_range(v: i64, min: i64, max: i64, what: &str, line: usize) -> Result<(), AsmError> {
    if v < min || v > max {
        return Err(AsmError::new(
            line,
            AsmErrorKind::ValueOutOfRange {
                what: what.into(),
                value: v,
            },
        ));
    }
    Ok(())
}

fn resolve_op2(
    op2: &POp2,
    symbols: &BTreeMap<String, u32>,
    here: u32,
    line: usize,
) -> Result<Operand2, AsmError> {
    Ok(match op2 {
        POp2::Reg(r) => Operand2::Reg(*r),
        POp2::Imm(expr) => {
            let v = expr.eval(symbols, here, line)?;
            check_range(v, -4096, 4095, "simm13 immediate", line)?;
            Operand2::Imm(v as i32)
        }
    })
}

fn resolve(
    pinsn: &PInsn,
    symbols: &BTreeMap<String, u32>,
    here: u32,
    line: usize,
) -> Result<Instr, AsmError> {
    Ok(match pinsn {
        PInsn::Alu { op, rd, rs1, op2 } => Instr {
            op: *op,
            rd: *rd,
            rs1: *rs1,
            op2: resolve_op2(op2, symbols, here, line)?,
            ..Instr::default()
        },
        PInsn::Mem { op, rd, rs1, op2 } => Instr {
            op: *op,
            rd: *rd,
            rs1: *rs1,
            op2: resolve_op2(op2, symbols, here, line)?,
            ..Instr::default()
        },
        PInsn::Branch {
            cond,
            annul,
            target,
        } => {
            let target = target.eval(symbols, here, line)? as u32;
            if !target.is_multiple_of(4) {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::Misaligned {
                        what: "branch target".into(),
                        addr: target,
                    },
                ));
            }
            let disp = (i64::from(target) - i64::from(here)) / 4;
            check_range(disp, -(1 << 21), (1 << 21) - 1, "branch displacement", line)?;
            Instr::branch(*cond, *annul, disp as i32)
        }
        PInsn::Call { target } => {
            let target = target.eval(symbols, here, line)? as u32;
            if !target.is_multiple_of(4) {
                return Err(AsmError::new(
                    line,
                    AsmErrorKind::Misaligned {
                        what: "call target".into(),
                        addr: target,
                    },
                ));
            }
            let disp = (i64::from(target) - i64::from(here)) / 4;
            check_range(disp, -(1 << 29), (1 << 29) - 1, "call displacement", line)?;
            Instr::call(disp as i32)
        }
        PInsn::Sethi { rd, imm } => {
            let v = imm.eval(symbols, here, line)?;
            check_range(v, 0, (1 << 22) - 1, "sethi imm22", line)?;
            Instr::sethi(*rd, v as u32)
        }
        PInsn::Ticc { cond, rs1, op2 } => Instr {
            op: sparc_isa::Opcode::Ticc,
            cond: *cond,
            rs1: *rs1,
            op2: resolve_op2(op2, symbols, here, line)?,
            ..Instr::default()
        },
        PInsn::Unimp { imm } => {
            let v = imm.eval(symbols, here, line)?;
            check_range(v, 0, (1 << 22) - 1, "unimp const22", line)?;
            Instr {
                op: sparc_isa::Opcode::Unimp,
                rd: Reg::G0,
                imm22: v as u32,
                ..Instr::default()
            }
        }
    })
}

/// Accumulates bytes into segments, starting a fresh segment at each
/// `.org`.
struct Emitter {
    segments: Vec<Segment>,
    current: Option<Segment>,
    lc: u32,
}

impl Emitter {
    fn new(org: u32) -> Emitter {
        Emitter {
            segments: Vec::new(),
            current: None,
            lc: org,
        }
    }

    fn set_org(&mut self, addr: u32) {
        if let Some(seg) = self.current.take() {
            if !seg.bytes.is_empty() {
                self.segments.push(seg);
            }
        }
        self.lc = addr;
    }

    fn pad_to(&mut self, target: u32) {
        let gap = target.saturating_sub(self.lc) as usize;
        if gap > 0 {
            self.emit(&vec![0u8; gap]);
        }
    }

    fn emit(&mut self, bytes: &[u8]) {
        let seg = self.current.get_or_insert_with(|| Segment {
            base: self.lc,
            bytes: Vec::new(),
        });
        seg.bytes.extend_from_slice(bytes);
        self.lc = self.lc.wrapping_add(bytes.len() as u32);
    }

    fn finish(mut self) -> Result<Vec<Segment>, AsmError> {
        if let Some(seg) = self.current.take() {
            if !seg.bytes.is_empty() {
                self.segments.push(seg);
            }
        }
        self.segments.sort_by_key(|s| s.base);
        for pair in self.segments.windows(2) {
            if pair[0].end() > pair[1].base {
                return Err(AsmError::new(0, AsmErrorKind::OverlappingSegments));
            }
        }
        Ok(self.segments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_isa::decode;

    #[test]
    fn assembles_simple_loop() {
        let program = assemble(
            r#"
                .org 0x40000000
            _start:
                set 10, %o0
            loop:
                subcc %o0, 1, %o0
                bne loop
                 nop
                halt
            "#,
        )
        .unwrap();
        assert_eq!(program.entry, 0x4000_0000);
        assert_eq!(program.len(), 6 * 4);
        // The bne displacement should be -1 word (back to `loop`).
        let bne = decode(program.word(0x4000_000c).unwrap()).unwrap();
        assert_eq!(bne.disp, -1);
    }

    #[test]
    fn forward_references_resolve() {
        let program = assemble(
            r#"
            _start:
                call func
                 nop
                halt
            func:
                retl
                 nop
            "#,
        )
        .unwrap();
        let call = decode(program.word(program.entry).unwrap()).unwrap();
        assert_eq!(call.disp, 3); // 3 words forward to `func`
    }

    #[test]
    fn hi_lo_roundtrip_through_set() {
        let program = assemble(
            r#"
                .org 0x40000000
            _start:
                set data, %g1
                ld [%g1], %o0
                halt
                .align 8
            data:
                .word 0xcafebabe
            "#,
        )
        .unwrap();
        let data_addr = program.symbol("data").unwrap();
        let sethi = decode(program.word(program.entry).unwrap()).unwrap();
        let or = decode(program.word(program.entry + 4).unwrap()).unwrap();
        let rebuilt = (sethi.imm22 << 10)
            | match or.op2 {
                Operand2::Imm(v) => v as u32,
                _ => panic!(),
            };
        assert_eq!(rebuilt, data_addr);
        assert_eq!(program.word(data_addr), Some(0xcafe_babe));
    }

    #[test]
    fn data_directives_emit_big_endian() {
        let program = assemble(
            r#"
                .org 0x100
                .word 0x11223344
                .half 0x5566
                .byte 0x77, 0x88
                .asciz "ab"
            "#,
        )
        .unwrap();
        let bytes: Vec<u8> = program.bytes().map(|(_, b)| b).collect();
        assert_eq!(
            bytes,
            vec![0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, b'a', b'b', 0]
        );
    }

    #[test]
    fn equ_and_expressions() {
        let program = assemble(
            r#"
                n = 4
                .org 0x200
            _start:
                add %g0, n * 2 + 1, %o0
                halt
            "#,
        )
        .unwrap();
        let add = decode(program.word(0x200).unwrap()).unwrap();
        assert_eq!(add.op2, Operand2::Imm(9));
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = assemble("_start: call nowhere\n nop\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::UndefinedSymbol(_)));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn immediate_out_of_range_rejected() {
        let err = assemble("add %g0, 5000, %o0\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::ValueOutOfRange { .. }));
    }

    #[test]
    fn overlapping_segments_rejected() {
        let err = assemble(
            r#"
                .org 0x100
                .word 1, 2, 3, 4
                .org 0x104
                .word 5
            "#,
        )
        .unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::OverlappingSegments));
    }

    #[test]
    fn multiple_segments_sorted() {
        let program = assemble(
            r#"
                .org 0x2000
                .word 2
                .org 0x1000
                .word 1
            "#,
        )
        .unwrap();
        assert_eq!(program.segments.len(), 2);
        assert_eq!(program.segments[0].base, 0x1000);
        assert_eq!(program.segments[1].base, 0x2000);
    }

    #[test]
    fn align_pads_with_zeroes() {
        let program = assemble(
            r#"
                .org 0x100
                .byte 1
                .align 4
                .word 0xffffffff
            "#,
        )
        .unwrap();
        let bytes: Vec<u8> = program.bytes().map(|(_, b)| b).collect();
        assert_eq!(bytes, vec![1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff]);
    }

    #[test]
    fn location_counter_in_expressions() {
        let program = assemble(
            r#"
                .org 0x100
            here:
                .word .
            "#,
        )
        .unwrap();
        assert_eq!(program.word(0x100), Some(0x100));
    }
}
