//! Program listings: address / machine word / disassembly, with symbol
//! annotations — the `objdump -d` of the suite.

use crate::program::Program;
use sparc_isa::decode;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Render a full listing of a program image.
///
/// Every word-aligned word is disassembled through
/// [`sparc_isa::decode`]; words that are not valid instructions are
/// rendered as `.word` data. Labels from the symbol table annotate their
/// addresses, so the output reads like `objdump -d` against the original
/// source.
pub fn listing(program: &Program) -> String {
    // Reverse symbol map (several symbols may share an address).
    let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for (name, &addr) in &program.symbols {
        by_addr.entry(addr).or_default().push(name);
    }
    let mut out = String::new();
    for segment in &program.segments {
        let _ = writeln!(
            out,
            "segment {:#010x}..{:#010x} ({} bytes)",
            segment.base,
            segment.end(),
            segment.bytes.len()
        );
        let mut addr = segment.base;
        while addr + 4 <= segment.end() {
            if let Some(names) = by_addr.get(&addr) {
                for name in names {
                    let _ = writeln!(out, "{name}:");
                }
            }
            let word = program.word(addr).expect("aligned word inside segment");
            match decode(word) {
                Ok(instr) => {
                    let _ = writeln!(out, "  {addr:#010x}: {word:08x}    {instr}");
                }
                Err(_) => {
                    let _ = writeln!(out, "  {addr:#010x}: {word:08x}    .word {word:#010x}");
                }
            }
            addr += 4;
        }
        // Trailing unaligned bytes, if any.
        if addr < segment.end() {
            let rest: Vec<String> = (addr..segment.end())
                .map(|a| {
                    let off = (a - segment.base) as usize;
                    format!("{:02x}", segment.bytes[off])
                })
                .collect();
            let _ = writeln!(out, "  {addr:#010x}: .byte {}", rest.join(" "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembler::assemble;

    #[test]
    fn lists_instructions_with_labels() {
        let program = assemble(
            r#"
            _start:
                mov 3, %o0
            loop:
                subcc %o0, 1, %o0
                bne loop
                 nop
                halt
            "#,
        )
        .unwrap();
        let text = listing(&program);
        assert!(text.contains("_start:"), "{text}");
        assert!(text.contains("loop:"));
        assert!(text.contains("or %g0, 3, %o0"), "{text}");
        assert!(text.contains("subcc %o0, 1, %o0"));
        assert!(text.contains("bne -1"));
        assert!(text.contains("nop"));
        assert!(text.contains("ta 0"));
        assert!(text.contains("0x40000000"));
    }

    #[test]
    fn data_words_fall_back() {
        let program = assemble(
            r#"
                .org 0x100
                .word 0xffffffff    ! not a valid instruction
                .byte 1, 2, 3
            "#,
        )
        .unwrap();
        let text = listing(&program);
        assert!(text.contains(".word 0xffffffff"), "{text}");
        assert!(text.contains(".byte 01 02 03"), "{text}");
    }

    #[test]
    fn roundtrip_through_reassembly() {
        // Every disassembled instruction line must re-assemble to the same
        // word (listing syntax is assembler syntax, minus label targets).
        let program = assemble(
            "_start: add %g1, %g2, %g3\n st %g3, [%g1 + 8]\n ld [%g1], %o0\n sll %o0, 3, %o0\n halt\n",
        )
        .unwrap();
        let text = listing(&program);
        for line in text.lines().filter(|l| l.trim_start().starts_with("0x")) {
            let mut parts = line.trim_start().splitn(3, ' ');
            let _addr = parts.next().unwrap();
            let word = u32::from_str_radix(parts.next().unwrap().trim(), 16).unwrap();
            let asm_text = parts.next().unwrap().trim();
            if asm_text.starts_with(".word") {
                continue;
            }
            let reassembled = assemble(&format!(".org 0\n {asm_text}\n")).unwrap();
            assert_eq!(
                reassembled.word(0),
                Some(word),
                "listing line does not round-trip: {asm_text}"
            );
        }
    }
}
