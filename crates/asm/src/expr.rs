//! Assembler expressions: labels, numbers, `%hi`/`%lo`, arithmetic and the
//! location counter.

use crate::error::{AsmError, AsmErrorKind};
use std::collections::BTreeMap;

/// An unresolved expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Expr {
    /// Integer literal.
    Num(i64),
    /// Symbol reference.
    Sym(String),
    /// The location counter `.` (address of the current statement).
    Here,
    /// `%hi(e)` — bits 31:10 of the value, for `sethi`.
    Hi(Box<Expr>),
    /// `%lo(e)` — bits 9:0 of the value.
    Lo(Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluate against a symbol table and the current location counter.
    pub(crate) fn eval(
        &self,
        symbols: &BTreeMap<String, u32>,
        here: u32,
        line: usize,
    ) -> Result<i64, AsmError> {
        Ok(match self {
            Expr::Num(n) => *n,
            Expr::Sym(name) => {
                i64::from(*symbols.get(name).ok_or_else(|| {
                    AsmError::new(line, AsmErrorKind::UndefinedSymbol(name.clone()))
                })?)
            }
            Expr::Here => i64::from(here),
            Expr::Hi(e) => ((e.eval(symbols, here, line)? as u32) >> 10) as i64,
            Expr::Lo(e) => ((e.eval(symbols, here, line)? as u32) & 0x3ff) as i64,
            Expr::Neg(e) => -e.eval(symbols, here, line)?,
            Expr::Add(a, b) => a.eval(symbols, here, line)? + b.eval(symbols, here, line)?,
            Expr::Sub(a, b) => a.eval(symbols, here, line)? - b.eval(symbols, here, line)?,
            Expr::Mul(a, b) => a.eval(symbols, here, line)? * b.eval(symbols, here, line)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(pairs: &[(&str, u32)]) -> BTreeMap<String, u32> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn arithmetic() {
        let e = Expr::Add(
            Box::new(Expr::Mul(Box::new(Expr::Num(3)), Box::new(Expr::Num(4)))),
            Box::new(Expr::Neg(Box::new(Expr::Num(2)))),
        );
        assert_eq!(e.eval(&BTreeMap::new(), 0, 1).unwrap(), 10);
    }

    #[test]
    fn hi_lo_split_recombines() {
        let table = syms(&[("buf", 0x4001_2345)]);
        let hi = Expr::Hi(Box::new(Expr::Sym("buf".into())));
        let lo = Expr::Lo(Box::new(Expr::Sym("buf".into())));
        let h = hi.eval(&table, 0, 1).unwrap() as u32;
        let l = lo.eval(&table, 0, 1).unwrap() as u32;
        assert_eq!((h << 10) | l, 0x4001_2345);
        assert!(l < 1024);
    }

    #[test]
    fn here_is_location_counter() {
        let e = Expr::Sub(Box::new(Expr::Sym("end".into())), Box::new(Expr::Here));
        let table = syms(&[("end", 0x120)]);
        assert_eq!(e.eval(&table, 0x100, 1).unwrap(), 0x20);
    }

    #[test]
    fn undefined_symbol_errors_with_line() {
        let e = Expr::Sym("nope".into());
        let err = e.eval(&BTreeMap::new(), 0, 42).unwrap_err();
        assert_eq!(err.line, 42);
        assert!(matches!(err.kind, AsmErrorKind::UndefinedSymbol(_)));
    }
}
