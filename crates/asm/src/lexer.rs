//! Line-oriented tokeniser.

use crate::error::{AsmError, AsmErrorKind};

/// A lexical token within one source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    /// Identifier, mnemonic or directive (directives keep their leading `.`).
    Ident(String),
    /// `%`-prefixed register or operator name (`g1`, `sp`, `hi`, `lo`, …),
    /// stored without the `%`.
    Percent(String),
    /// Integer literal.
    Number(i64),
    /// A string literal (for `.ascii`).
    Str(String),
    /// Punctuation.
    Comma,
    Colon,
    Plus,
    Minus,
    Star,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Equals,
    /// The location-counter symbol `.` used inside expressions.
    Dot,
}

/// Tokenise one line (comments already stripped by the caller).
pub(crate) fn lex_line(line: &str, lineno: usize) -> Result<Vec<Token>, AsmError> {
    let mut tokens = Vec::new();
    let mut chars = line.char_indices().peekable();
    while let Some((start, c)) = chars.next() {
        match c {
            c if c.is_whitespace() => {}
            ',' => tokens.push(Token::Comma),
            ':' => tokens.push(Token::Colon),
            '+' => tokens.push(Token::Plus),
            '-' => tokens.push(Token::Minus),
            '*' => tokens.push(Token::Star),
            '[' => tokens.push(Token::LBracket),
            ']' => tokens.push(Token::RBracket),
            '(' => tokens.push(Token::LParen),
            ')' => tokens.push(Token::RParen),
            '=' => tokens.push(Token::Equals),
            '%' => {
                let mut name = String::new();
                while let Some(&(_, nc)) = chars.peek() {
                    if nc.is_alphanumeric() || nc == '_' {
                        name.push(nc);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(AsmError::new(
                        lineno,
                        AsmErrorKind::Lex("dangling `%`".into()),
                    ));
                }
                tokens.push(Token::Percent(name));
            }
            '"' => {
                let mut s = String::new();
                let mut closed = false;
                for (_, nc) in chars.by_ref() {
                    if nc == '"' {
                        closed = true;
                        break;
                    }
                    s.push(nc);
                }
                if !closed {
                    return Err(AsmError::new(
                        lineno,
                        AsmErrorKind::Lex("unterminated string".into()),
                    ));
                }
                tokens.push(Token::Str(s));
            }
            '0'..='9' => {
                let mut end = start + 1;
                let hex = c == '0' && matches!(chars.peek(), Some(&(_, 'x') | &(_, 'X')));
                if hex {
                    chars.next();
                    end += 1;
                }
                while let Some(&(i, nc)) = chars.peek() {
                    if nc.is_ascii_hexdigit() && (hex || nc.is_ascii_digit()) {
                        end = i + nc.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                let text = &line[start..end];
                let value = if hex {
                    i64::from_str_radix(&text[2..], 16)
                } else {
                    text.parse()
                }
                .map_err(|_| {
                    AsmError::new(lineno, AsmErrorKind::Lex(format!("bad number `{text}`")))
                })?;
                tokens.push(Token::Number(value));
            }
            '.' => {
                // `.word` directive vs the bare location counter `.`.
                let is_ident = matches!(chars.peek(), Some(&(_, nc)) if nc.is_alphabetic());
                if is_ident {
                    let mut name = String::from(".");
                    while let Some(&(_, nc)) = chars.peek() {
                        if nc.is_alphanumeric() || nc == '_' {
                            name.push(nc);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token::Ident(name));
                } else {
                    tokens.push(Token::Dot);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::from(c);
                while let Some(&(_, nc)) = chars.peek() {
                    if nc.is_alphanumeric() || nc == '_' {
                        name.push(nc);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(name));
            }
            other => {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::Lex(format!("unexpected character `{other}`")),
                ));
            }
        }
    }
    Ok(tokens)
}

/// Strip `!` / `#` comments from a line.
pub(crate) fn strip_comment(line: &str) -> &str {
    match line.find(['!', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_instruction_line() {
        let toks = lex_line("add %g1, -4, %g3", 1).unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("add".into()),
                Token::Percent("g1".into()),
                Token::Comma,
                Token::Minus,
                Token::Number(4),
                Token::Comma,
                Token::Percent("g3".into()),
            ]
        );
    }

    #[test]
    fn lexes_hex_and_brackets() {
        let toks = lex_line("ld [%g2 + 0x10], %o0", 1).unwrap();
        assert!(toks.contains(&Token::Number(0x10)));
        assert!(toks.contains(&Token::LBracket));
        assert!(toks.contains(&Token::RBracket));
    }

    #[test]
    fn lexes_directive_and_dot() {
        let toks = lex_line(".word . , 5", 1).unwrap();
        assert_eq!(toks[0], Token::Ident(".word".into()));
        assert_eq!(toks[1], Token::Dot);
    }

    #[test]
    fn strips_comments() {
        assert_eq!(
            strip_comment("add %g1, %g2, %g3 ! comment"),
            "add %g1, %g2, %g3 "
        );
        assert_eq!(strip_comment("# whole line"), "");
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex_line("add @", 3).is_err());
        assert!(lex_line("%", 3).is_err());
        assert!(lex_line(".ascii \"unterminated", 3).is_err());
    }

    #[test]
    fn lexes_hi_lo_operators() {
        let toks = lex_line("sethi %hi(buffer), %g1", 1).unwrap();
        assert_eq!(toks[1], Token::Percent("hi".into()));
        assert_eq!(toks[2], Token::LParen);
    }
}
