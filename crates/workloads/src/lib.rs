//! EEMBC-Autobench-like automotive workloads and the paper's two synthetic
//! benchmarks, as SPARC V8 assembly program generators.
//!
//! The reproduced paper drives its fault-injection campaigns with the
//! (proprietary) EEMBC Autobench suite plus two synthetic benchmarks. This
//! crate substitutes from-scratch implementations of the same documented
//! kernels:
//!
//! | benchmark  | kind       | kernel |
//! |------------|------------|--------|
//! | `a2time`   | automotive | angle-to-time conversion (tooth timing)    |
//! | `ttsprk`   | automotive | tooth-to-spark advance computation         |
//! | `rspeed`   | automotive | road-speed calculation with filtering      |
//! | `tblook`   | automotive | table lookup and interpolation             |
//! | `canrdr`   | automotive | CAN remote-data-request frame handling     |
//! | `puwmod`   | automotive | pulse-width modulation duty computation    |
//! | `basefp`   | automotive | basic fixed-point arithmetic               |
//! | `bitmnp`   | automotive | bit manipulation                           |
//! | `membench` | synthetic  | memory-intensive walker (low diversity)    |
//! | `intbench` | synthetic  | integer ALU chain (low diversity)          |
//!
//! Each automotive kernel ships **three input datasets** (for the paper's
//! input-variability study, Fig. 3), an **iteration count** knob (Fig. 4),
//! and an **init-phase excerpt** (the paper's "benchmark excerpts": the
//! initialization phase where input data is read and placed in memory,
//! with a deliberately small, fixed set of instruction types).
//!
//! # Example
//!
//! ```
//! use workloads::{Benchmark, Params};
//! use sparc_iss::{Iss, IssConfig, RunOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Benchmark::Rspeed.program(&Params::default());
//! let mut iss = Iss::new(IssConfig::default());
//! iss.load(&program);
//! assert!(matches!(iss.run(10_000_000), RunOutcome::Halted { .. }));
//! println!("diversity = {}", iss.stats().diversity());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod data;
pub mod irq;
mod kernels;
pub mod random;
mod runtime;

use sparc_asm::{assemble, Program};
use sparc_iss::{Iss, IssConfig, RunOutcome, RunStats};
use std::fmt;

/// Workload category (the paper's Table 1 column groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// EEMBC-Autobench-like automotive kernel.
    Automotive,
    /// Synthetic benchmark designed for extreme (low) diversity.
    Synthetic,
}

/// How many input datasets every benchmark ships (the paper's Fig. 3
/// input-variability study uses three per automotive kernel).
pub const DATASETS: usize = 3;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of outer iterations (the paper uses 2/4/10 in Fig. 4).
    pub iterations: u32,
    /// Input dataset index, `0..3` (Fig. 3 input-variability study).
    pub dataset: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            iterations: 2,
            dataset: 0,
        }
    }
}

impl Params {
    /// Params with a given iteration count (dataset 0).
    pub fn with_iterations(iterations: u32) -> Params {
        Params {
            iterations,
            dataset: 0,
        }
    }

    /// Params with a given dataset (2 iterations).
    pub fn with_dataset(dataset: usize) -> Params {
        assert!(dataset < DATASETS, "datasets are 0..3");
        Params {
            iterations: 2,
            dataset,
        }
    }
}

/// The benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Benchmark {
    A2time,
    Ttsprk,
    Rspeed,
    Tblook,
    Canrdr,
    Puwmod,
    Basefp,
    Bitmnp,
    Membench,
    Intbench,
}

impl Benchmark {
    /// All benchmarks.
    pub const ALL: [Benchmark; 10] = [
        Benchmark::A2time,
        Benchmark::Ttsprk,
        Benchmark::Rspeed,
        Benchmark::Tblook,
        Benchmark::Canrdr,
        Benchmark::Puwmod,
        Benchmark::Basefp,
        Benchmark::Bitmnp,
        Benchmark::Membench,
        Benchmark::Intbench,
    ];

    /// The four automotive benchmarks of the paper's Table 1 / Figs 5-6.
    pub const TABLE1_AUTOMOTIVE: [Benchmark; 4] = [
        Benchmark::Puwmod,
        Benchmark::Canrdr,
        Benchmark::Ttsprk,
        Benchmark::Rspeed,
    ];

    /// The two synthetic benchmarks of Table 1 / Figs 5-6.
    pub const TABLE1_SYNTHETIC: [Benchmark; 2] = [Benchmark::Membench, Benchmark::Intbench];

    /// Excerpt subset A of Fig. 3(a) — init phases with 8 instruction
    /// types.
    pub const EXCERPT_SUBSET_A: [Benchmark; 3] =
        [Benchmark::A2time, Benchmark::Ttsprk, Benchmark::Bitmnp];

    /// Excerpt subset B of Fig. 3(b) — init phases with 11 instruction
    /// types.
    pub const EXCERPT_SUBSET_B: [Benchmark; 3] =
        [Benchmark::Rspeed, Benchmark::Tblook, Benchmark::Basefp];

    /// The benchmark's name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::A2time => "a2time",
            Benchmark::Ttsprk => "ttsprk",
            Benchmark::Rspeed => "rspeed",
            Benchmark::Tblook => "tblook",
            Benchmark::Canrdr => "canrdr",
            Benchmark::Puwmod => "puwmod",
            Benchmark::Basefp => "basefp",
            Benchmark::Bitmnp => "bitmnp",
            Benchmark::Membench => "membench",
            Benchmark::Intbench => "intbench",
        }
    }

    /// Look a benchmark up by name.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// The benchmark's category.
    pub fn kind(self) -> Kind {
        match self {
            Benchmark::Membench | Benchmark::Intbench => Kind::Synthetic,
            _ => Kind::Automotive,
        }
    }

    /// Generate the full program (runtime + kernel + data).
    ///
    /// # Panics
    ///
    /// Panics if the generated assembly fails to assemble — that is a bug
    /// in the generator, not a runtime condition.
    pub fn program(self, params: &Params) -> Program {
        let source = self.source(params);
        match assemble(&source) {
            Ok(program) => program,
            Err(e) => panic!("workload {} failed to assemble: {e}", self.name()),
        }
    }

    /// The full assembly source (for inspection and debugging).
    pub fn source(self, params: &Params) -> String {
        assert!(params.dataset < 3, "datasets are 0..3");
        assert!(params.iterations >= 1, "at least one iteration");
        kernels::full(self, params)
    }

    /// Generate the init-phase excerpt (the paper's Fig. 3 subjects).
    ///
    /// # Panics
    ///
    /// Panics if the benchmark has no excerpt (only subsets A and B do) or
    /// the generated assembly fails to assemble.
    pub fn excerpt(self, dataset: usize) -> Program {
        assert!(dataset < 3, "datasets are 0..3");
        let source = kernels::excerpt(self, dataset)
            .unwrap_or_else(|| panic!("{} has no excerpt variant", self.name()));
        match assemble(&source) {
            Ok(program) => program,
            Err(e) => panic!("excerpt {} failed to assemble: {e}", self.name()),
        }
    }

    /// Whether an excerpt variant exists.
    pub fn has_excerpt(self) -> bool {
        Benchmark::EXCERPT_SUBSET_A.contains(&self) || Benchmark::EXCERPT_SUBSET_B.contains(&self)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Characterization {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Total executed instructions.
    pub total: u64,
    /// Instructions through the integer unit.
    pub iu: u64,
    /// Memory instructions.
    pub memory: u64,
    /// Instruction diversity (unique opcodes).
    pub diversity: usize,
    /// Full run statistics, for deeper analysis.
    pub stats: RunStats,
}

/// Run a benchmark on the ISS and produce its Table 1 row.
///
/// # Panics
///
/// Panics if the benchmark fails to halt within a generous budget — that
/// would be a workload bug.
pub fn characterize(benchmark: Benchmark, params: &Params) -> Characterization {
    let program = benchmark.program(params);
    let mut iss = Iss::new(IssConfig::default());
    iss.load(&program);
    let outcome = iss.run(100_000_000);
    assert!(
        matches!(outcome, RunOutcome::Halted { .. }),
        "{benchmark} did not halt: {outcome:?}"
    );
    let stats = iss.stats().clone();
    Characterization {
        benchmark,
        total: stats.instructions,
        iu: stats.iu_instructions,
        memory: stats.memory_instructions,
        diversity: stats.diversity(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::by_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::by_name("nope"), None);
    }

    #[test]
    fn kinds_partition() {
        assert_eq!(
            Benchmark::ALL
                .iter()
                .filter(|b| b.kind() == Kind::Synthetic)
                .count(),
            2
        );
    }

    #[test]
    fn excerpt_subsets_have_excerpts() {
        for b in Benchmark::EXCERPT_SUBSET_A
            .iter()
            .chain(&Benchmark::EXCERPT_SUBSET_B)
        {
            assert!(b.has_excerpt(), "{b}");
        }
        assert!(!Benchmark::Membench.has_excerpt());
    }
}
