//! Constrained-random program generation for differential verification.
//!
//! Classic processor-verification practice: generate random-but-legal
//! instruction streams and run them in lockstep on two models. Programs
//! generated here are **valid by construction** — no traps, bounded
//! control flow, guaranteed halt — so any ISS/RTL divergence is a
//! simulator bug.
//!
//! The generator draws from the full integer-unit vocabulary except the
//! window/trap machinery (`save`/`restore`/`call` depth is covered by the
//! structured workloads instead): arithmetic with and without flags,
//! tagged arithmetic (non-trapping forms), logic, shifts, multiply/divide
//! (divisors forced odd-nonzero), `mulscc`, `sethi`, all load/store widths
//! into a private scratch region, atomics, `rd %y`/`wr %y` and forward
//! conditional branches of every condition.

use crate::data::Lcg;
use sparc_asm::{assemble, Program};

/// Registers the generator may freely clobber (`%g6`/`%g7` are the suite's
/// checksum and data-base conventions; `%o6`/`%o7`/`%i6`/`%i7` are
/// stack/return registers).
const POOL: [&str; 16] = [
    "%g1", "%g2", "%g3", "%g4", "%g5", "%o0", "%o1", "%o2", "%o3", "%o4", "%l0", "%l1", "%l2",
    "%l3", "%l4", "%l5",
];

const BRANCHES: [&str; 14] = [
    "be", "bne", "bg", "ble", "bge", "bl", "bgu", "bleu", "bcc", "bcs", "bpos", "bneg", "bvc",
    "bvs",
];

/// Configuration of the random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomSpec {
    /// Number of body instructions (before expansion of the multi-insn
    /// templates).
    pub length: usize,
    /// PRNG seed; equal seeds generate identical programs.
    pub seed: u64,
}

impl Default for RandomSpec {
    fn default() -> Self {
        RandomSpec {
            length: 300,
            seed: 1,
        }
    }
}

fn reg(rng: &mut Lcg) -> &'static str {
    POOL[rng.range(0, POOL.len() as u32) as usize]
}

/// Generate the assembly text of a random program.
pub fn random_source(spec: &RandomSpec) -> String {
    let mut rng = Lcg::new(spec.seed ^ 0x5eed_cafe);
    let mut body = String::new();
    // Seed every pool register with a random value.
    for r in POOL {
        body.push_str(&format!(
            "    set {:#x}, {r}\n",
            rng.next_u32() & 0x3fff_ffff
        ));
    }
    body.push_str("    set scratch, %g7\n");

    let mut label = 0usize;
    for _ in 0..spec.length {
        let rd = reg(&mut rng);
        let rs1 = reg(&mut rng);
        let rs2 = reg(&mut rng);
        let imm = (rng.next_u32() as i32 % 4096).clamp(-4095, 4095);
        let op2: String = if rng.range(0, 2) == 0 {
            rs2.to_string()
        } else {
            format!("{imm}")
        };
        match rng.range(0, 24) {
            0 => body.push_str(&format!("    add {rs1}, {op2}, {rd}\n")),
            1 => body.push_str(&format!("    addcc {rs1}, {op2}, {rd}\n")),
            2 => body.push_str(&format!("    sub {rs1}, {op2}, {rd}\n")),
            3 => body.push_str(&format!("    subcc {rs1}, {op2}, {rd}\n")),
            4 => body.push_str(&format!("    addxcc {rs1}, {op2}, {rd}\n")),
            5 => body.push_str(&format!("    subxcc {rs1}, {op2}, {rd}\n")),
            6 => body.push_str(&format!("    and {rs1}, {op2}, {rd}\n")),
            7 => body.push_str(&format!("    orcc {rs1}, {op2}, {rd}\n")),
            8 => body.push_str(&format!("    xor {rs1}, {op2}, {rd}\n")),
            9 => body.push_str(&format!("    xnorcc {rs1}, {op2}, {rd}\n")),
            10 => body.push_str(&format!("    andncc {rs1}, {op2}, {rd}\n")),
            11 => body.push_str(&format!("    orn {rs1}, {op2}, {rd}\n")),
            12 => {
                let count = rng.range(0, 32);
                let shift = ["sll", "srl", "sra"][rng.range(0, 3) as usize];
                body.push_str(&format!("    {shift} {rs1}, {count}, {rd}\n"));
            }
            13 => body.push_str(&format!("    umul {rs1}, {op2}, {rd}\n")),
            14 => body.push_str(&format!("    smulcc {rs1}, {op2}, {rd}\n")),
            15 => {
                // Division with a guaranteed-odd divisor and defined Y.
                body.push_str(&format!("    or {rs2}, 1, {rd}\n"));
                body.push_str(&format!("    wr %g0, {}, %y\n", rng.range(0, 4096)));
                let div = if rng.range(0, 2) == 0 { "udiv" } else { "sdiv" };
                body.push_str(&format!("    {div} {rs1}, {rd}, {rd}\n"));
            }
            16 => body.push_str(&format!("    mulscc {rs1}, {op2}, {rd}\n")),
            17 => body.push_str(&format!(
                "    sethi {:#x}, {rd}\n",
                rng.next_u32() & 0x3f_ffff
            )),
            18 => {
                // Word-aligned scratch access, any width.
                let offset = rng.range(0, 1024) * 4;
                match rng.range(0, 8) {
                    0 => body.push_str(&format!("    st {rd}, [%g7 + {offset}]\n")),
                    1 => body.push_str(&format!("    ld [%g7 + {offset}], {rd}\n")),
                    2 => body.push_str(&format!(
                        "    stb {rd}, [%g7 + {}]\n",
                        offset + rng.range(0, 4)
                    )),
                    3 => body.push_str(&format!(
                        "    ldub [%g7 + {}], {rd}\n",
                        offset + rng.range(0, 4)
                    )),
                    4 => body.push_str(&format!(
                        "    sth {rd}, [%g7 + {}]\n",
                        offset + rng.range(0, 2) * 2
                    )),
                    5 => body.push_str(&format!(
                        "    ldsh [%g7 + {}], {rd}\n",
                        offset + rng.range(0, 2) * 2
                    )),
                    6 => body.push_str(&format!(
                        "    ldsb [%g7 + {}], {rd}\n",
                        offset + rng.range(0, 4)
                    )),
                    _ => body.push_str(&format!(
                        "    lduh [%g7 + {}], {rd}\n",
                        offset + rng.range(0, 2) * 2
                    )),
                }
            }
            19 => {
                // Double-word pair on an 8-aligned slot, fixed even regs.
                let offset = rng.range(0, 512) * 8;
                if rng.range(0, 2) == 0 {
                    body.push_str(&format!("    std %o2, [%g7 + {offset}]\n"));
                } else {
                    body.push_str(&format!("    ldd [%g7 + {offset}], %o2\n"));
                }
            }
            20 => {
                let offset = rng.range(0, 1024) * 4;
                if rng.range(0, 2) == 0 {
                    body.push_str(&format!("    swap [%g7 + {offset}], {rd}\n"));
                } else {
                    body.push_str(&format!("    ldstub [%g7 + {offset}], {rd}\n"));
                }
            }
            21 => {
                // Forward conditional branch over a one-instruction body,
                // with or without annul.
                let cond = BRANCHES[rng.range(0, BRANCHES.len() as u32) as usize];
                let annul = if rng.range(0, 2) == 0 { ",a" } else { "" };
                body.push_str(&format!("    cmp {rs1}, {op2}\n"));
                body.push_str(&format!("    {cond}{annul} rlbl{label}\n"));
                body.push_str("     nop\n");
                body.push_str(&format!("    add {rd}, 1, {rd}\n"));
                body.push_str(&format!("rlbl{label}:\n"));
                label += 1;
            }
            22 => body.push_str(&format!("    rd %y, {rd}\n")),
            _ => {
                body.push_str(&format!("    taddcc {rs1}, {op2}, {rd}\n"));
                body.push_str(&format!("    tsubcc {rs1}, {op2}, {rd}\n"));
            }
        }
    }

    // Make every live register observable at the off-core boundary.
    let mut epilogue = String::from("    set results, %g7\n");
    for (i, r) in POOL.iter().enumerate() {
        epilogue.push_str(&format!("    st {r}, [%g7 + {}]\n", i * 4));
    }
    epilogue.push_str("    rd %y, %g1\n    st %g1, [%g7 + 64]\n");

    format!(
        r#"
        .org 0x40000000
    _start:
{body}
{epilogue}
        halt
        .align 8
    scratch:
        .space 4096
        .align 8
    results:
        .space 96
    "#
    )
}

/// Generate and assemble a random program.
///
/// # Panics
///
/// Panics if the generated source fails to assemble — by construction that
/// is a generator bug, and the failing seed is reported.
pub fn random_program(spec: &RandomSpec) -> Program {
    let source = random_source(spec);
    match assemble(&source) {
        Ok(program) => program,
        Err(e) => panic!(
            "random program (seed {:#x}) failed to assemble: {e}",
            spec.seed
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_iss::{Iss, IssConfig, RunOutcome};

    #[test]
    fn deterministic_per_seed() {
        let a = random_source(&RandomSpec {
            length: 50,
            seed: 42,
        });
        let b = random_source(&RandomSpec {
            length: 50,
            seed: 42,
        });
        assert_eq!(a, b);
        let c = random_source(&RandomSpec {
            length: 50,
            seed: 43,
        });
        assert_ne!(a, c);
    }

    #[test]
    fn random_programs_halt_on_the_iss() {
        for seed in 0..20 {
            let program = random_program(&RandomSpec { length: 120, seed });
            let mut iss = Iss::new(IssConfig::default());
            iss.load(&program);
            let outcome = iss.run(1_000_000);
            assert_eq!(
                outcome,
                RunOutcome::Halted {
                    code: iss.state().reg(sparc_isa::Reg::o(0))
                },
                "seed {seed} did not halt cleanly: {outcome:?}"
            );
            assert!(iss.stats().traps == 0, "seed {seed} trapped");
        }
    }

    #[test]
    fn random_programs_are_diverse() {
        let program = random_program(&RandomSpec {
            length: 400,
            seed: 7,
        });
        let mut iss = Iss::new(IssConfig::default());
        iss.load(&program);
        iss.run(1_000_000);
        // The generator's vocabulary is wide: well above the automotive
        // kernels' diversity.
        assert!(iss.stats().diversity() >= 30, "{}", iss.stats().diversity());
    }
}
