//! The common bare-metal runtime: trap table, register-window spill/fill
//! handlers, cold start and stack.
//!
//! Every full benchmark is linked against this preamble, so deep call
//! chains work and the runtime's own instruction mix is a uniform additive
//! constant across benchmarks (which is what lets the paper treat the
//! kernels' diversity values as comparable).

/// The runtime preamble. Expects a `main` label; `main`'s return value
/// (`%o0`) becomes the halt exit code.
pub(crate) fn preamble() -> String {
    r#"
        .org 0x40000000
    trap_table:
        ba _start                   ! tt 0x00: reset
         nop
        .org 0x40000000 + 16 * 5    ! tt 0x05: window overflow
        ba window_overflow
         nop
        .org 0x40000000 + 16 * 6    ! tt 0x06: window underflow
        ba window_underflow
         nop

        .org 0x40000400
    _start:
        wr %g0, 2, %wim             ! window 1 is the invalid boundary
        set trap_table, %g1
        wr %g1, 0, %tbr
        set stack_top, %sp
        call main
         nop
        halt                        ! exit code = %o0 = main's result

    window_overflow:
        mov %wim, %l3               ! rotate WIM right by one
        srl %l3, 1, %l4
        sll %l3, 7, %l5
        or %l4, %l5, %l3
        and %l3, 0xff, %l3
        wr %g0, 0, %wim
        save                        ! into the window to spill
        std %l0, [%sp + 0]
        std %l2, [%sp + 8]
        std %l4, [%sp + 16]
        std %l6, [%sp + 24]
        std %i0, [%sp + 32]
        std %i2, [%sp + 40]
        std %i4, [%sp + 48]
        std %i6, [%sp + 56]
        restore
        wr %l3, 0, %wim
        jmp %l1                     ! retry the trapped save
         rett %l2

    window_underflow:
        mov %wim, %l3               ! rotate WIM left by one
        sll %l3, 1, %l4
        srl %l3, 7, %l5
        or %l4, %l5, %l3
        and %l3, 0xff, %l3
        wr %g0, 0, %wim
        restore                     ! into the window to fill
        restore
        ldd [%sp + 0], %l0
        ldd [%sp + 8], %l2
        ldd [%sp + 16], %l4
        ldd [%sp + 24], %l6
        ldd [%sp + 32], %i0
        ldd [%sp + 40], %i2
        ldd [%sp + 48], %i4
        ldd [%sp + 56], %i6
        save
        save
        wr %l3, 0, %wim
        jmp %l1                     ! retry the trapped restore
         rett %l2
    "#
    .to_string()
}

/// The stack (and its outermost save area), placed after all code and
/// data.
pub(crate) fn postamble() -> String {
    r#"
        .align 8
    stack_bottom:
        .space 8192
    stack_top:
        .space 96                   ! save area for the outermost frame
    "#
    .to_string()
}

/// Excerpt programs run without the trap runtime: a flat `_start`, no
/// calls deeper than the register file allows, controlled opcode
/// vocabulary.
pub(crate) fn excerpt_wrap(body: &str, data: &str) -> String {
    format!(
        r#"
            .org 0x40000000
        _start:
        {body}
            halt
        {data}
        "#
    )
}
