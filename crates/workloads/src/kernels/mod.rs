//! Kernel generators: dispatch plus the shared automotive scaffolding.

mod automotive;
mod excerpts;
mod synthetic;

use crate::runtime;
use crate::{Benchmark, Params};

/// Full program source for a benchmark.
pub(crate) fn full(benchmark: Benchmark, params: &Params) -> String {
    let (kernel, data) = match benchmark {
        Benchmark::A2time => automotive::a2time(params),
        Benchmark::Ttsprk => automotive::ttsprk(params),
        Benchmark::Rspeed => automotive::rspeed(params),
        Benchmark::Tblook => automotive::tblook(params),
        Benchmark::Canrdr => automotive::canrdr(params),
        Benchmark::Puwmod => automotive::puwmod(params),
        Benchmark::Basefp => automotive::basefp(params),
        Benchmark::Bitmnp => automotive::bitmnp(params),
        Benchmark::Membench => return synthetic::membench(params),
        Benchmark::Intbench => return synthetic::intbench(params),
    };
    format!(
        "{}\n{}\n{}\n{}\n{}\n{}",
        runtime::preamble(),
        auto_main(benchmark.name(), params.iterations),
        kernel,
        helpers(),
        data,
        runtime::postamble()
    )
}

/// Excerpt (init-phase) source, if the benchmark is in one of the Fig. 3
/// subsets.
pub(crate) fn excerpt(benchmark: Benchmark, dataset: usize) -> Option<String> {
    excerpts::excerpt(benchmark, dataset)
}

/// The shared `main`: iteration loop around `<name>_init` / `<name>_run`,
/// checksum accumulated in `%g6` and returned as the exit code.
fn auto_main(name: &str, iterations: u32) -> String {
    format!(
        r#"
    main:
        save %sp, -112, %sp
        mov 0, %g6
        set {iterations}, %l7
    main_iter:
        call {name}_init
         nop
        call {name}_run
         nop
        subcc %l7, 1, %l7
        bne main_iter
         nop
        mov %g6, %i0
        ret
         restore
    "#
    )
}

/// Shared leaf helpers used by every automotive kernel. Besides being the
/// realistic "math library" of an automotive code base, they give the four
/// Table-1 kernels a common opcode vocabulary — which is why their
/// diversity values come out nearly identical, just as the paper reports
/// for the real EEMBC Autobench programs (47/48/47/47).
fn helpers() -> &'static str {
    r#"
    ! ---- shared fixed-point / utility library ----

    ! Q14 fixed-point multiply: %o0 = (%o0 * %o1) >> 14 (signed).
    fx_mul:
        smul %o0, %o1, %o2
        rd %y, %o3
        srl %o2, 14, %o2
        sll %o3, 18, %o3
        retl
         or %o2, %o3, %o0

    ! Unsigned division %o0 = %o0 / %o1 (Y cleared as the ABI requires).
    u_div:
        wr %g0, 0, %y
        retl
         udiv %o0, %o1, %o0

    ! Signed division %o0 = %o0 / %o1 (Y sign-extended).
    s_div:
        sra %o0, 31, %o2
        wr %o2, 0, %y
        retl
         sdiv %o0, %o1, %o0

    ! Checksum mixer: %g6 = rotl5(%g6) + %o0. The addition's carries make
    ! the mix nonlinear over GF(2); a pure rotate-xor mixer telescopes to
    ! exactly zero whenever identical iterations contribute rotation
    ! multiples of 32 (5 bits x 256 elements), silently zeroing the
    ! checksum of every two-iteration run.
    mix:
        sll %g6, 5, %o1
        srl %g6, 27, %o2
        or %o1, %o2, %o1
        retl
         add %o1, %o0, %g6

    ! Saturating signed addition: %o0 = sat(%o0 + %o1).
    sat_add:
        addcc %o0, %o1, %o0
        bvs sat_clamp
         nop
        retl
         nop
    sat_clamp:
        set 0x7fffffff, %o0
        retl
         nop

    ! Common per-sample processing: LSU width exercises plus the shared
    ! ALU vocabulary. %o0 = sample in, %g6 updated, result in %o0.
    auto_common:
        set scratch, %o5
        st %o0, [%o5]
        ldub [%o5 + 1], %o1
        stb %o1, [%o5 + 4]
        lduh [%o5 + 2], %o2
        sth %o2, [%o5 + 6]
        ldsb [%o5 + 4], %o3
        ldsh [%o5 + 6], %o4
        sub %o1, %o2, %o1
        andcc %o0, 0xff, %o2
        be ac_zero
         nop
        andn %o0, %o2, %o3
    ac_zero:
        orn %g0, %o3, %o3
        xnor %o3, %o1, %o3
        sra %o3, 3, %o3
        addx %o3, 0, %o3
        subx %o4, 0, %o4
        umul %o2, 3, %o2
        cmp %o2, %o0
        bg ac_keep
         nop
        add %o2, 7, %o2
    ac_keep:
        ! multiply/divide vocabulary on the staged values
        smul %o1, %o2, %o1
        rd %y, %o4
        xor %o1, %o4, %o1
        or %o0, 1, %o4          ! non-zero divisor derived from the sample
        wr %g0, 0, %y
        udiv %o1, %o4, %o1
        sra %o1, 31, %o2
        wr %o2, 0, %y
        sdiv %o1, %o4, %o1
        addcc %o1, %o3, %o1
        bvs ac_sat
         nop
        xor %o1, %o3, %o2
    ac_sat:
        xor %o2, %o4, %o2
        retl
         xor %g6, %o2, %g6

        .align 8
    scratch:
        .space 16
    "#
}
