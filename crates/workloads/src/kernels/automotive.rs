//! The eight automotive kernels (EEMBC-Autobench-like).
//!
//! Every kernel follows the suite convention: `<name>_init` reads the
//! benchmark's ROM input tables into working RAM (this is the phase the
//! Fig. 3 excerpts isolate), `<name>_run` performs one pass of the control
//! computation over all elements, storing outputs (off-core writes) and
//! folding results into the `%g6` checksum via the shared `mix` helper.

use crate::data::{emit_buffer, emit_words, table};
use crate::Params;

/// Elements per working array.
const NELEM: usize = 256;

/// A standard `_init` loop: copy a ROM table to a working buffer applying
/// a small affine transform (so the init phase is data-dependent).
fn standard_init(name: &str, rom: &str, buf: &str, scale_add: u32) -> String {
    format!(
        r#"
    {name}_init:
        set {rom}, %o0
        set {buf}, %o1
        set {n}, %o2
    {name}_init_loop:
        ld [%o0], %o3
        add %o3, {scale_add}, %o3
        st %o3, [%o1]
        add %o0, 4, %o0
        add %o1, 4, %o1
        subcc %o2, 1, %o2
        bne {name}_init_loop
         nop
        retl
         nop
    "#,
        n = NELEM,
    )
}

/// `rspeed`: road-speed calculation — pulse-period to speed conversion,
/// exponential smoothing and acceleration detection.
pub(crate) fn rspeed(params: &Params) -> (String, String) {
    let periods = table("rspeed", params.dataset, 1, NELEM, 120, 4800);
    let kernel = format!(
        r#"
    {init}
    rspeed_run:
        save %sp, -96, %sp
        set periods, %l0
        set speeds, %l1
        set {n}, %l2
        mov 0, %l3              ! smoothed speed
        mov 0, %l4              ! acceleration events
    rs_loop:
        ld [%l0], %o1           ! pulse period
        set 3600000, %o0
        call u_div              ! raw speed = K / period
         nop
        mov %o0, %l5
        ! 64-bit odometer accumulation (exercises ldd/std)
        set odometer, %o4
        ldd [%o4], %o2
        addcc %o3, %l5, %o3
        addx %o2, 0, %o2
        std %o2, [%o4]
        ! exponential smoothing: s = (3*s + v) / 4
        sll %l3, 1, %o1
        add %o1, %l3, %o1
        add %o1, %l5, %o1
        srl %o1, 2, %l3
        ! acceleration detection
        subcc %l5, %l3, %o2
        bneg rs_noacc
         nop
        add %l4, 1, %l4
    rs_noacc:
        st %l3, [%l1]
        mov %l5, %o0
        call auto_common
         nop
        call mix
         mov %l3, %o0
        add %l0, 4, %l0
        add %l1, 4, %l1
        subcc %l2, 1, %l2
        bne rs_loop
         nop
        call mix
         mov %l4, %o0
        ret
         restore
    "#,
        init = standard_init("rspeed", "rspeed_rom", "periods", 13),
        n = NELEM,
    );
    let mut data = emit_words("rspeed_rom", &periods);
    data.push_str(&emit_buffer("periods", NELEM));
    data.push_str(&emit_buffer("speeds", NELEM));
    data.push_str(&emit_buffer("odometer", 2));
    (kernel, data)
}

/// `ttsprk`: tooth-to-spark — ignition advance from an RPM-indexed table
/// with linear interpolation and signed dwell correction.
pub(crate) fn ttsprk(params: &Params) -> (String, String) {
    let teeth = table("ttsprk", params.dataset, 1, NELEM, 200, 6000);
    // Advance table: 17 monotone-ish Q8 entries.
    let advance = table("ttsprk", params.dataset, 2, 17, 50, 250);
    let kernel = format!(
        r#"
    {init}
    ttsprk_run:
        save %sp, -96, %sp
        set teeth, %l0
        set sparks, %l1
        set {n}, %l2
    tt_loop:
        ld [%l0], %o1           ! tooth period
        set 4800000, %o0
        call u_div              ! rpm = K / period
         nop
        mov %o0, %l3
        ! table index = rpm / 512, clamped to 0..15
        srl %l3, 9, %l4
        cmp %l4, 15
        bleu tt_inrange
         nop
        mov 15, %l4
    tt_inrange:
        set advance_tbl, %o2
        sll %l4, 2, %o3
        add %o2, %o3, %o2
        ld [%o2], %l5           ! t[i]
        ld [%o2 + 4], %o4       ! t[i+1]
        sub %o4, %l5, %o0       ! delta
        and %l3, 511, %o1       ! fractional rpm
        call fx_mul
         sll %o1, 5, %o1        ! scale fraction to Q14
        add %l5, %o0, %l5       ! interpolated advance
        ! signed dwell correction: (advance - base) / 3
        sub %l5, 128, %o0
        mov 3, %o1
        call s_div
         nop
        call sat_add
         mov %l5, %o1
        subcc %o0, 0, %g0
        bneg tt_retard          ! negative advance: clamp to zero
         nop
        ba tt_store
         nop
    tt_retard:
        mov 0, %o0
    tt_store:
        st %o0, [%l1]
        call auto_common
         mov %l3, %o0
        call mix
         mov %l5, %o0
        add %l0, 4, %l0
        add %l1, 4, %l1
        subcc %l2, 1, %l2
        bne tt_loop
         nop
        ret
         restore
    "#,
        init = standard_init("ttsprk", "ttsprk_rom", "teeth", 7),
        n = NELEM,
    );
    let mut data = emit_words("ttsprk_rom", &teeth);
    data.push_str(&emit_words("advance_tbl", &advance));
    data.push_str(&emit_buffer("teeth", NELEM));
    data.push_str(&emit_buffer("sparks", NELEM));
    (kernel, data)
}

/// `puwmod`: pulse-width modulation — PI-style duty-cycle control with
/// clamping and packed status flags.
pub(crate) fn puwmod(params: &Params) -> (String, String) {
    let setpoints = table("puwmod", params.dataset, 1, NELEM, 100, 900);
    let feedback = table("puwmod", params.dataset, 2, NELEM, 80, 920);
    let kernel = format!(
        r#"
    {init}
    puwmod_run:
        save %sp, -96, %sp
        set setpoints, %l0
        set feedback_rom, %l1
        set duty, %l2
        set {n}, %l3
        mov 512, %l4            ! current duty
    pw_loop:
        ld [%l0], %o0           ! setpoint
        ld [%l1], %o1           ! feedback
        sub %o0, %o1, %l5       ! error (signed)
        ! duty += (error * KP) >> 14
        mov %l5, %o0
        set 5500, %o1
        call fx_mul
         nop
        call sat_add
         mov %l4, %o1
        mov %o0, %l4
        ! clamp duty to 0..1023
        subcc %l4, 0, %g0
        bpos pw_notneg
         nop
        mov 0, %l4
    pw_notneg:
        cmp %l4, 1023
        bleu pw_clamped
         nop
        set 1023, %l4
    pw_clamped:
        st %l4, [%l2]
        ! packed status flags: saturated-low, saturated-high, error sign
        srl %l4, 8, %o2
        and %o2, 3, %o2
        sll %o2, 1, %o2
        srl %l5, 31, %o3
        or %o2, %o3, %o2
        stb %o2, [%l2 + 3]
        call auto_common
         mov %l4, %o0
        call mix
         mov %l4, %o0
        add %l0, 4, %l0
        add %l1, 4, %l1
        add %l2, 4, %l2
        subcc %l3, 1, %l3
        bne pw_loop
         nop
        ret
         restore
    "#,
        init = standard_init("puwmod", "puwmod_rom", "setpoints", 3),
        n = NELEM,
    );
    let mut data = emit_words("puwmod_rom", &setpoints);
    data.push_str(&emit_words("feedback_rom", &feedback));
    data.push_str(&emit_buffer("setpoints", NELEM));
    data.push_str(&emit_buffer("duty", NELEM));
    (kernel, data)
}

/// `canrdr`: CAN remote-data-request — frame parsing, payload copy with
/// checksum and ring-buffer enqueue.
pub(crate) fn canrdr(params: &Params) -> (String, String) {
    let frames = table("canrdr", params.dataset, 1, NELEM, 0, u32::MAX);
    // 64 addressable offsets plus up to 8 copied bytes of overhang.
    let payload = table("canrdr", params.dataset, 2, 72, 0, 256);
    let kernel = format!(
        r#"
    {init}
    canrdr_run:
        save %sp, -96, %sp
        set frames, %l0
        set {n}, %l1
        mov 0, %l2              ! ring index
    cr_loop:
        ld [%l0], %o0           ! frame word: id(11) | rtr(1) | dlc(4) | data
        srl %o0, 21, %l3        ! 11-bit identifier
        srl %o0, 20, %o1
        andcc %o1, 1, %g0       ! RTR bit
        be cr_dataframe
         nop
        ! --- remote request: assemble a response ---
        srl %o0, 16, %l4
        and %l4, 15, %l4        ! dlc, 0..15 -> clamp to 8
        cmp %l4, 8
        bleu cr_dlc_ok
         nop
        mov 8, %l4
    cr_dlc_ok:
        ! copy dlc payload bytes into the ring slot, xor-checksumming
        set payload_rom, %o2
        and %l3, 63, %o3        ! payload offset from id
        add %o2, %o3, %o2
        set ring, %o4
        sll %l2, 4, %o5         ! 16-byte slots
        add %o4, %o5, %o4       ! %o4 = slot base (16-aligned)
        mov %o4, %o5            ! %o5 = write cursor
        mov 0, %l5              ! checksum
        subcc %l4, 0, %g0
        be cr_copydone
         nop
    cr_copy:
        ldub [%o2], %o0
        stb %o0, [%o5]
        xor %l5, %o0, %l5
        add %o2, 1, %o2
        add %o5, 1, %o5
        subcc %l4, 1, %l4
        bne cr_copy
         nop
    cr_copydone:
        ! trailer at fixed, aligned slot offsets: checksum byte + id half
        stb %l5, [%o4 + 12]
        sth %l3, [%o4 + 14]
        add %l2, 1, %l2
        and %l2, 15, %l2        ! 16-slot ring
        ba cr_next
         nop
    cr_dataframe:
        ! data frame: fold id and data into the checksum
        xor %o0, %l3, %o0
        call auto_common
         nop
        call mix
         mov %l3, %o0
    cr_next:
        add %l0, 4, %l0
        subcc %l1, 1, %l1
        bne cr_loop
         nop
        call mix
         mov %l2, %o0
        ret
         restore
    "#,
        init = standard_init("canrdr", "canrdr_rom", "frames", 0x11),
        n = NELEM,
    );
    let mut data = emit_words("canrdr_rom", &frames);
    data.push_str(&crate::data::emit_bytes("payload_rom", &payload));
    data.push_str(&emit_buffer("frames", NELEM));
    data.push_str(&emit_buffer("ring", 16 * 4));
    (kernel, data)
}

/// `a2time`: angle-to-time — crank-angle deltas to time predictions with
/// running average.
pub(crate) fn a2time(params: &Params) -> (String, String) {
    let angles = table("a2time", params.dataset, 1, NELEM, 50, 3550);
    let kernel = format!(
        r#"
    {init}
    a2time_run:
        save %sp, -96, %sp
        set angles, %l0
        set times, %l1
        set {n}, %l2
        mov 1000, %l3           ! running average period
        mov 0, %l4              ! previous angle
    a2_loop:
        ld [%l0], %o1
        sub %o1, %l4, %l5       ! delta angle
        mov %o1, %l4
        ! time-per-degree = avg_period / 360
        mov %l3, %o0
        set 360, %o1
        call u_div
         nop
        ! predicted time = delta * tpd (Q14 trimmed)
        mov %o0, %o1
        call fx_mul
         mov %l5, %o0
        st %o0, [%l1]
        ! update running average with measured pseudo-period
        and %o0, 2047, %o2
        add %o2, 400, %o2
        sll %l3, 2, %o3
        sub %o3, %l3, %o3
        add %o3, %o2, %o3
        srl %o3, 2, %l3
        call auto_common
         mov %l5, %o0
        call mix
         mov %l3, %o0
        add %l0, 4, %l0
        add %l1, 4, %l1
        subcc %l2, 1, %l2
        bne a2_loop
         nop
        ret
         restore
    "#,
        init = standard_init("a2time", "a2time_rom", "angles", 5),
        n = NELEM,
    );
    let mut data = emit_words("a2time_rom", &angles);
    data.push_str(&emit_buffer("angles", NELEM));
    data.push_str(&emit_buffer("times", NELEM));
    (kernel, data)
}

/// `tblook`: table lookup and interpolation — binary search over a sorted
/// breakpoint table plus Q14 interpolation.
pub(crate) fn tblook(params: &Params) -> (String, String) {
    let inputs = table("tblook", params.dataset, 1, NELEM, 0, 1 << 16);
    // A sorted 33-entry breakpoint table and its values.
    let mut breaks: Vec<u32> = table("tblook", params.dataset, 2, 33, 1, 2000);
    for i in 1..breaks.len() {
        breaks[i] = breaks[i].wrapping_add(breaks[i - 1]);
    }
    let values = table("tblook", params.dataset, 3, 33, 0, 1 << 14);
    let kernel = format!(
        r#"
    {init}
    tblook_run:
        save %sp, -96, %sp
        set inputs, %l0
        set outputs, %l1
        set {n}, %l2
    tb_loop:
        ld [%l0], %l3           ! x
        ! binary search over 32 intervals (5 steps)
        mov 0, %l4              ! lo
        mov 32, %l5             ! hi
    tb_search:
        sub %l5, %l4, %o0
        cmp %o0, 1
        bleu tb_found
         nop
        add %l4, %l5, %o1
        srl %o1, 1, %o1         ! mid
        set breaks_tbl, %o2
        sll %o1, 2, %o3
        ld [%o2 + %o3], %o4
        cmp %l3, %o4
        blu tb_below
         nop
        mov %o1, %l4
        ba tb_search
         nop
    tb_below:
        mov %o1, %l5
        ba tb_search
         nop
    tb_found:
        ! interpolate between values[lo] and values[lo+1]
        set values_tbl, %o2
        sll %l4, 2, %o3
        add %o2, %o3, %o2
        ld [%o2], %l5           ! y0
        ld [%o2 + 4], %o4       ! y1
        sub %o4, %l5, %o0
        sll %l3, 18, %o1        ! fraction in Q14 (low 14 bits)
        srl %o1, 18, %o1
        call fx_mul
         nop
        call sat_add
         mov %l5, %o1
        ! signed normalisation
        mov 5, %o1
        call s_div
         nop
        st %o0, [%l1]
        call auto_common
         mov %l3, %o0
        call mix
         nop
        add %l0, 4, %l0
        add %l1, 4, %l1
        subcc %l2, 1, %l2
        bne tb_loop
         nop
        ret
         restore
    "#,
        init = standard_init("tblook", "tblook_rom", "inputs", 9),
        n = NELEM,
    );
    let mut data = emit_words("tblook_rom", &inputs);
    data.push_str(&emit_words("breaks_tbl", &breaks));
    data.push_str(&emit_words("values_tbl", &values));
    data.push_str(&emit_buffer("inputs", NELEM));
    data.push_str(&emit_buffer("outputs", NELEM));
    (kernel, data)
}

/// `basefp`: basic fixed-point arithmetic — Q14 multiply/divide chains
/// with rounding and saturation.
pub(crate) fn basefp(params: &Params) -> (String, String) {
    let vec_a = table("basefp", params.dataset, 1, NELEM, 1, 1 << 15);
    let vec_b = table("basefp", params.dataset, 2, NELEM, 1, 1 << 14);
    let kernel = format!(
        r#"
    {init}
    basefp_run:
        save %sp, -96, %sp
        set vec_a, %l0
        set vec_b_rom, %l1
        set results, %l2
        set {n}, %l3
        mov 0, %l4              ! accumulator
    bf_loop:
        ld [%l0], %o0
        ld [%l1], %o1
        call fx_mul             ! Q14 product
         nop
        mov %o0, %l5
        ! rounded divide by vector b: ((p << 7) + b/2) / b
        sll %l5, 7, %o0
        ld [%l1], %o1
        srl %o1, 1, %o2
        add %o0, %o2, %o0
        call s_div
         nop
        call sat_add
         mov %l4, %o1
        mov %o0, %l4
        st %l4, [%l2]
        call auto_common
         mov %l5, %o0
        call mix
         mov %l4, %o0
        add %l0, 4, %l0
        add %l1, 4, %l1
        add %l2, 4, %l2
        subcc %l3, 1, %l3
        bne bf_loop
         nop
        ret
         restore
    "#,
        init = standard_init("basefp", "basefp_rom", "vec_a", 1),
        n = NELEM,
    );
    let mut data = emit_words("basefp_rom", &vec_a);
    data.push_str(&emit_words("vec_b_rom", &vec_b));
    data.push_str(&emit_buffer("vec_a", NELEM));
    data.push_str(&emit_buffer("results", NELEM));
    (kernel, data)
}

/// `bitmnp`: bit manipulation — bit reversal, population count and parity
/// folding.
pub(crate) fn bitmnp(params: &Params) -> (String, String) {
    let words = table("bitmnp", params.dataset, 1, NELEM, 0, u32::MAX);
    let kernel = format!(
        r#"
    {init}
    bitmnp_run:
        save %sp, -96, %sp
        set bits, %l0
        set revs, %l1
        set {n}, %l2
    bm_loop:
        ld [%l0], %l3
        ! bit reversal (8 steps of 4 bits)
        mov %l3, %o1
        mov 0, %l4              ! reversed
        mov 32, %l5
    bm_rev:
        sll %l4, 1, %l4
        and %o1, 1, %o2
        or %l4, %o2, %l4
        srl %o1, 1, %o1
        subcc %l5, 1, %l5
        bne bm_rev
         nop
        st %l4, [%l1]
        ! population count
        mov %l3, %o1
        mov 0, %o3
    bm_pop:
        subcc %o1, 0, %g0
        be bm_popdone
         nop
        sub %o1, 1, %o2
        and %o1, %o2, %o1       ! clear lowest set bit
        ba bm_pop
         add %o3, 1, %o3
    bm_popdone:
        ! parity folding
        srl %l3, 16, %o4
        xor %l3, %o4, %o4
        srl %o4, 8, %o5
        xor %o4, %o5, %o4
        and %o4, 1, %o4
        sll %o3, 1, %o3
        or %o3, %o4, %o0
        call auto_common
         nop
        call mix
         mov %l4, %o0
        add %l0, 4, %l0
        add %l1, 4, %l1
        subcc %l2, 1, %l2
        bne bm_loop
         nop
        ret
         restore
    "#,
        init = standard_init("bitmnp", "bitmnp_rom", "bits", 0x21),
        n = NELEM,
    );
    let mut data = emit_words("bitmnp_rom", &words);
    data.push_str(&emit_buffer("bits", NELEM));
    data.push_str(&emit_buffer("revs", NELEM));
    (kernel, data)
}
