//! The paper's two synthetic benchmarks: deliberately *low-diversity*
//! workloads that stress one resource class each, providing the extra
//! diversity points of Figures 5-7.

use crate::data::{emit_buffer, emit_words, table};
use crate::runtime;
use crate::Params;

/// `membench`: memory-intensive walker. Word fill, byte walk and halfword
/// walk over a buffer larger than the data cache. Instruction vocabulary
/// kept minimal (the paper reports diversity 18 with 22% memory
/// instructions).
pub(crate) fn membench(params: &Params) -> String {
    let seeds = table("membench", params.dataset, 1, 16, 1, 1 << 24);
    let body = format!(
        r#"
    main:
        save %sp, -96, %sp
        mov 0, %g6
        set {iters}, %l7
    mb_iter:
        ! ---- word fill ----
        set workbuf, %l0
        set 1024, %l1
        set seed_tbl, %o0
        ld [%o0], %l2
    mb_fill:
        st %l2, [%l0]
        add %l2, 0x135, %l2
        add %l0, 4, %l0
        subcc %l1, 1, %l1
        bne mb_fill
         nop
        ! ---- word re-walk (cache thrash + accumulate) ----
        set workbuf, %l0
        set 1024, %l1
    mb_walk:
        ld [%l0], %o1
        add %g6, %o1, %g6
        add %l0, 4, %l0
        subcc %l1, 1, %l1
        bne mb_walk
         nop
        ! ---- byte walk ----
        set workbuf, %l0
        set 512, %l1
    mb_bytes:
        ldub [%l0 + 1], %o1
        stb %o1, [%l0 + 2]
        add %l0, 8, %l0
        subcc %l1, 1, %l1
        bne mb_bytes
         nop
        ! ---- halfword walk ----
        set workbuf, %l0
        set 512, %l1
    mb_halves:
        lduh [%l0], %o1
        sth %o1, [%l0 + 2]
        add %l0, 8, %l0
        subcc %l1, 1, %l1
        bne mb_halves
         nop
        subcc %l7, 1, %l7
        bne mb_iter
         nop
        mov %g6, %i0
        ret
         restore
    "#,
        iters = params.iterations,
    );
    let mut data = emit_words("seed_tbl", &seeds);
    data.push_str(&emit_buffer("workbuf", 1024));
    format!(
        "{}\n{}\n{}\n{}",
        runtime::preamble(),
        body,
        data,
        runtime::postamble()
    )
}

/// `intbench`: short integer ALU chain, almost no memory traffic (the
/// paper reports 2621 instructions, 19 memory accesses, diversity 20).
pub(crate) fn intbench(params: &Params) -> String {
    let seeds = table("intbench", params.dataset, 1, 8, 1, u32::MAX);
    let body = format!(
        r#"
    main:
        save %sp, -96, %sp
        mov 0, %g6
        set {iters}, %l7
    ib_iter:
        set seed_tbl, %o0
        ld [%o0], %l0
        ld [%o0 + 4], %l1
        set 48, %l2
    ib_loop:
        add %l0, %l1, %o1
        sub %o1, %l0, %o2
        and %o1, %o2, %o3
        or %o3, %l1, %o3
        xor %o3, %l0, %o3
        sll %o3, 3, %o4
        srl %o3, 29, %o5
        or %o4, %o5, %o3
        sra %o3, 1, %o4
        andn %o3, %o4, %o4
        addcc %o4, %l0, %l0
        xnor %l1, %o3, %l1
        subcc %l2, 1, %l2
        bne ib_loop
         nop
        add %g6, %l0, %g6
        subcc %l7, 1, %l7
        bne ib_iter
         nop
        mov %g6, %i0
        ret
         restore
    "#,
        iters = params.iterations,
    );
    let data = emit_words("seed_tbl", &seeds);
    format!(
        "{}\n{}\n{}\n{}",
        runtime::preamble(),
        body,
        data,
        runtime::postamble()
    )
}
