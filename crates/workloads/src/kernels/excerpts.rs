//! Init-phase excerpts for the Fig. 3 input-variability study.
//!
//! Following the paper: within a subset **all three applications have
//! identical code** — only the input data differs — and each subset uses a
//! different, deliberately small instruction set (`Is`): 8 instruction
//! types for subset A, 11 for subset B.

use crate::data::{emit_buffer, emit_words, table};
use crate::runtime::excerpt_wrap;
use crate::Benchmark;

// Short, as the paper's init-phase excerpts are: with few elements, whether
// a given data-path fault is activated depends visibly on the input data.
const NELEM: usize = 48;

/// Subset A template: plain copy-with-transform init loop.
///
/// Executed instruction types (8): `sethi`, `or`, `ld`, `add`, `st`,
/// `subcc`, `bne`, `ticc` (halt).
fn subset_a(rom: &[u32]) -> String {
    let body = format!(
        r#"
        set input_rom, %o0
        set workbuf, %o1
        set {n}, %o2
        or %g0, %g0, %o4        ! running sum
    xa_loop:
        ld [%o0], %o3
        add %o3, 17, %o3
        st %o3, [%o1]
        add %o4, %o3, %o4
        add %o0, 4, %o0
        add %o1, 4, %o1
        subcc %o2, 1, %o2
        bne xa_loop
         nop
        set result, %o1
        st %o4, [%o1]
        or %g0, %o4, %o0        ! exit code
    "#,
        n = NELEM,
    );
    let mut data = emit_words("input_rom", rom);
    data.push_str(&emit_buffer("workbuf", NELEM));
    data.push_str(&emit_buffer("result", 1));
    excerpt_wrap(&body, &data)
}

/// Subset B template: init loop with scaling and byte extraction.
///
/// Executed instruction types (11): subset A's 8 plus `umul`, `sra`,
/// `stb`.
fn subset_b(rom: &[u32]) -> String {
    let body = format!(
        r#"
        set input_rom, %o0
        set workbuf, %o1
        set flagbuf, %o5
        set {n}, %o2
        or %g0, %g0, %o4
    xb_loop:
        ld [%o0], %o3
        umul %o3, 11, %o3       ! scale
        sra %o3, 2, %o3         ! normalise
        st %o3, [%o1]
        stb %o3, [%o5]          ! low-byte flag image
        add %o4, %o3, %o4
        add %o0, 4, %o0
        add %o1, 4, %o1
        add %o5, 1, %o5
        subcc %o2, 1, %o2
        bne xb_loop
         nop
        set result, %o1
        st %o4, [%o1]
        or %g0, %o4, %o0
    "#,
        n = NELEM,
    );
    let mut data = emit_words("input_rom", rom);
    data.push_str(&emit_buffer("workbuf", NELEM));
    data.push_str(&emit_buffer("flagbuf", NELEM / 4 + 1));
    data.push_str(&emit_buffer("result", 1));
    excerpt_wrap(&body, &data)
}

/// The excerpt program for a benchmark/dataset pair, if the benchmark is
/// in one of the Fig. 3 subsets. The *code* is the subset template; the
/// *data* is the benchmark's own input table.
pub(crate) fn excerpt(benchmark: Benchmark, dataset: usize) -> Option<String> {
    // Each benchmark's characteristic input window. The windows are
    // deliberately distinct power-of-two ranges: which data-path bits are
    // constant across a whole input set is exactly what makes permanent
    // faults data-dependent on short runs (a stuck-at-1 on an always-one
    // bit never corrupts anything), so the windows carry the paper's
    // "different input data" effect.
    let rom = match benchmark {
        // Small positive angles: bits 11.. always zero, bit 10 always one.
        Benchmark::A2time => table("a2time", dataset, 1, NELEM, 0x400, 0x7c0),
        // Negative offsets (two's complement): bits 12..31 always one.
        Benchmark::Ttsprk => table("ttsprk", dataset, 1, NELEM, 0xffff_f000, 0xffff_ffc0),
        // Full-entropy bit patterns: every bit takes both values.
        Benchmark::Bitmnp => table("bitmnp", dataset, 1, NELEM, 0, u32::MAX),
        // Small pulse periods.
        Benchmark::Rspeed => table("rspeed", dataset, 1, NELEM, 0x100, 0x1c0),
        // Negative table offsets: bits 15..31 always one.
        Benchmark::Tblook => table("tblook", dataset, 1, NELEM, 0xffff_8000, 0xffff_ffc0),
        // Tiny Q6 coefficients.
        Benchmark::Basefp => table("basefp", dataset, 1, NELEM, 0x40, 0x70),
        _ => return None,
    };
    Some(if Benchmark::EXCERPT_SUBSET_A.contains(&benchmark) {
        subset_a(&rom)
    } else {
        subset_b(&rom)
    })
}
