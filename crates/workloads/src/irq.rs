//! `irqload`: an interrupt-driven control workload.
//!
//! Automotive software is ISR-structured: a foreground compute loop
//! preempted by a periodic timer interrupt whose handler samples data and
//! acknowledges the device. This workload exercises the interrupt entry,
//! the `jmp`/`rett` return path and the timer MMIO on both simulation
//! levels — paths the batch benchmarks never reach.
//!
//! Requires the platform timer to be enabled
//! ([`IssConfig::timer`](sparc_iss::IssConfig) on the ISS and the
//! equivalent `Leon3Config::timer` on the RTL model); the program halts
//! after a fixed number of ISR invocations, returning a checksum that
//! covers both foreground and ISR work.

use crate::data::{emit_buffer, emit_words, table};
use sparc_asm::{assemble, Program};

/// Interrupt request level used by the workload (tt = 0x1b).
pub const IRQ_LEVEL: u32 = 11;

/// Generate `irqload`: timer period in cycles, number of ISR firings to
/// run for.
///
/// # Panics
///
/// Panics if the generated assembly fails to assemble (a generator bug).
pub fn irqload(period: u32, firings: u32) -> Program {
    let samples = table("irqload", 0, 1, 64, 1, 1 << 20);
    let vector_offset = 16 * (0x10 + IRQ_LEVEL);
    let source = format!(
        r#"
        .org 0x40000000
    trap_table:
        ba _start                   ! tt 0x00: reset
         nop
        .org 0x40000000 + {vector_offset}
        ba timer_isr                ! tt 0x1b: interrupt level {IRQ_LEVEL}
         nop

        .org 0x40000400
    _start:
        set trap_table, %g1
        wr %g1, 0, %tbr
        set stack_top, %sp
        mov 0, %g4                  ! ISR invocation counter
        mov 0, %g6                  ! checksum
        ! arm the timer: period, reload, ctrl = enable | irq | level
        set 0xf0000000, %g5
        set {period}, %o0
        st %o0, [%g5 + 0]
        st %o0, [%g5 + 4]
        set {ctrl:#x}, %o1
        st %o1, [%g5 + 8]
    foreground:
        ! filter the sample table while waiting for interrupts
        set samples, %l0
        set 64, %l1
        mov 0, %l2
    fg_loop:
        ld [%l0], %o2
        add %l2, %o2, %l2
        srl %l2, 1, %l2
        add %l0, 4, %l0
        subcc %l1, 1, %l1
        bne fg_loop
         nop
        xor %g6, %l2, %g6
        cmp %g4, {firings}
        bl foreground
         nop
        ! disarm the timer and report
        st %g0, [%g5 + 8]
        set result, %o1
        st %g6, [%o1]
        mov %g4, %o0
        halt

    timer_isr:
        ! trap window: %l1/%l2 hold the return point, %l3+ are free
        set 0xf0000000, %l3
        st %g0, [%l3 + 12]          ! acknowledge the interrupt
        ld [%l3 + 0], %l4           ! sample the live count
        add %g6, %l4, %g6           ! accumulate (xor would cancel pairwise)
        add %g6, %g4, %g6
        add %g4, 1, %g4
        jmp %l1                     ! resume the interrupted instruction
         rett %l2

    {data}
        .align 8
    result:
        .space 4
        .align 8
    stack_bottom:
        .space 2048
    stack_top:
        .space 96
    "#,
        ctrl = 0b11 | (IRQ_LEVEL << 4),
        data = {
            let mut d = emit_words("samples", &samples);
            d.push_str(&emit_buffer("scratchpad", 8));
            d
        },
    );
    match assemble(&source) {
        Ok(program) => program,
        Err(e) => panic!("irqload failed to assemble: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_iss::{Iss, IssConfig, RunOutcome};

    fn config() -> IssConfig {
        IssConfig {
            timer: true,
            ..IssConfig::default()
        }
    }

    #[test]
    fn halts_after_the_requested_firings() {
        let program = irqload(5_000, 8);
        let mut iss = Iss::new(config());
        iss.load(&program);
        let outcome = iss.run(10_000_000);
        assert_eq!(outcome, RunOutcome::Halted { code: 8 });
        assert!(iss.stats().traps >= 8, "expected >= 8 interrupt traps");
    }

    #[test]
    fn unmapped_device_faults_without_the_timer() {
        let program = irqload(5_000, 2);
        let mut iss = Iss::new(IssConfig::default()); // timer disabled
        iss.load(&program);
        // The arming store hits an unmapped bus region: data-access trap,
        // and with no handler installed the core ends in error mode.
        assert!(matches!(iss.run(500_000), RunOutcome::ErrorMode { .. }));
    }

    #[test]
    fn shorter_period_fires_more_often_per_instruction() {
        let fast = {
            let mut iss = Iss::new(config());
            iss.load(&irqload(2_000, 6));
            iss.run(10_000_000);
            iss.stats().instructions
        };
        let slow = {
            let mut iss = Iss::new(config());
            iss.load(&irqload(20_000, 6));
            iss.run(10_000_000);
            iss.stats().instructions
        };
        assert!(fast < slow, "fast {fast} vs slow {slow}");
    }
}
