//! Deterministic input-dataset generation.
//!
//! Each automotive benchmark ships three datasets. They have identical
//! shapes (the paper's Fig. 3 requirement: "identical code, the only
//! difference … the input data") and differ only in values, generated from
//! per-(benchmark, dataset) seeds.

/// A deterministic xorshift-star generator — no external RNG dependency in
/// the workload generators, so program images are bit-stable forever.
#[derive(Debug, Clone)]
pub(crate) struct Lcg {
    state: u64,
}

impl Lcg {
    pub(crate) fn new(seed: u64) -> Lcg {
        Lcg {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    pub(crate) fn next_u32(&mut self) -> u32 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as u32
    }

    /// Uniform value in `lo..hi`.
    pub(crate) fn range(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi);
        lo + self.next_u32() % (hi - lo)
    }
}

/// Seed for a benchmark/dataset pair.
pub(crate) fn seed(benchmark: &str, dataset: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in benchmark.bytes().chain([b'#', dataset as u8]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Emit a `.word` table with a label.
pub(crate) fn emit_words(label: &str, values: &[u32]) -> String {
    let mut out = format!("    .align 8\n{label}:\n");
    for chunk in values.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|v| format!("{:#x}", v)).collect();
        out.push_str(&format!("    .word {}\n", row.join(", ")));
    }
    out
}

/// Emit a `.byte` table with a label.
pub(crate) fn emit_bytes(label: &str, values: &[u32]) -> String {
    let mut out = format!("    .align 8\n{label}:\n");
    for chunk in values.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|v| format!("{:#x}", v & 0xff)).collect();
        out.push_str(&format!("    .byte {}\n", row.join(", ")));
    }
    out
}

/// Emit a zeroed working buffer of `words` words.
pub(crate) fn emit_buffer(label: &str, words: usize) -> String {
    format!("    .align 8\n{label}:\n    .space {}\n", words * 4)
}

/// A table of `n` values in `lo..hi` for a benchmark/dataset pair, with a
/// stream discriminator so multiple tables of one benchmark differ.
pub(crate) fn table(
    benchmark: &str,
    dataset: usize,
    stream: u64,
    n: usize,
    lo: u32,
    hi: u32,
) -> Vec<u32> {
    let mut rng = Lcg::new(seed(benchmark, dataset) ^ stream.wrapping_mul(0x9e3779b97f4a7c15));
    (0..n).map(|_| rng.range(lo, hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let a = table("rspeed", 0, 1, 16, 10, 1000);
        let b = table("rspeed", 0, 1, 16, 10, 1000);
        assert_eq!(a, b);
    }

    #[test]
    fn datasets_differ_but_ranges_hold() {
        let a = table("rspeed", 0, 1, 64, 10, 1000);
        let b = table("rspeed", 1, 1, 64, 10, 1000);
        let c = table("rspeed", 2, 1, 64, 10, 1000);
        assert_ne!(a, b);
        assert_ne!(b, c);
        for v in a.iter().chain(&b).chain(&c) {
            assert!((10..1000).contains(v));
        }
    }

    #[test]
    fn streams_differ() {
        let a = table("x", 0, 1, 8, 0, 100);
        let b = table("x", 0, 2, 8, 0, 100);
        assert_ne!(a, b);
    }

    #[test]
    fn emit_words_formats_rows() {
        let s = emit_words("tbl", &[1, 2, 3]);
        assert!(s.contains("tbl:"));
        assert!(s.contains(".word 0x1, 0x2, 0x3"));
        assert!(s.contains(".align 8"));
    }

    #[test]
    fn emit_buffer_sizes() {
        let s = emit_buffer("buf", 10);
        assert!(s.contains(".space 40"));
    }
}
