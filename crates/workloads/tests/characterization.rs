//! Every workload must assemble, halt, and exhibit the Table 1 shape:
//! automotive benchmarks with high near-identical diversity, synthetic
//! benchmarks with low diversity, excerpts with exactly the subset's
//! instruction-type counts.

use sparc_iss::{Iss, IssConfig, RunOutcome};
use workloads::{characterize, Benchmark, Params};

#[test]
fn all_benchmarks_assemble_and_halt() {
    for bench in Benchmark::ALL {
        let c = characterize(bench, &Params::default());
        assert!(c.total > 1000, "{bench} too short: {}", c.total);
        assert_eq!(c.iu, c.total, "{bench}: every instruction passes the IU");
        assert!(c.memory > 0, "{bench} performs no memory accesses");
    }
}

#[test]
fn automotive_diversity_high_and_nearly_identical() {
    let divs: Vec<(Benchmark, usize)> = Benchmark::TABLE1_AUTOMOTIVE
        .iter()
        .map(|&b| (b, characterize(b, &Params::default()).diversity))
        .collect();
    for &(b, d) in &divs {
        assert!(
            (40..=55).contains(&d),
            "{b} diversity {d} outside the Table 1 envelope"
        );
    }
    let max = divs.iter().map(|&(_, d)| d).max().unwrap();
    let min = divs.iter().map(|&(_, d)| d).min().unwrap();
    assert!(
        max - min <= 3,
        "automotive diversities spread too far: {divs:?}"
    );
}

#[test]
fn synthetic_diversity_low() {
    let mem = characterize(Benchmark::Membench, &Params::default());
    let int = characterize(Benchmark::Intbench, &Params::default());
    assert!(
        (14..=24).contains(&mem.diversity),
        "membench diversity {} outside envelope",
        mem.diversity
    );
    assert!(
        (14..=24).contains(&int.diversity),
        "intbench diversity {} outside envelope",
        int.diversity
    );
    // Synthetic diversity must sit clearly below automotive diversity.
    let auto_min = Benchmark::TABLE1_AUTOMOTIVE
        .iter()
        .map(|&b| characterize(b, &Params::default()).diversity)
        .min()
        .unwrap();
    assert!(mem.diversity + 10 <= auto_min);
    assert!(int.diversity + 10 <= auto_min);
}

#[test]
fn membench_is_memory_heavy_intbench_is_not() {
    let mem = characterize(Benchmark::Membench, &Params::default());
    let int = characterize(Benchmark::Intbench, &Params::default());
    let mem_ratio = mem.memory as f64 / mem.total as f64;
    let int_ratio = int.memory as f64 / int.total as f64;
    assert!(mem_ratio > 0.15, "membench memory ratio {mem_ratio}");
    assert!(int_ratio < 0.05, "intbench memory ratio {int_ratio}");
}

#[test]
fn iterations_scale_instruction_count() {
    let two = characterize(Benchmark::Rspeed, &Params::with_iterations(2));
    let ten = characterize(Benchmark::Rspeed, &Params::with_iterations(10));
    let ratio = ten.total as f64 / two.total as f64;
    assert!((4.0..=6.0).contains(&ratio), "10/2 iteration ratio {ratio}");
    // Diversity must NOT change with iterations (the paper's Fig. 4 core
    // assumption).
    assert_eq!(two.diversity, ten.diversity);
}

#[test]
fn datasets_change_data_not_code() {
    for bench in Benchmark::TABLE1_AUTOMOTIVE {
        let a = characterize(bench, &Params::with_dataset(0));
        let b = characterize(bench, &Params::with_dataset(1));
        // Same diversity (identical code paths vocabulary)…
        assert_eq!(a.diversity, b.diversity, "{bench}");
        // …and closely similar dynamic length.
        let ratio = a.total as f64 / b.total as f64;
        assert!((0.9..=1.1).contains(&ratio), "{bench}: {ratio}");
    }
}

#[test]
fn excerpt_subset_a_has_8_types() {
    for bench in Benchmark::EXCERPT_SUBSET_A {
        for dataset in 0..3 {
            let program = bench.excerpt(dataset);
            let mut iss = Iss::new(IssConfig::default());
            iss.load(&program);
            let outcome = iss.run(1_000_000);
            assert!(
                matches!(outcome, RunOutcome::Halted { .. }),
                "{bench}/{dataset}"
            );
            assert_eq!(
                iss.stats().diversity(),
                8,
                "{bench}/{dataset}: {:?}",
                iss.stats().opcode_histogram.keys().collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn excerpt_subset_b_has_11_types() {
    for bench in Benchmark::EXCERPT_SUBSET_B {
        for dataset in 0..3 {
            let program = bench.excerpt(dataset);
            let mut iss = Iss::new(IssConfig::default());
            iss.load(&program);
            let outcome = iss.run(1_000_000);
            assert!(
                matches!(outcome, RunOutcome::Halted { .. }),
                "{bench}/{dataset}"
            );
            assert_eq!(
                iss.stats().diversity(),
                11,
                "{bench}/{dataset}: {:?}",
                iss.stats().opcode_histogram.keys().collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn subset_code_identical_within_subset() {
    // The paper: "all three applications within a subset have identical
    // code" — so the text segments must match, only data differs.
    let texts: Vec<Vec<u8>> = Benchmark::EXCERPT_SUBSET_A
        .iter()
        .map(|&b| {
            let p = b.excerpt(0);
            p.segments[0].bytes.clone()
        })
        .collect();
    // The first segment starts with the code; compare the instruction
    // prefix up to the first data label (input_rom is after the code).
    let code_len = 21 * 4; // the shared template's code (before data)
    assert_eq!(&texts[0][..code_len], &texts[1][..code_len]);
    assert_eq!(&texts[1][..code_len], &texts[2][..code_len]);
}

#[test]
fn ttsprk_and_puwmod_share_diversity_for_temporal_study() {
    // The paper's temporal-behaviour experiment needs two benchmarks with
    // the same diversity but different instruction order.
    let tt = characterize(Benchmark::Ttsprk, &Params::default());
    let pw = characterize(Benchmark::Puwmod, &Params::default());
    assert!(
        tt.diversity.abs_diff(pw.diversity) <= 1,
        "ttsprk {} vs puwmod {}",
        tt.diversity,
        pw.diversity
    );
    // Different dynamic profiles (order/frequency differ).
    assert_ne!(tt.stats.opcode_histogram, pw.stats.opcode_histogram);
}
