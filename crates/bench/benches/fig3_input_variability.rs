//! Fig 3 bench: cost of one excerpt fault-injection campaign slice
//! (stuck-at-1 at IU nodes, identical code, benchmark-specific data).

use criterion::{criterion_group, criterion_main, Criterion};
use fault_inject::{Campaign, Target};
use rtl_sim::FaultKind;
use std::hint::black_box;
use workloads::Benchmark;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_input_variability");
    group.sample_size(10);
    for benchmark in [Benchmark::A2time, Benchmark::Rspeed] {
        let program = benchmark.excerpt(0);
        group.bench_function(format!("{}-excerpt-20-sites", benchmark.name()), |b| {
            b.iter(|| {
                let result = Campaign::new(program.clone(), Target::IntegerUnit)
                    .with_kinds(&[FaultKind::StuckAt1])
                    .with_sample(20, 0xF163)
                    .run(1);
                black_box(result.pf(FaultKind::StuckAt1))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
