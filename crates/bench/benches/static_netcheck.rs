//! Throughput of static net-graph pruning: the fork engine with and
//! without `with_static_analysis` on the campaigns where the analyzer
//! has something to say. Writes `BENCH_netcheck.json` at the repo root
//! with the measured jobs/s gain and pruning ratio per case.

use fault_inject::{Campaign, CampaignStats, Target};
use rtl_sim::FaultKind;
use std::time::Instant;
use workloads::{Benchmark, Params};

struct Measurement {
    jobs_per_sec: f64,
    stats: CampaignStats,
}

fn measure(campaign: &Campaign, threads: usize) -> Measurement {
    // Warm-up (page in the workload and golden run), then measure.
    let _ = campaign.run(threads);
    let start = Instant::now();
    let result = campaign.run(threads);
    let seconds = start.elapsed().as_secs_f64();
    let stats = *result.stats();
    Measurement {
        jobs_per_sec: stats.jobs as f64 / seconds,
        stats,
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let cases: [(&str, Benchmark, Target, &[FaultKind]); 3] = [
        (
            "iu-transient",
            Benchmark::Rspeed,
            Target::IntegerUnit,
            &[FaultKind::TransientFlip],
        ),
        (
            "iu-stuck-at",
            Benchmark::Intbench,
            Target::IntegerUnit,
            &[FaultKind::StuckAt0, FaultKind::StuckAt1],
        ),
        (
            "cmem-mixed",
            Benchmark::Rspeed,
            Target::CacheMemory,
            &[FaultKind::StuckAt1, FaultKind::TransientFlip],
        ),
    ];
    let mut entries = Vec::new();
    for (name, benchmark, target, kinds) in cases {
        let campaign = Campaign::new(benchmark.program(&Params::default()), target)
            .with_sample(60, 0xdac)
            .with_kinds(kinds)
            .with_injection_fraction(0.3);
        let plain = measure(&campaign, threads);
        let pruned = measure(&campaign.clone().with_static_analysis(true), threads);
        let speedup = plain.jobs_per_sec_gain(&pruned);
        let pruning_ratio = pruned.stats.statically_pruned as f64 / pruned.stats.jobs as f64;
        println!(
            "{name}: {} jobs | fork {:.1} jobs/s | fork+static {:.1} jobs/s | gain {:.2}x | pruned {:.1}% | {} classes",
            pruned.stats.jobs,
            plain.jobs_per_sec,
            pruned.jobs_per_sec,
            speedup,
            pruning_ratio * 100.0,
            pruned.stats.collapsed_classes,
        );
        entries.push(format!(
            concat!(
                "  {{\n",
                "    \"name\": \"{}\",\n",
                "    \"jobs\": {},\n",
                "    \"fork_jobs_per_sec\": {:.1},\n",
                "    \"static_jobs_per_sec\": {:.1},\n",
                "    \"jobs_per_sec_gain\": {:.2},\n",
                "    \"statically_pruned\": {},\n",
                "    \"pruning_ratio\": {:.4},\n",
                "    \"collapsed_classes\": {},\n",
                "    \"fork_cycles_simulated\": {},\n",
                "    \"static_cycles_simulated\": {}\n",
                "  }}"
            ),
            name,
            pruned.stats.jobs,
            plain.jobs_per_sec,
            pruned.jobs_per_sec,
            speedup,
            pruned.stats.statically_pruned,
            pruning_ratio,
            pruned.stats.collapsed_classes,
            plain.stats.cycles_simulated,
            pruned.stats.cycles_simulated,
        ));
    }
    let json = format!(
        "{{\n  \"threads\": {},\n  \"cases\": [\n{}\n]\n}}\n",
        threads,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_netcheck.json");
    std::fs::write(path, &json).expect("write BENCH_netcheck.json");
    println!("wrote {path}");
}

impl Measurement {
    /// jobs/s of `pruned` over this (plain) measurement.
    fn jobs_per_sec_gain(&self, pruned: &Measurement) -> f64 {
        pruned.jobs_per_sec / self.jobs_per_sec
    }
}
