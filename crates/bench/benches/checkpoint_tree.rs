//! Checkpoint-tree sweep economics: jobs/sec and cycle cost of a dense
//! any-instant transient sweep across checkpoint stride settings, versus
//! full re-execution. Writes `BENCH_checkpoint.json` at the repo root.
//!
//! The sweep axes are instant density (instants per golden run) and
//! stride K (extra grid checkpoints every K cycles, `0` = boundaries
//! only). Full re-execution is the per-density baseline; the dense case
//! is the ISSUE acceptance number (>= 2x jobs/sec over re-execution).

use fault_inject::{Campaign, CampaignStats, Execution, GoldenRun, InjectionInstant, Target};
use rtl_sim::FaultKind;
use std::time::Instant;
use workloads::{Benchmark, Params};

const DENSITIES: [usize; 3] = [4, 16, 48];
/// Stride as a divisor of the golden run length; 0 = no stride grid.
const STRIDE_DIVISORS: [u64; 3] = [0, 4, 16];

struct Sweep {
    seconds: f64,
    jobs: usize,
    stats: CampaignStats,
}

fn instants(density: usize) -> Vec<InjectionInstant> {
    (1..=density)
        .map(|i| InjectionInstant::Fraction(i as f64 / (density + 1) as f64))
        .collect()
}

fn run_sweep(campaign: &Campaign, density: usize, threads: usize) -> Sweep {
    let instants = instants(density);
    // Warm-up, then measure.
    let _ = campaign.try_run_multi(threads, &instants).expect("sweep");
    let start = Instant::now();
    let results = campaign.try_run_multi(threads, &instants).expect("sweep");
    let seconds = start.elapsed().as_secs_f64();
    let mut stats = CampaignStats::default();
    for r in &results {
        stats.merge(r.stats());
    }
    Sweep {
        seconds,
        jobs: stats.jobs,
        stats,
    }
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let program = Benchmark::Rspeed.program(&Params::default());
    let golden = GoldenRun::capture(&program, &leon3_model::Leon3Config::default());
    let base = Campaign::new(program, Target::IntegerUnit)
        .with_sample(8, 0xc4)
        .with_kinds(&[FaultKind::TransientFlip]);

    let mut entries = Vec::new();
    for density in DENSITIES {
        let full = run_sweep(
            &base.clone().with_execution(Execution::FullReexecution),
            density,
            threads,
        );
        let full_jobs_per_sec = full.jobs as f64 / full.seconds;
        for divisor in STRIDE_DIVISORS {
            let campaign = match golden.cycles.checked_div(divisor) {
                None => base.clone(),
                Some(stride) => base.clone().with_checkpoint_stride(stride),
            };
            let fork = run_sweep(&campaign, density, threads);
            let jobs_per_sec = fork.jobs as f64 / fork.seconds;
            let speedup = full.seconds / fork.seconds;
            println!(
                "density {density:2} stride/{divisor:2}: {:6.1} jobs/s vs full {:6.1} | speedup {speedup:.2}x | {} checkpoints ({} bytes) | replay {} cycles",
                jobs_per_sec,
                full_jobs_per_sec,
                fork.stats.checkpoints_taken,
                fork.stats.checkpoint_bytes,
                fork.stats.replay_cycles,
            );
            assert_eq!(
                fork.stats.full_reexecutions, 0,
                "checkpoint tree must never fall back to full re-execution"
            );
            entries.push(format!(
                concat!(
                    "  {{\n",
                    "    \"density\": {},\n",
                    "    \"stride_divisor\": {},\n",
                    "    \"jobs\": {},\n",
                    "    \"jobs_per_sec\": {:.1},\n",
                    "    \"full_jobs_per_sec\": {:.1},\n",
                    "    \"speedup\": {:.2},\n",
                    "    \"cycles_ratio\": {:.4},\n",
                    "    \"checkpoints_taken\": {},\n",
                    "    \"checkpoint_bytes\": {},\n",
                    "    \"replay_cycles\": {},\n",
                    "    \"forked\": {},\n",
                    "    \"restored_from_checkpoint\": {},\n",
                    "    \"full_reexecutions\": {}\n",
                    "  }}"
                ),
                density,
                divisor,
                fork.jobs,
                jobs_per_sec,
                full_jobs_per_sec,
                speedup,
                fork.stats.cycles_simulated as f64 / full.stats.cycles_simulated as f64,
                fork.stats.checkpoints_taken,
                fork.stats.checkpoint_bytes,
                fork.stats.replay_cycles,
                fork.stats.forked,
                fork.stats.restored_from_checkpoint,
                fork.stats.full_reexecutions,
            ));
        }
    }
    // The deterministic regression gate: the dense intermittent sweep's
    // fork/full cycle ratio, checked in CI by `repro benchgate`.
    let gate = bench::gate::checkpoint_baseline_json(&bench::gate::measure_checkpoint(threads));
    let json = format!(
        "{{\n  \"threads\": {},\n  \"benchmark\": \"rspeed\",\n  \"domain\": \"IU\",\n  \"gate\": {},\n  \"sweeps\": [\n{}\n]\n}}\n",
        threads,
        gate,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_checkpoint.json");
    std::fs::write(path, &json).expect("write BENCH_checkpoint.json");
    println!("wrote {path}");
}
