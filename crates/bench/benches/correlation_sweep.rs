//! Correlation sweep economics and fit quality: wall-clock of the
//! Fig. 7 sweep as a first-class campaign, the fitted `Pf = a·ln(D) + b`
//! coefficients per injection domain, and the deterministic CI gate
//! (fork/full cycle ratio plus an R² floor). Writes
//! `BENCH_correlation.json` at the repo root.

use fault_inject::wire::{kind_to_token, target_to_token};
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let spec = bench::gate::correlation_gate_spec();

    // Warm-up, then measure the end-to-end sweep (ISS measurement,
    // golden captures, every cell campaign, the fit).
    let _ = spec.run_report(threads).expect("sweep");
    let start = Instant::now();
    let report = spec.run_report(threads).expect("sweep");
    let seconds = start.elapsed().as_secs_f64();

    println!(
        "sweep: {} cells, {} domains in {seconds:.2}s ({threads} threads)",
        report.cells.len(),
        report.domains.len(),
    );
    print!("{report}");

    let mut entries = Vec::new();
    for domain in &report.domains {
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"target\": \"{}\",\n",
                "      \"kind\": \"{}\",\n",
                "      \"a\": {:.4},\n",
                "      \"b\": {:.4},\n",
                "      \"r2\": {:.4},\n",
                "      \"n\": {},\n",
                "      \"band\": {:.4}\n",
                "    }}"
            ),
            target_to_token(domain.target),
            kind_to_token(domain.kind),
            domain.model.a,
            domain.model.b,
            domain.model.r2,
            domain.model.n,
            domain.model.band(),
        ));
    }

    // The deterministic regression gate: cycle economics + R² floor,
    // checked in CI by `repro benchgate`.
    let gate = bench::gate::correlation_baseline_json(&bench::gate::measure_correlation(threads));
    let json = format!(
        "{{\n  \"threads\": {},\n  \"sweep_seconds\": {:.3},\n  \"cells\": {},\n  \"gate\": {},\n  \"domains\": [\n{}\n  ]\n}}\n",
        threads,
        seconds,
        report.cells.len(),
        gate,
        entries.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_correlation.json");
    std::fs::write(path, &json).expect("write BENCH_correlation.json");
    println!("wrote {path}");
}
