//! Fig 4 bench: golden-run cost of the iteration-count variants of
//! `rspeed` on the RTL model (the per-variant fixed cost of the study).

use criterion::{criterion_group, criterion_main, Criterion};
use fault_inject::GoldenRun;
use leon3_model::Leon3Config;
use std::hint::black_box;
use workloads::{Benchmark, Params};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_iterations");
    group.sample_size(10);
    for iterations in [2u32, 10] {
        let program = Benchmark::Rspeed.program(&Params::with_iterations(iterations));
        group.bench_function(format!("rspeed-x{iterations}-golden"), |b| {
            b.iter(|| {
                let golden = GoldenRun::capture(black_box(&program), &Leon3Config::default());
                black_box(golden.cycles)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
