//! The simulation-time experiment's core measurement: instructions per
//! second of the ISS, the fast RTL model and the faithful-clocking RTL
//! model (which pays an event-driven simulator's per-cycle evaluation
//! load).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use leon3_model::{Leon3, Leon3Config};
use sparc_iss::{Iss, IssConfig, RunOutcome};
use std::hint::black_box;
use workloads::{Benchmark, Params};

fn bench(c: &mut Criterion) {
    let program = Benchmark::Intbench.program(&Params::default());
    // Pre-measure instruction count for throughput scaling.
    let mut probe = Iss::new(IssConfig::default());
    probe.load(&program);
    assert!(matches!(probe.run(10_000_000), RunOutcome::Halted { .. }));
    let insns = probe.stats().instructions;

    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(insns));

    group.bench_function("iss", |b| {
        b.iter(|| {
            let mut iss = Iss::new(IssConfig::default());
            iss.load(black_box(&program));
            black_box(iss.run(10_000_000))
        });
    });
    group.bench_function("rtl_fast", |b| {
        b.iter(|| {
            let mut rtl = Leon3::new(Leon3Config::default());
            rtl.load(black_box(&program));
            black_box(rtl.run(10_000_000))
        });
    });
    group.bench_function("rtl_faithful", |b| {
        b.iter(|| {
            let mut rtl = Leon3::new(Leon3Config {
                faithful_clocking: true,
                ..Leon3Config::default()
            });
            rtl.load(black_box(&program));
            black_box(rtl.run(10_000_000))
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
