//! Fig 6 bench: per-injection cost of a CMEM campaign slice (cache tag,
//! data and controller nets).

use criterion::{criterion_group, criterion_main, Criterion};
use fault_inject::{Campaign, Target};
use std::hint::black_box;
use workloads::{Benchmark, Params};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_cmem_campaign");
    group.sample_size(10);
    let program = Benchmark::Intbench.program(&Params::default());
    group.bench_function("intbench-10-sites-3-models", |b| {
        b.iter(|| {
            let result = Campaign::new(program.clone(), Target::CacheMemory)
                .with_sample(10, 0xF16)
                .run(1);
            black_box(result.records().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
