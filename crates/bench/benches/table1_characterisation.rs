//! Table 1 bench: cost of characterising a benchmark on the ISS (the
//! per-workload cost of extracting the paper's diversity metric).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workloads::{characterize, Benchmark, Params};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_characterisation");
    group.sample_size(10);
    for benchmark in [Benchmark::Intbench, Benchmark::Rspeed] {
        group.bench_function(benchmark.name(), |b| {
            b.iter(|| {
                let row = characterize(black_box(benchmark), &Params::default());
                black_box(row.diversity)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
