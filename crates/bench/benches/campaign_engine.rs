//! Before/after throughput of the campaign engine: full re-execution vs
//! checkpoint-and-fork with activation skipping and divergence
//! short-circuiting. Writes `BENCH_campaign.json` at the repo root,
//! including the `gate` section `repro benchgate` checks in CI.

use bench::gate;
use fault_inject::{Campaign, CampaignStats, Execution, Target};
use std::time::Instant;
use workloads::{Benchmark, Params};

struct Measurement {
    seconds: f64,
    jobs_per_sec: f64,
    stats: CampaignStats,
}

fn measure(campaign: &Campaign, execution: Execution, threads: usize) -> Measurement {
    let campaign = campaign.clone().with_execution(execution);
    // Warm-up (page in the workload and golden run), then measure.
    let _ = campaign.run(threads);
    let start = Instant::now();
    let result = campaign.run(threads);
    let seconds = start.elapsed().as_secs_f64();
    let stats = *result.stats();
    Measurement {
        seconds,
        jobs_per_sec: stats.jobs as f64 / seconds,
        stats,
    }
}

fn engine_json(m: &Measurement) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"seconds\": {:.4},\n",
            "      \"jobs_per_sec\": {:.1},\n",
            "      \"cycles_simulated\": {},\n",
            "      \"cycles_avoided\": {},\n",
            "      \"forked\": {},\n",
            "      \"full_reexecutions\": {},\n",
            "      \"skipped_inactive\": {},\n",
            "      \"short_circuited\": {},\n",
            "      \"short_circuit_rate\": {:.4}\n",
            "    }}"
        ),
        m.seconds,
        m.jobs_per_sec,
        m.stats.cycles_simulated,
        m.stats.cycles_avoided,
        m.stats.forked,
        m.stats.full_reexecutions,
        m.stats.skipped_inactive,
        m.stats.short_circuited,
        m.stats.short_circuit_rate(),
    )
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let cases = [
        (Benchmark::Intbench, Target::IntegerUnit, "IU"),
        (Benchmark::Rspeed, Target::CacheMemory, "CMEM"),
    ];
    let mut entries = Vec::new();
    for (benchmark, target, domain) in cases {
        let program = benchmark.program(&Params::default());
        let campaign = Campaign::new(program, target)
            .with_sample(40, 0xbe)
            .with_injection_fraction(0.3);
        let fork = measure(&campaign, Execution::Fork, threads);
        let full = measure(&campaign, Execution::FullReexecution, threads);
        println!(
            "{} / {domain}: {} jobs | fork {:.1} jobs/s ({} cycles) | full {:.1} jobs/s ({} cycles) | speedup {:.2}x",
            benchmark.name(),
            fork.stats.jobs,
            fork.jobs_per_sec,
            fork.stats.cycles_simulated,
            full.jobs_per_sec,
            full.stats.cycles_simulated,
            full.seconds / fork.seconds,
        );
        entries.push(format!(
            concat!(
                "  {{\n",
                "    \"benchmark\": \"{}\",\n",
                "    \"domain\": \"{}\",\n",
                "    \"jobs\": {},\n",
                "    \"golden_cycles\": {},\n",
                "    \"prefix_cycles\": {},\n",
                "    \"speedup\": {:.2},\n",
                "    \"cycles_ratio\": {:.4},\n",
                "    \"fork\": {},\n",
                "    \"full_reexecution\": {}\n",
                "  }}"
            ),
            benchmark.name(),
            domain,
            fork.stats.jobs,
            fork.stats.golden_cycles,
            fork.stats.prefix_cycles,
            full.seconds / fork.seconds,
            fork.stats.cycles_simulated as f64 / full.stats.cycles_simulated as f64,
            engine_json(&fork),
            engine_json(&full),
        ));
    }
    let measurements: Vec<_> = gate::CASES
        .iter()
        .map(|case| gate::measure(case, threads))
        .collect();
    for m in &measurements {
        println!(
            "gate {}: cycles_ratio {:.4} ({} fork / {} full cycles)",
            m.name,
            m.cycles_ratio(),
            m.fork_cycles,
            m.full_cycles,
        );
    }
    let json = format!(
        "{{\n  \"threads\": {},\n  \"campaigns\": [\n{}\n],\n  \"gate\": {}\n}}\n",
        threads,
        entries.join(",\n"),
        gate::baseline_json(&measurements),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_campaign.json");
    std::fs::write(path, &json).expect("write BENCH_campaign.json");
    println!("wrote {path}");
}
