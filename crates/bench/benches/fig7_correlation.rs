//! Fig 7 bench: the analysis side of the correlation — diversity
//! extraction on the ISS plus the logarithmic fit.

use correlation::{diversity_of, DiversityModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use workloads::{Benchmark, Params};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_correlation");
    group.sample_size(10);

    let program = Benchmark::Intbench.program(&Params::default());
    group.bench_function("diversity-extraction-intbench", |b| {
        b.iter(|| black_box(diversity_of(black_box(&program))));
    });

    let points: Vec<(f64, f64)> = (0..12)
        .map(|i| {
            let d = 8.0 + i as f64 * 3.5;
            (d, 0.0838 * d.ln() - 0.0191 + (i % 3) as f64 * 0.004)
        })
        .collect();
    group.bench_function("log-fit-12-points", |b| {
        b.iter(|| {
            let model = DiversityModel::fit(black_box(&points)).expect("fits");
            black_box(model.r_squared())
        });
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
