//! Shared helpers for the benchmark harness and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use correlation::experiments::ExperimentConfig;

/// Resolve the experiment sizing from explicit variable lookups; the
/// testable core of [`config_from_env`].
///
/// A variable that is set but unusable (non-numeric, or zero where zero
/// would wedge the run) is ignored with one warning line naming the
/// variable and the value actually used.
pub fn config_from_vars(get: impl Fn(&str) -> Option<String>) -> (ExperimentConfig, Vec<String>) {
    let mut config = ExperimentConfig::full();
    let mut warnings = Vec::new();
    let mut resolve = |name: &str, fallback: u64, min: u64| -> Option<u64> {
        let raw = get(name)?;
        match raw.parse::<u64>() {
            Ok(n) if n >= min => Some(n),
            Ok(_) => {
                warnings.push(format!(
                    "[repro] ignoring {name}={raw:?} (must be at least {min}); using {fallback}"
                ));
                None
            }
            Err(_) => {
                warnings.push(format!(
                    "[repro] ignoring {name}={raw:?} (not a non-negative integer); using {fallback}"
                ));
                None
            }
        }
    };
    if let Some(n) = resolve("REPRO_SAMPLE", config.sample_per_campaign as u64, 1) {
        config.sample_per_campaign = n as usize;
    }
    if let Some(n) = resolve("REPRO_SEED", config.seed, 0) {
        config.seed = n;
    }
    if let Some(n) = resolve("REPRO_THREADS", config.threads as u64, 1) {
        config.threads = n as usize;
    }
    (config, warnings)
}

/// Resolve the experiment sizing from the environment:
/// `REPRO_SAMPLE` (sites per campaign), `REPRO_SEED`, `REPRO_THREADS`.
/// Defaults to [`ExperimentConfig::full`] sizing; unusable values are
/// ignored with a warning on stderr (see [`config_from_vars`]).
pub fn config_from_env() -> ExperimentConfig {
    let (config, warnings) = config_from_vars(|name| std::env::var(name).ok());
    for warning in &warnings {
        eprintln!("{warning}");
    }
    config
}

/// The CI bench-regression gate over the campaign engine.
///
/// Wall-clock throughput is runner-dependent, so the gate compares
/// **simulated cycle counts** instead: the fork/full-re-execution cycle
/// ratio of a fixed smoke campaign is deterministic (independent of
/// thread count, load and machine), making the committed baseline
/// noise-proof. The baseline and its tolerance live in the `gate`
/// section of `BENCH_campaign.json`, written by the `campaign_engine`
/// bench and checked by `repro benchgate`.
pub mod gate {
    use fault_inject::wire::Json;
    use fault_inject::{
        merge_correlation_shards, Campaign, CorrelationSpec, Execution, GoldenRun,
        InjectionInstant, Target,
    };
    use leon3_model::Leon3Config;
    use rtl_sim::FaultKind;
    use std::fmt::Write as _;
    use workloads::{Benchmark, Params};

    /// Relative tolerance on the cycle ratio recorded into the baseline
    /// file. The committed value in the file is authoritative at check
    /// time; this constant only seeds newly written baselines.
    pub const DEFAULT_TOLERANCE: f64 = 0.25;

    /// One gate case: a small deterministic campaign in smoke config.
    pub struct GateCase {
        /// Stable name keying the baseline entry.
        pub name: &'static str,
        /// Workload under injection.
        pub benchmark: Benchmark,
        /// Fault domain.
        pub target: Target,
    }

    /// The smoke cases the gate runs — one per fault domain the engine
    /// optimizes differently.
    pub const CASES: [GateCase; 2] = [
        GateCase {
            name: "intbench-iu",
            benchmark: Benchmark::Intbench,
            target: Target::IntegerUnit,
        },
        GateCase {
            name: "rspeed-cmem",
            benchmark: Benchmark::Rspeed,
            target: Target::CacheMemory,
        },
    ];

    fn campaign(case: &GateCase) -> Campaign {
        Campaign::new(case.benchmark.program(&Params::default()), case.target)
            .with_sample(12, 0xbe)
            .with_kinds(&[FaultKind::StuckAt1, FaultKind::OpenLine])
            .with_injection_fraction(0.3)
    }

    /// A case's deterministic measurement.
    pub struct GateMeasurement {
        /// The case name.
        pub name: &'static str,
        /// Cycles the fork engine simulated.
        pub fork_cycles: u64,
        /// Cycles full re-execution simulated.
        pub full_cycles: u64,
    }

    impl GateMeasurement {
        /// Fork cycles as a fraction of full-re-execution cycles (lower
        /// is better; 1.0 = the fork engine saves nothing).
        pub fn cycles_ratio(&self) -> f64 {
            self.fork_cycles as f64 / self.full_cycles as f64
        }
    }

    /// Run one gate case on both engines.
    ///
    /// # Panics
    ///
    /// Panics if the statically valid smoke campaign fails to run.
    pub fn measure(case: &GateCase, threads: usize) -> GateMeasurement {
        let base = campaign(case);
        let fork = base
            .clone()
            .with_execution(Execution::Fork)
            .try_run(threads)
            .expect("gate campaign is statically valid");
        let full = base
            .with_execution(Execution::FullReexecution)
            .try_run(threads)
            .expect("gate campaign is statically valid");
        GateMeasurement {
            name: case.name,
            fork_cycles: fork.stats().cycles_simulated,
            full_cycles: full.stats().cycles_simulated,
        }
    }

    /// Serialize the `gate` section for `BENCH_campaign.json`.
    pub fn baseline_json(measurements: &[GateMeasurement]) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n    \"tolerance\": {DEFAULT_TOLERANCE},\n    \"cases\": [\n"
        );
        for (i, m) in measurements.iter().enumerate() {
            if i > 0 {
                s.push_str(",\n");
            }
            let _ = write!(
                s,
                concat!(
                    "      {{\n",
                    "        \"name\": \"{}\",\n",
                    "        \"fork_cycles\": {},\n",
                    "        \"full_cycles\": {},\n",
                    "        \"cycles_ratio\": {:.4}\n",
                    "      }}"
                ),
                m.name,
                m.fork_cycles,
                m.full_cycles,
                m.cycles_ratio(),
            );
        }
        s.push_str("\n    ]\n  }");
        s
    }

    /// Re-measure every committed case and compare against the baseline.
    ///
    /// `perturb` multiplies each measured ratio before comparison — `1.0`
    /// for a real check; larger values let CI prove the gate actually
    /// fails on a regression.
    ///
    /// # Errors
    ///
    /// A malformed baseline, an unknown case name, or any case whose
    /// (perturbed) ratio exceeds `baseline * (1 + tolerance)` fails the
    /// gate; the error lines describe every failure.
    pub fn check(
        bench_json: &str,
        threads: usize,
        perturb: f64,
    ) -> Result<Vec<String>, Vec<String>> {
        check_cases(bench_json, "campaign_engine", |name| {
            CASES
                .iter()
                .find(|c| c.name == name)
                .map(|case| measure(case, threads).cycles_ratio() * perturb)
        })
    }

    /// The checkpoint-tree gate case: a **dense intermittent sweep** —
    /// twelve injection instants of the two time-varying fault models
    /// over one checkpoint pool with a stride grid. Time-varying masks
    /// must survive every restore/replay boundary, so this case pins the
    /// fork engine's cycle economics on exactly the schedule shapes the
    /// permanent-fault gate cases never exercise.
    pub const CHECKPOINT_CASE: &str = "rspeed-iu-intermittent-dense";

    /// Instants of the dense sweep (shared by measure and tests).
    pub fn checkpoint_case_instants() -> Vec<InjectionInstant> {
        (1..=12)
            .map(|i| InjectionInstant::Fraction(f64::from(i) / 13.0))
            .collect()
    }

    /// The dense-sweep campaign, parameterized by engine.
    fn checkpoint_case_campaign() -> Campaign {
        let program = Benchmark::Rspeed.program(&Params::default());
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        Campaign::new(program, Target::IntegerUnit)
            .with_sample(8, 0xc4)
            .with_kinds(&[
                FaultKind::IntermittentStuck {
                    level: true,
                    period: 500,
                    duty: 125,
                    phase: 0,
                },
                FaultKind::TransientBurst {
                    flips: 3,
                    spacing: 100,
                },
            ])
            .with_checkpoint_stride((golden.cycles / 8).max(1))
    }

    /// Measure the dense intermittent sweep on both engines.
    ///
    /// # Panics
    ///
    /// Panics if the statically valid sweep fails to run.
    pub fn measure_checkpoint(threads: usize) -> GateMeasurement {
        let instants = checkpoint_case_instants();
        let base = checkpoint_case_campaign();
        let sum = |results: Vec<fault_inject::CampaignResult>| -> u64 {
            results.iter().map(|r| r.stats().cycles_simulated).sum()
        };
        let fork = base
            .clone()
            .with_execution(Execution::Fork)
            .try_run_multi(threads, &instants)
            .expect("checkpoint gate sweep is statically valid");
        let full = base
            .with_execution(Execution::FullReexecution)
            .try_run_multi(threads, &instants)
            .expect("checkpoint gate sweep is statically valid");
        GateMeasurement {
            name: CHECKPOINT_CASE,
            fork_cycles: sum(fork),
            full_cycles: sum(full),
        }
    }

    /// Serialize the `gate` section for `BENCH_checkpoint.json`.
    pub fn checkpoint_baseline_json(m: &GateMeasurement) -> String {
        baseline_json(std::slice::from_ref(m))
    }

    /// Check `BENCH_checkpoint.json`'s `gate` section: re-measure the
    /// dense intermittent sweep and compare its fork/full cycle ratio.
    ///
    /// # Errors
    ///
    /// As [`check`].
    pub fn check_checkpoint(
        bench_json: &str,
        threads: usize,
        perturb: f64,
    ) -> Result<Vec<String>, Vec<String>> {
        check_cases(bench_json, "checkpoint_tree", |name| {
            (name == CHECKPOINT_CASE).then(|| measure_checkpoint(threads).cycles_ratio() * perturb)
        })
    }

    /// The correlation gate case: the paper's Table 1 sweep (six kernels
    /// plus their low-diversity excerpts), sampled small, stuck-at-1 at
    /// IU nodes. One case gates two quantities — the sweep's fork/full
    /// cycle economics and the fitted model's R².
    pub const CORRELATION_CASE: &str = "table1-iu-stuck1";

    /// Minimum acceptable R² of the gate sweep's best-correlating
    /// domain, seeded into newly written baselines. As with the cycle
    /// tolerance, the committed value in the file is authoritative at
    /// check time.
    pub const R2_FLOOR: f64 = 0.85;

    /// The gate sweep: the default Fig. 7 cross-product under small
    /// deterministic sampling and a mid-run injection instant (so the
    /// fork engine has golden prefix to save).
    pub fn correlation_gate_spec() -> CorrelationSpec {
        let mut spec = CorrelationSpec::new();
        spec.sample = Some((48, 0xd1));
        spec.injection = InjectionInstant::Fraction(0.3);
        spec
    }

    /// The correlation case's deterministic measurement: cycle economics
    /// plus fit quality.
    pub struct CorrelationMeasurement {
        /// The case name ([`CORRELATION_CASE`]).
        pub name: &'static str,
        /// Cycles the fork engine simulated across every sweep cell.
        pub fork_cycles: u64,
        /// Cycles full re-execution simulated across every sweep cell.
        pub full_cycles: u64,
        /// R² of the sweep's best-correlating fitted domain.
        pub r2: f64,
    }

    impl CorrelationMeasurement {
        /// Fork cycles as a fraction of full-re-execution cycles.
        pub fn cycles_ratio(&self) -> f64 {
            self.fork_cycles as f64 / self.full_cycles as f64
        }
    }

    /// Run the correlation gate sweep on both engines and fit its model.
    ///
    /// # Panics
    ///
    /// Panics if the statically valid gate sweep fails to run or fit.
    pub fn measure_correlation(threads: usize) -> CorrelationMeasurement {
        let spec = correlation_gate_spec();
        let shard = spec
            .run(threads)
            .expect("correlation gate sweep is statically valid");
        let fork_cycles = shard
            .results
            .iter()
            .map(|r| r.result.stats().cycles_simulated)
            .sum();
        let mut full_cycles = 0u64;
        for (cell, target) in spec.jobs() {
            let full = spec
                .campaign(&cell, target)
                .with_execution(Execution::FullReexecution)
                .try_run(threads)
                .expect("correlation gate sweep is statically valid");
            full_cycles += full.stats().cycles_simulated;
        }
        let report = merge_correlation_shards(vec![shard]).expect("the gate sweep fits a model");
        CorrelationMeasurement {
            name: CORRELATION_CASE,
            fork_cycles,
            full_cycles,
            r2: report.best_domain().model.r2,
        }
    }

    /// Serialize the `gate` section for `BENCH_correlation.json`.
    pub fn correlation_baseline_json(m: &CorrelationMeasurement) -> String {
        format!(
            concat!(
                "{{\n    \"tolerance\": {},\n    \"r2_floor\": {},\n    \"cases\": [\n",
                "      {{\n",
                "        \"name\": \"{}\",\n",
                "        \"fork_cycles\": {},\n",
                "        \"full_cycles\": {},\n",
                "        \"cycles_ratio\": {:.4},\n",
                "        \"r2\": {:.4}\n",
                "      }}\n    ]\n  }}"
            ),
            DEFAULT_TOLERANCE,
            R2_FLOOR,
            m.name,
            m.fork_cycles,
            m.full_cycles,
            m.cycles_ratio(),
            m.r2,
        )
    }

    /// Check `BENCH_correlation.json`'s `gate` section: re-measure the
    /// gate sweep and compare its cycle ratio against the committed
    /// baseline **and** its fitted R² against the committed floor.
    ///
    /// `perturb` degrades both gated quantities — the measured ratio is
    /// multiplied (a slower engine), the measured R² divided (a worse
    /// fit) — so CI can prove both directions of the gate fire.
    ///
    /// # Errors
    ///
    /// A malformed baseline, an unknown case name, a (perturbed) ratio
    /// above `baseline * (1 + tolerance)`, or a (perturbed) R² below
    /// `r2_floor` fails the gate.
    pub fn check_correlation(
        bench_json: &str,
        threads: usize,
        perturb: f64,
    ) -> Result<Vec<String>, Vec<String>> {
        let v = Json::parse(bench_json).map_err(|e| vec![format!("baseline unreadable: {e}")])?;
        let gate = v.get("gate").ok_or_else(|| {
            vec!["baseline has no `gate` section (re-run the correlation_sweep bench)".to_string()]
        })?;
        let tolerance = gate
            .get_f64("tolerance")
            .ok_or_else(|| vec!["gate section has no `tolerance`".to_string()])?;
        let r2_floor = gate
            .get_f64("r2_floor")
            .ok_or_else(|| vec!["gate section has no `r2_floor`".to_string()])?;
        let cases = gate
            .get_array("cases")
            .ok_or_else(|| vec!["gate section has no `cases`".to_string()])?;
        let mut report = Vec::new();
        let mut failures = Vec::new();
        for entry in cases {
            let Some(name) = entry.get_str("name") else {
                failures.push("gate case without a name".to_string());
                continue;
            };
            let Some(baseline) = entry.get_f64("cycles_ratio") else {
                failures.push(format!("gate case `{name}` has no cycles_ratio"));
                continue;
            };
            if name != CORRELATION_CASE {
                failures.push(format!("gate case `{name}` is unknown to this binary"));
                continue;
            }
            let m = measure_correlation(threads);
            let ratio = m.cycles_ratio() * perturb;
            let r2 = m.r2 / perturb;
            let limit = baseline * (1.0 + tolerance);
            let ratio_line = format!(
                "{name}: cycles_ratio {ratio:.4} vs baseline {baseline:.4} (limit {limit:.4})"
            );
            if ratio > limit {
                failures.push(format!("REGRESSION {ratio_line}"));
            } else {
                report.push(format!("ok {ratio_line}"));
            }
            let r2_line = format!("{name}: r2 {r2:.4} (floor {r2_floor:.4})");
            if r2 < r2_floor {
                failures.push(format!("REGRESSION {r2_line}"));
            } else {
                report.push(format!("ok {r2_line}"));
            }
        }
        if failures.is_empty() {
            Ok(report)
        } else {
            Err(failures)
        }
    }

    /// Shared gate walk: parse a baseline's `gate` section and compare
    /// each committed case against `measure_ratio` (which returns `None`
    /// for names unknown to this binary).
    fn check_cases(
        bench_json: &str,
        source_bench: &str,
        measure_ratio: impl Fn(&str) -> Option<f64>,
    ) -> Result<Vec<String>, Vec<String>> {
        let v = Json::parse(bench_json).map_err(|e| vec![format!("baseline unreadable: {e}")])?;
        let gate = v.get("gate").ok_or_else(|| {
            vec![format!(
                "baseline has no `gate` section (re-run the {source_bench} bench)"
            )]
        })?;
        let tolerance = gate
            .get_f64("tolerance")
            .ok_or_else(|| vec!["gate section has no `tolerance`".to_string()])?;
        let cases = gate
            .get_array("cases")
            .ok_or_else(|| vec!["gate section has no `cases`".to_string()])?;
        let mut report = Vec::new();
        let mut failures = Vec::new();
        for entry in cases {
            let Some(name) = entry.get_str("name") else {
                failures.push("gate case without a name".to_string());
                continue;
            };
            let Some(baseline) = entry.get_f64("cycles_ratio") else {
                failures.push(format!("gate case `{name}` has no cycles_ratio"));
                continue;
            };
            let Some(measured) = measure_ratio(name) else {
                failures.push(format!("gate case `{name}` is unknown to this binary"));
                continue;
            };
            let limit = baseline * (1.0 + tolerance);
            let line = format!(
                "{name}: cycles_ratio {measured:.4} vs baseline {baseline:.4} (limit {limit:.4})"
            );
            if measured > limit {
                failures.push(format!("REGRESSION {line}"));
            } else {
                report.push(format!("ok {line}"));
            }
        }
        if failures.is_empty() {
            Ok(report)
        } else {
            Err(failures)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn env_defaults_are_positive() {
        let (c, warnings) = config_from_vars(|_| None);
        assert!(c.sample_per_campaign > 0);
        assert!(c.threads > 0);
        assert!(warnings.is_empty());
    }

    #[test]
    fn usable_overrides_apply_silently() {
        let (c, warnings) =
            config_from_vars(vars(&[("REPRO_SAMPLE", "12"), ("REPRO_THREADS", "3")]));
        assert_eq!(c.sample_per_campaign, 12);
        assert_eq!(c.threads, 3);
        assert!(warnings.is_empty());
    }

    #[test]
    fn unusable_threads_fall_back_with_one_warning_each() {
        let fallback = ExperimentConfig::full().threads;
        for bad in ["0", "abc", "-2", "1.5"] {
            let (c, warnings) = config_from_vars(vars(&[("REPRO_THREADS", bad)]));
            assert_eq!(c.threads, fallback, "REPRO_THREADS={bad}");
            assert_eq!(warnings.len(), 1, "REPRO_THREADS={bad}");
            assert!(
                warnings[0].contains("REPRO_THREADS") && warnings[0].contains(bad),
                "warning names the variable and value: {}",
                warnings[0]
            );
            assert!(
                warnings[0].contains(&fallback.to_string()),
                "warning names the fallback: {}",
                warnings[0]
            );
        }
        // A zero sample would run an empty campaign; it warns too.
        let (c, warnings) = config_from_vars(vars(&[("REPRO_SAMPLE", "0")]));
        assert_eq!(
            c.sample_per_campaign,
            ExperimentConfig::full().sample_per_campaign
        );
        assert_eq!(warnings.len(), 1);
        // Seed zero is a perfectly good seed.
        let (c, warnings) = config_from_vars(vars(&[("REPRO_SEED", "0")]));
        assert_eq!(c.seed, 0);
        assert!(warnings.is_empty());
    }
}
