//! Shared helpers for the benchmark harness and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use correlation::experiments::ExperimentConfig;

/// Resolve the experiment sizing from the environment:
/// `REPRO_SAMPLE` (sites per campaign), `REPRO_SEED`, `REPRO_THREADS`.
/// Defaults to [`ExperimentConfig::full`] sizing.
pub fn config_from_env() -> ExperimentConfig {
    let mut config = ExperimentConfig::full();
    if let Ok(s) = std::env::var("REPRO_SAMPLE") {
        if let Ok(n) = s.parse() {
            config.sample_per_campaign = n;
        }
    }
    if let Ok(s) = std::env::var("REPRO_SEED") {
        if let Ok(n) = s.parse() {
            config.seed = n;
        }
    }
    if let Ok(s) = std::env::var("REPRO_THREADS") {
        if let Ok(n) = s.parse() {
            config.threads = n;
        }
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_positive() {
        let c = config_from_env();
        assert!(c.sample_per_campaign > 0);
        assert!(c.threads > 0);
    }
}
