//! Shared helpers for the benchmark harness and the `repro` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use correlation::experiments::ExperimentConfig;

/// Resolve the experiment sizing from explicit variable lookups; the
/// testable core of [`config_from_env`].
///
/// A variable that is set but unusable (non-numeric, or zero where zero
/// would wedge the run) is ignored with one warning line naming the
/// variable and the value actually used.
pub fn config_from_vars(get: impl Fn(&str) -> Option<String>) -> (ExperimentConfig, Vec<String>) {
    let mut config = ExperimentConfig::full();
    let mut warnings = Vec::new();
    let mut resolve = |name: &str, fallback: u64, min: u64| -> Option<u64> {
        let raw = get(name)?;
        match raw.parse::<u64>() {
            Ok(n) if n >= min => Some(n),
            Ok(_) => {
                warnings.push(format!(
                    "[repro] ignoring {name}={raw:?} (must be at least {min}); using {fallback}"
                ));
                None
            }
            Err(_) => {
                warnings.push(format!(
                    "[repro] ignoring {name}={raw:?} (not a non-negative integer); using {fallback}"
                ));
                None
            }
        }
    };
    if let Some(n) = resolve("REPRO_SAMPLE", config.sample_per_campaign as u64, 1) {
        config.sample_per_campaign = n as usize;
    }
    if let Some(n) = resolve("REPRO_SEED", config.seed, 0) {
        config.seed = n;
    }
    if let Some(n) = resolve("REPRO_THREADS", config.threads as u64, 1) {
        config.threads = n as usize;
    }
    (config, warnings)
}

/// Resolve the experiment sizing from the environment:
/// `REPRO_SAMPLE` (sites per campaign), `REPRO_SEED`, `REPRO_THREADS`.
/// Defaults to [`ExperimentConfig::full`] sizing; unusable values are
/// ignored with a warning on stderr (see [`config_from_vars`]).
pub fn config_from_env() -> ExperimentConfig {
    let (config, warnings) = config_from_vars(|name| std::env::var(name).ok());
    for warning in &warnings {
        eprintln!("{warning}");
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |name| {
            pairs
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn env_defaults_are_positive() {
        let (c, warnings) = config_from_vars(|_| None);
        assert!(c.sample_per_campaign > 0);
        assert!(c.threads > 0);
        assert!(warnings.is_empty());
    }

    #[test]
    fn usable_overrides_apply_silently() {
        let (c, warnings) =
            config_from_vars(vars(&[("REPRO_SAMPLE", "12"), ("REPRO_THREADS", "3")]));
        assert_eq!(c.sample_per_campaign, 12);
        assert_eq!(c.threads, 3);
        assert!(warnings.is_empty());
    }

    #[test]
    fn unusable_threads_fall_back_with_one_warning_each() {
        let fallback = ExperimentConfig::full().threads;
        for bad in ["0", "abc", "-2", "1.5"] {
            let (c, warnings) = config_from_vars(vars(&[("REPRO_THREADS", bad)]));
            assert_eq!(c.threads, fallback, "REPRO_THREADS={bad}");
            assert_eq!(warnings.len(), 1, "REPRO_THREADS={bad}");
            assert!(
                warnings[0].contains("REPRO_THREADS") && warnings[0].contains(bad),
                "warning names the variable and value: {}",
                warnings[0]
            );
            assert!(
                warnings[0].contains(&fallback.to_string()),
                "warning names the fallback: {}",
                warnings[0]
            );
        }
        // A zero sample would run an empty campaign; it warns too.
        let (c, warnings) = config_from_vars(vars(&[("REPRO_SAMPLE", "0")]));
        assert_eq!(
            c.sample_per_campaign,
            ExperimentConfig::full().sample_per_campaign
        );
        assert_eq!(warnings.len(), 1);
        // Seed zero is a perfectly good seed.
        let (c, warnings) = config_from_vars(vars(&[("REPRO_SEED", "0")]));
        assert_eq!(c.seed, 0);
        assert!(warnings.is_empty());
    }
}
