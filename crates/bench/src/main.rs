//! `repro`: regenerate every table and figure of the paper.
//!
//! ```text
//! repro [table1|fig3|fig4|fig5|fig6|fig7|temporal|simtime|all]
//! repro campaign [iu|cmem] [--journal PATH] [--resume PATH] [--deadline-ms N]
//!                [--lockstep-window N] [--parity] [--watchdog-cycles N]
//! ```
//!
//! Sizing via `REPRO_SAMPLE`, `REPRO_SEED`, `REPRO_THREADS` environment
//! variables (see [`bench::config_from_env`]).
//!
//! `campaign` runs one standalone crash-safe campaign on `rspeed`:
//! `--journal` write-ahead-journals every completed job to PATH,
//! `--resume` picks a killed campaign back up from its journal, and
//! `--deadline-ms` arms the per-job wall-clock watchdog. Configuration
//! and journal errors are reported on stderr with a nonzero exit code
//! instead of a panic backtrace.
//!
//! The safety-mechanism flags model the chip's own detectors:
//! `--lockstep-window N` checks the write stream every N writes instead of
//! continuously, `--parity` arms CMEM parity, and `--watchdog-cycles N`
//! arms a simulated hardware watchdog. With any of them set, the campaign
//! prints an ISO 26262 diagnostic-coverage report after the per-model
//! summaries.

use bench::config_from_env;
use correlation::experiments::{
    fig3, fig4, fig5, fig6, fig7_from_parts, simtime, table1, ExperimentConfig, TemporalStudy,
};
use correlation::extensions::{
    bridging_study, eq1_ablation, iss_baseline, latent_study, transient_study,
};
use fault_inject::{Campaign, SafetyConfig, Target};
use std::path::PathBuf;
use std::time::Duration;
use workloads::{Benchmark, Params};

/// Run the standalone crash-safe campaign subcommand. Never panics on
/// user mistakes: bad flags exit 2, campaign/journal errors exit 1.
fn run_campaign(config: &ExperimentConfig, args: &[String]) {
    let mut target = Target::IntegerUnit;
    let mut journal: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut safety = SafetyConfig::default();
    let usage = "usage: repro campaign [iu|cmem] [--journal PATH] [--resume PATH] \
                 [--deadline-ms N] [--lockstep-window N] [--parity] [--watchdog-cycles N]";
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        let parse_u64 = |flag: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("`{flag}` needs an integer, got `{raw}`\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "iu" => target = Target::IntegerUnit,
            "cmem" => target = Target::CacheMemory,
            "--journal" => journal = Some(PathBuf::from(value("--journal"))),
            "--resume" => resume = Some(PathBuf::from(value("--resume"))),
            "--deadline-ms" => {
                let raw = value("--deadline-ms");
                deadline_ms = Some(parse_u64("--deadline-ms", raw));
            }
            "--lockstep-window" => {
                let raw = value("--lockstep-window");
                safety.lockstep_window = Some(parse_u64("--lockstep-window", raw));
            }
            "--parity" => safety.parity = true,
            "--watchdog-cycles" => {
                let raw = value("--watchdog-cycles");
                safety.watchdog_cycles = Some(parse_u64("--watchdog-cycles", raw));
            }
            other => {
                eprintln!("unknown campaign argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let safety_armed = safety.any_enabled();
    let program = Benchmark::Rspeed.program(&Params::default());
    let mut campaign = Campaign::new(program, target)
        .with_sample(config.sample_per_campaign, config.seed)
        .with_injection_fraction(0.05)
        .with_safety(safety);
    if let Some(ms) = deadline_ms {
        campaign = campaign.with_deadline(Duration::from_millis(ms));
    }
    let outcome = match (&resume, &journal) {
        (Some(path), _) => {
            eprintln!("[repro] resuming campaign from {}", path.display());
            campaign.resume(config.threads, path)
        }
        (None, Some(path)) => {
            eprintln!("[repro] journaling campaign to {}", path.display());
            campaign.run_journaled(config.threads, path)
        }
        (None, None) => campaign.try_run(config.threads),
    };
    match outcome {
        Ok(result) => {
            let stats = result.stats();
            eprintln!(
                "[repro] {} jobs ({} resumed, {} retried, {} anomalies, {} timed out)",
                stats.jobs, stats.resumed, stats.retried, stats.anomalies, stats.timed_out
            );
            print!("{result}");
            if safety_armed {
                print!("{}", result.coverage_report());
            }
        }
        Err(e) => {
            eprintln!("[repro] campaign failed: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let config = config_from_env();
    eprintln!(
        "[repro] sample={} seed={:#x} threads={}",
        config.sample_per_campaign, config.seed, config.threads
    );
    match what.as_str() {
        "table1" => print!("{}", table1()),
        "fig3" => print!("{}", fig3(&config)),
        "fig4" => print!("{}", fig4(&config)),
        "fig5" => {
            let f5 = fig5(&config);
            print!("{f5}");
            print!("{}", TemporalStudy::from_fig5(&f5));
        }
        "fig6" => print!("{}", fig6(&config)),
        "fig7" => {
            let f5 = fig5(&config);
            let f3 = fig3(&config);
            print!("{}", fig7_from_parts(&f5, &f3));
        }
        "temporal" => {
            let f5 = fig5(&config);
            print!("{}", TemporalStudy::from_fig5(&f5));
        }
        "simtime" => print!("{}", simtime()),
        "campaign" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_campaign(&config, &rest);
        }
        "transient" => print!("{}", transient_study(&config)),
        "bridging" => print!("{}", bridging_study(&config)),
        "latent" => print!("{}", latent_study(&config)),
        "issbaseline" => print!("{}", iss_baseline(&config)),
        "eq1" => {
            let f5 = fig5(&config);
            print!("{}", eq1_ablation(&f5));
        }
        "extensions" => {
            print!("{}", transient_study(&config));
            println!();
            print!("{}", bridging_study(&config));
            println!();
            print!("{}", latent_study(&config));
            println!();
            print!("{}", iss_baseline(&config));
            println!();
            let f5 = fig5(&config);
            print!("{}", eq1_ablation(&f5));
        }
        "all" => {
            print!("{}", table1());
            println!();
            let f3 = fig3(&config);
            print!("{f3}");
            println!();
            print!("{}", fig4(&config));
            println!();
            let f5 = fig5(&config);
            print!("{f5}");
            println!();
            print!("{}", TemporalStudy::from_fig5(&f5));
            println!();
            print!("{}", fig6(&config));
            println!();
            print!("{}", fig7_from_parts(&f5, &f3));
            println!();
            print!("{}", simtime());
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; try table1|fig3|fig4|fig5|fig6|fig7|temporal|simtime|transient|bridging|latent|issbaseline|eq1|extensions|campaign|all"
            );
            std::process::exit(2);
        }
    }
}
