//! `repro`: regenerate every table and figure of the paper.
//!
//! ```text
//! repro [table1|fig3|fig4|fig5|fig6|fig7|temporal|simtime|all]
//! repro inject [--kind stuck0|stuck1|open|transient|intermittent|burst]
//!              [--level 0|1] [--period N] [--duty N] [--phase N]
//!              [--flips N] [--spacing N] [--targets branch,psr,pc]
//! repro campaign [iu|cmem] [--journal PATH] [--resume PATH] [--deadline-ms N]
//!                [--lockstep-window N] [--parity] [--watchdog-cycles N]
//!                [--threads N]
//! repro serve  [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!              [--job-threads N] [--drain PATH]
//! repro submit [iu|cmem|whole] [--addr HOST:PORT] [--benchmark NAME]
//!              [--sample N --seed N] [--injection-fraction F] [--shard I/N]
//!              [--deadline-ms N] [--lockstep-window N] [--parity]
//!              [--watchdog-cycles N] [--detach] [--json]
//! repro merge  [--addr HOST:PORT] [--json] ID ID...
//! repro fleet  coordinate|run|submit|status [--help] [verb flags...]
//! repro correlate [--addr HOST:PORT] [--benchmarks a,b,..] [--targets iu,cmem]
//!                 [--kinds KIND,..] [--datasets all|first|0,2] [--no-excerpts]
//!                 [--sample N --seed N] [--injection-fraction F] [--shard I/N]
//!                 [--threads N] [--detach] [--json]
//! repro predict (--benchmark LABEL | --iss NAME | --histogram op=N,..)
//!               [--addr HOST:PORT] [--target iu|cmem|whole] [--kind KIND]
//!               [--fingerprint FP] [--json]
//! repro benchgate [--baseline PATH] [--perturb F] [--threads N]
//! repro netcheck [--deny dead-nets,graph-mismatch] [--threads N]
//! ```
//!
//! Sizing via `REPRO_SAMPLE`, `REPRO_SEED`, `REPRO_THREADS` environment
//! variables (see [`bench::config_from_env`]); `--threads` beats
//! `REPRO_THREADS` where both are given.
//!
//! `inject` sweeps one fault model across a dense grid of injection
//! instants on `rspeed` against the permanent stuck-at-1 reference.
//! `--kind` picks the model; the time-varying ones take parameters:
//! `intermittent` (a duty-cycled stuck-at) takes `--level` (forced
//! value), `--period`/`--duty`/`--phase` (cycles asserted `duty` out of
//! every `period`, offset by `phase`), `burst` (a train of transient
//! flips) takes `--flips`/`--spacing`. `--targets` restricts injection
//! to attack-surface nets — `branch` (branch condition), `psr` (status
//! register), `pc` (program counter) — the InjectV-style targeted
//! campaign. `repro transient` is the historical alias for
//! `repro inject --kind transient`.
//!
//! `campaign` runs one standalone crash-safe campaign on `rspeed`:
//! `--journal` write-ahead-journals every completed job to PATH,
//! `--resume` picks a killed campaign back up from its journal, and
//! `--deadline-ms` arms the per-job wall-clock watchdog. Configuration
//! and journal errors are reported on stderr with a nonzero exit code
//! instead of a panic backtrace.
//!
//! `benchgate` is the CI bench-regression gate: it re-measures the gate
//! campaigns and compares their deterministic fork/full cycle ratios
//! against the `gate` section committed in `BENCH_campaign.json`,
//! failing (exit 1) on any regression beyond the in-file tolerance.
//!
//! `fleet` drives the fault-tolerant distributed service: `coordinate`
//! starts a coordinator (lease table + shard store), `run` starts a
//! runner working for one (`--chaos SEED` arms its deterministic fault
//! injector), `submit` cuts a campaign into shards and hands it to the
//! fleet, and `status` polls or `--watch`-streams a fleet campaign.
//! `repro fleet --help` prints the verb reference and exits 0.
//!
//! `correlate` runs the paper's Fig. 7 experiment as one command: the
//! benchmarks × datasets × domains sweep, fitted to `Pf = a·ln(D) + b`
//! per injection domain. Local by default; `--addr` submits to a
//! running `verifd` service, which also caches the fitted model.
//! `predict` then asks that service for a failure probability with
//! **zero** simulated RTL cycles — by calibration-point label, from an
//! explicit opcode histogram, or (`--iss NAME`) from a fresh local ISS
//! run, the paper's full ISS-in/Pf-out workflow.
//!
//! `netcheck` is the static model lint gate: it audits the declared net
//! graph (dead/unobservable nets, stuck-at equivalence classes,
//! transient-safe latches), cross-checks it against the conformance
//! mix's observed access order, and bounds a small measured campaign's
//! per-unit diagnostic coverage by the statically predicted
//! observability. `--deny` makes named findings exit nonzero for CI.
//!
//! The safety-mechanism flags model the chip's own detectors:
//! `--lockstep-window N` checks the write stream every N writes instead of
//! continuously, `--parity` arms CMEM parity, and `--watchdog-cycles N`
//! arms a simulated hardware watchdog. With any of them set, the campaign
//! prints an ISO 26262 diagnostic-coverage report after the per-model
//! summaries.

#![forbid(unsafe_code)]

use bench::config_from_env;
use correlation::experiments::{
    fig3, fig4, fig5, fig6, fig7_from_parts, simtime, table1, ExperimentConfig, TemporalStudy,
};
use correlation::extensions::{
    bridging_study, eq1_ablation, inject_study, iss_baseline, latent_study, transient_study,
};
use fault_inject::wire::{kind_from_token, kind_to_token, target_from_token, target_to_token};
use fault_inject::{
    Campaign, CorrelationReport, CorrelationSpec, DatasetSelection, InjectionInstant,
    PredictRequest, SafetyConfig, StaticAnalysis, Target,
};
use leon3_model::{Leon3, Leon3Config};
use rtl_sim::FaultKind;
use sparc_iss::{Iss, IssConfig, RunOutcome};
use std::path::PathBuf;
use std::time::Duration;
use verifd::{
    client, CampaignSpec, Coordinator, CoordinatorConfig, Runner, RunnerConfig, Server,
    ServerConfig,
};
use workloads::{Benchmark, Params};

/// Default address the service verbs talk to (the `verifd` binary's
/// own default bind).
const DEFAULT_ADDR: &str = "127.0.0.1:4612";

/// Default address the fleet verbs talk to (the `verifd coordinator`
/// default bind — one port above the plain service).
const DEFAULT_FLEET_ADDR: &str = "127.0.0.1:4613";

/// Run the standalone crash-safe campaign subcommand. Never panics on
/// user mistakes: bad flags exit 2, campaign/journal errors exit 1.
fn run_campaign(config: &ExperimentConfig, args: &[String]) {
    let mut target = Target::IntegerUnit;
    let mut journal: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut safety = SafetyConfig::default();
    let mut threads = config.threads;
    let usage = "usage: repro campaign [iu|cmem] [--journal PATH] [--resume PATH] \
                 [--deadline-ms N] [--lockstep-window N] [--parity] [--watchdog-cycles N] \
                 [--threads N]";
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        let parse_u64 = |flag: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("`{flag}` needs an integer, got `{raw}`\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "iu" => target = Target::IntegerUnit,
            "cmem" => target = Target::CacheMemory,
            "--journal" => journal = Some(PathBuf::from(value("--journal"))),
            "--resume" => resume = Some(PathBuf::from(value("--resume"))),
            "--deadline-ms" => {
                let raw = value("--deadline-ms");
                deadline_ms = Some(parse_u64("--deadline-ms", raw));
            }
            "--lockstep-window" => {
                let raw = value("--lockstep-window");
                safety.lockstep_window = Some(parse_u64("--lockstep-window", raw));
            }
            "--parity" => safety.parity = true,
            "--watchdog-cycles" => {
                let raw = value("--watchdog-cycles");
                safety.watchdog_cycles = Some(parse_u64("--watchdog-cycles", raw));
            }
            "--threads" => {
                let raw = value("--threads");
                let n = parse_u64("--threads", raw);
                if n == 0 {
                    eprintln!("`--threads` must be at least 1\n{usage}");
                    std::process::exit(2);
                }
                threads = n as usize;
            }
            other => {
                eprintln!("unknown campaign argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let safety_armed = safety.any_enabled();
    let program = Benchmark::Rspeed.program(&Params::default());
    let mut campaign = Campaign::new(program, target)
        .with_sample(config.sample_per_campaign, config.seed)
        .with_injection_fraction(0.05)
        .with_safety(safety);
    if let Some(ms) = deadline_ms {
        campaign = campaign.with_deadline(Duration::from_millis(ms));
    }
    let outcome = match (&resume, &journal) {
        (Some(path), _) => {
            eprintln!("[repro] resuming campaign from {}", path.display());
            campaign.resume(threads, path)
        }
        (None, Some(path)) => {
            eprintln!("[repro] journaling campaign to {}", path.display());
            campaign.run_journaled(threads, path)
        }
        (None, None) => campaign.try_run(threads),
    };
    match outcome {
        Ok(result) => {
            let stats = result.stats();
            eprintln!(
                "[repro] {} jobs ({} resumed, {} retried, {} anomalies, {} timed out)",
                stats.jobs, stats.resumed, stats.retried, stats.anomalies, stats.timed_out
            );
            print!("{result}");
            if safety_armed {
                print!("{}", result.coverage_report());
            }
        }
        Err(e) => {
            eprintln!("[repro] campaign failed: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro inject`: the generalized injection-instant sweep — any fault
/// model (including the time-varying ones) against the stuck-at-1
/// reference, optionally restricted to attack-surface nets.
fn run_inject(config: &ExperimentConfig, args: &[String]) {
    let usage = "usage: repro inject [--kind stuck0|stuck1|open|transient|intermittent|burst] \
                 [--level 0|1] [--period N] [--duty N] [--phase N] [--flips N] [--spacing N] \
                 [--targets branch,psr,pc]";
    let mut kind_token = "transient".to_string();
    // Time-varying parameter defaults: an intermittent asserted 1/4 of
    // the time on a period well under the rspeed run length, and a
    // three-flip burst — both visible at every sweep instant.
    let mut level = true;
    let mut period = 1_000u64;
    let mut duty = 250u64;
    let mut phase = 0u64;
    let mut flips = 3u32;
    let mut spacing = 200u64;
    let mut targets: Vec<fault_inject::AttackTarget> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        let parse_u64 = |flag: &str, raw: String| -> u64 {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("`{flag}` needs an integer, got `{raw}`\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--kind" => kind_token = value("--kind"),
            "--level" => {
                level = match value("--level").as_str() {
                    "0" => false,
                    "1" => true,
                    raw => {
                        eprintln!("`--level` is 0 or 1, got `{raw}`\n{usage}");
                        std::process::exit(2);
                    }
                }
            }
            "--period" => period = parse_u64("--period", value("--period")),
            "--duty" => duty = parse_u64("--duty", value("--duty")),
            "--phase" => phase = parse_u64("--phase", value("--phase")),
            "--flips" => {
                let raw = parse_u64("--flips", value("--flips"));
                flips = u32::try_from(raw).unwrap_or_else(|_| {
                    eprintln!("`--flips` is out of range\n{usage}");
                    std::process::exit(2);
                });
            }
            "--spacing" => spacing = parse_u64("--spacing", value("--spacing")),
            "--targets" => match fault_inject::AttackTarget::parse_list(&value("--targets")) {
                Ok(list) => targets = list,
                Err(e) => {
                    eprintln!("{e}\n{usage}");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown inject argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let kind = match kind_token.as_str() {
        "stuck0" => FaultKind::StuckAt0,
        "stuck1" => FaultKind::StuckAt1,
        "open" => FaultKind::OpenLine,
        "transient" => FaultKind::TransientFlip,
        "intermittent" => FaultKind::IntermittentStuck {
            level,
            period,
            duty,
            phase,
        },
        "burst" => FaultKind::TransientBurst { flips, spacing },
        other => {
            eprintln!("unknown fault kind `{other}`\n{usage}");
            std::process::exit(2);
        }
    };
    if let Err(reason) = kind.validate() {
        eprintln!("invalid fault-kind parameters: {reason}\n{usage}");
        std::process::exit(2);
    }
    print!("{}", inject_study(config, kind, &targets));
}

/// `repro serve`: run a campaign service in this process until a
/// `POST /shutdown` stops it.
fn run_serve(args: &[String]) {
    let usage = "usage: repro serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                 [--job-threads N] [--drain PATH]";
    let mut config = ServerConfig {
        addr: DEFAULT_ADDR.to_string(),
        ..ServerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse_usize("--workers", value("--workers"), usage),
            "--queue-depth" => {
                config.queue_depth = parse_usize("--queue-depth", value("--queue-depth"), usage);
            }
            "--job-threads" => {
                config.job_threads = parse_usize("--job-threads", value("--job-threads"), usage);
            }
            "--drain" => config.drain_path = Some(PathBuf::from(value("--drain"))),
            other => {
                eprintln!("unknown serve argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if config.queue_depth == 0 || config.job_threads == 0 {
        eprintln!("`--queue-depth` and `--job-threads` must be at least 1\n{usage}");
        std::process::exit(2);
    }
    match Server::start(config) {
        Ok(server) => {
            eprintln!("[repro] verifd listening on {}", server.addr());
            server.join();
        }
        Err(e) => {
            eprintln!("[repro] cannot start service: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro submit`: send one campaign spec to a running service and
/// (unless detached) wait for its result.
fn run_submit(config: &ExperimentConfig, args: &[String]) {
    let usage = "usage: repro submit [iu|cmem|whole] [--addr HOST:PORT] [--benchmark NAME] \
                 [--sample N --seed N] [--exhaustive] [--injection-cycle N] \
                 [--injection-fraction F] [--shard I/N] [--deadline-ms N] \
                 [--lockstep-window N] [--parity] [--watchdog-cycles N] [--detach] [--json]";
    let mut addr = DEFAULT_ADDR.to_string();
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    // Mirror `repro campaign` sizing: sampled sites and the 5% injection
    // instant, both overridable below.
    spec.sample = Some((config.sample_per_campaign, config.seed));
    spec.injection = InjectionInstant::Fraction(0.05);
    let mut detach = false;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "iu" => spec.target = Target::IntegerUnit,
            "cmem" => spec.target = Target::CacheMemory,
            "whole" => spec.target = Target::Whole,
            "--addr" => addr = value("--addr"),
            "--benchmark" => {
                let name = value("--benchmark");
                spec.benchmark = Benchmark::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown benchmark `{name}`\n{usage}");
                    std::process::exit(2);
                });
            }
            "--sample" => {
                let n = parse_usize("--sample", value("--sample"), usage);
                let seed = spec.sample.map_or(config.seed, |(_, s)| s);
                spec.sample = Some((n, seed));
            }
            "--seed" => {
                let seed = parse_usize("--seed", value("--seed"), usage) as u64;
                let n = spec.sample.map_or(config.sample_per_campaign, |(n, _)| n);
                spec.sample = Some((n, seed));
            }
            "--exhaustive" => spec.sample = None,
            "--injection-cycle" => {
                spec.injection = InjectionInstant::Cycle(parse_usize(
                    "--injection-cycle",
                    value("--injection-cycle"),
                    usage,
                ) as u64);
            }
            "--injection-fraction" => {
                let raw = value("--injection-fraction");
                let f: f64 = raw.parse().unwrap_or_else(|_| {
                    eprintln!("`--injection-fraction` needs a number, got `{raw}`\n{usage}");
                    std::process::exit(2);
                });
                spec.injection = InjectionInstant::Fraction(f);
            }
            "--shard" => {
                let raw = value("--shard");
                let parsed = raw
                    .split_once('/')
                    .and_then(|(i, n)| Some((i.parse::<u32>().ok()?, n.parse::<u32>().ok()?)));
                match parsed {
                    Some((i, n)) if n > 0 && i < n => spec.shard = Some((i, n)),
                    _ => {
                        eprintln!("`--shard` wants I/N with I < N, got `{raw}`\n{usage}");
                        std::process::exit(2);
                    }
                }
            }
            "--deadline-ms" => {
                spec.deadline_ms =
                    Some(parse_usize("--deadline-ms", value("--deadline-ms"), usage) as u64);
            }
            "--lockstep-window" => {
                spec.safety.lockstep_window =
                    Some(
                        parse_usize("--lockstep-window", value("--lockstep-window"), usage) as u64,
                    );
            }
            "--parity" => spec.safety.parity = true,
            "--watchdog-cycles" => {
                spec.safety.watchdog_cycles =
                    Some(
                        parse_usize("--watchdog-cycles", value("--watchdog-cycles"), usage) as u64,
                    );
            }
            "--detach" => detach = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown submit argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let reply = client::submit(&addr, &spec).unwrap_or_else(|e| {
        eprintln!("[repro] submit failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[repro] campaign {} {} (fingerprint {})",
        reply.id,
        if reply.cached {
            "cached"
        } else {
            &reply.status
        },
        spec.fingerprint()
    );
    if detach {
        println!("{}", reply.id);
        return;
    }
    let shard = client::wait(&addr, reply.id).unwrap_or_else(|e| {
        eprintln!("[repro] campaign {} failed: {e}", reply.id);
        std::process::exit(1);
    });
    if json {
        println!("{}", shard.to_json());
    } else {
        print!("{}", shard.result);
    }
}

/// `repro merge`: recombine completed shard jobs on the service into
/// one campaign result.
fn run_merge(args: &[String]) {
    let usage = "usage: repro merge [--addr HOST:PORT] [--json] ID ID...";
    let mut addr = DEFAULT_ADDR.to_string();
    let mut json = false;
    let mut ids: Vec<u64> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("`--addr` needs a value\n{usage}");
                    std::process::exit(2);
                });
            }
            "--json" => json = true,
            raw => match raw.parse::<u64>() {
                Ok(id) => ids.push(id),
                Err(_) => {
                    eprintln!("`{raw}` is not a campaign id\n{usage}");
                    std::process::exit(2);
                }
            },
        }
    }
    if ids.is_empty() {
        eprintln!("nothing to merge\n{usage}");
        std::process::exit(2);
    }
    match client::merge(&addr, &ids) {
        Ok(merged) => {
            eprintln!(
                "[repro] merged {} shards (fingerprint {})",
                ids.len(),
                merged.fingerprint
            );
            if json {
                println!("{}", merged.to_json());
            } else {
                print!("{}", merged.result);
            }
        }
        Err(e) => {
            eprintln!("[repro] merge refused: {e}");
            std::process::exit(1);
        }
    }
}

/// The verb reference `repro fleet --help` prints (exit 0) and every
/// fleet usage error cites (exit 2).
const FLEET_USAGE: &str = "usage: repro fleet <verb> [flags...]
  coordinate  [--addr HOST:PORT] [--queue-depth N] [--lease-ttl-ms N]
              [--heartbeat-ms N] [--max-attempts N] [--backoff-ms N]
              [--backoff-cap-ms N] [--store PATH] [--drain PATH]
  run         [--addr HOST:PORT] [--name NAME] [--job-threads N]
              [--workdir PATH] [--chaos SEED]
  submit      [iu|cmem|whole] [--addr HOST:PORT] [--benchmark NAME]
              [--sample N --seed N] [--injection-fraction F]
              [--deadline-ms N] [--shards N] [--watch] [--detach] [--json]
  status      [--addr HOST:PORT] [--watch] [--json] ID

`coordinate` runs the fleet coordinator until POST /shutdown: it leases
shards to registered runners under wall-clock TTLs, re-queues expired or
failed leases with capped exponential backoff, poisons a shard after
--max-attempts leases (degrading its campaign), and persists finished
shards in the --store directory keyed by fingerprint + geometry.
`run` works for a coordinator until the fleet drains; --chaos arms the
deterministic lease-fault injector (crash/stall/vanish schedules).
`submit` shards one campaign across the fleet; a full coordinator answers
503 with a Retry-After hint. `status --watch` streams chunked progress.";

/// `repro fleet <verb>`: drive the fault-tolerant coordinator + runner
/// fleet (see [`FLEET_USAGE`]).
fn run_fleet(config: &ExperimentConfig, args: &[String]) {
    match args.first().map(String::as_str) {
        Some("coordinate") => fleet_coordinate(&args[1..]),
        Some("run") => fleet_run(&args[1..]),
        Some("submit") => fleet_submit(config, &args[1..]),
        Some("status") => fleet_status(&args[1..]),
        Some("--help" | "-h") | None => println!("{FLEET_USAGE}"),
        Some(other) => {
            eprintln!("unknown fleet verb `{other}`\n{FLEET_USAGE}");
            std::process::exit(2);
        }
    }
}

/// `repro fleet coordinate`: run a coordinator in this process until a
/// `POST /shutdown` stops it.
fn fleet_coordinate(args: &[String]) {
    let mut config = CoordinatorConfig {
        addr: DEFAULT_FLEET_ADDR.to_string(),
        ..CoordinatorConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{FLEET_USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--queue-depth" => {
                config.queue_depth =
                    parse_usize("--queue-depth", value("--queue-depth"), FLEET_USAGE);
            }
            "--lease-ttl-ms" => {
                config.lease_ttl_ms =
                    parse_usize("--lease-ttl-ms", value("--lease-ttl-ms"), FLEET_USAGE) as u64;
            }
            "--heartbeat-ms" => {
                config.heartbeat_ms =
                    parse_usize("--heartbeat-ms", value("--heartbeat-ms"), FLEET_USAGE) as u64;
            }
            "--max-attempts" => {
                config.max_attempts =
                    parse_usize("--max-attempts", value("--max-attempts"), FLEET_USAGE) as u64;
            }
            "--backoff-ms" => {
                config.backoff_base_ms =
                    parse_usize("--backoff-ms", value("--backoff-ms"), FLEET_USAGE) as u64;
            }
            "--backoff-cap-ms" => {
                config.backoff_cap_ms =
                    parse_usize("--backoff-cap-ms", value("--backoff-cap-ms"), FLEET_USAGE) as u64;
            }
            "--store" => config.store_path = PathBuf::from(value("--store")),
            "--drain" => config.drain_path = Some(PathBuf::from(value("--drain"))),
            other => {
                eprintln!("unknown coordinate flag `{other}`\n{FLEET_USAGE}");
                std::process::exit(2);
            }
        }
    }
    if config.queue_depth == 0 || config.max_attempts == 0 || config.lease_ttl_ms == 0 {
        eprintln!(
            "`--queue-depth`, `--max-attempts` and `--lease-ttl-ms` must be at least 1\n{FLEET_USAGE}"
        );
        std::process::exit(2);
    }
    match Coordinator::start(config) {
        Ok(coordinator) => {
            eprintln!(
                "[repro] fleet coordinator listening on {}",
                coordinator.addr()
            );
            coordinator.join();
        }
        Err(e) => {
            eprintln!("[repro] cannot start coordinator: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro fleet run`: work for a coordinator until the fleet drains.
fn fleet_run(args: &[String]) {
    let mut config = RunnerConfig {
        coordinator: DEFAULT_FLEET_ADDR.to_string(),
        ..RunnerConfig::default()
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{FLEET_USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.coordinator = value("--addr"),
            "--name" => config.name = value("--name"),
            "--job-threads" => {
                config.job_threads =
                    parse_usize("--job-threads", value("--job-threads"), FLEET_USAGE);
            }
            "--workdir" => config.workdir = PathBuf::from(value("--workdir")),
            "--chaos" => {
                config.chaos = Some(parse_usize("--chaos", value("--chaos"), FLEET_USAGE) as u64);
            }
            other => {
                eprintln!("unknown run flag `{other}`\n{FLEET_USAGE}");
                std::process::exit(2);
            }
        }
    }
    if config.job_threads == 0 {
        eprintln!("`--job-threads` must be at least 1\n{FLEET_USAGE}");
        std::process::exit(2);
    }
    let coordinator = config.coordinator.clone();
    match Runner::start(config) {
        Ok(runner) => {
            eprintln!(
                "[repro] runner {} working for {coordinator}",
                runner.runner_id()
            );
            runner.join();
            eprintln!("[repro] fleet drained; runner exiting");
        }
        Err(e) => {
            eprintln!("[repro] cannot start runner: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro fleet submit`: cut one campaign into shards, hand it to the
/// fleet, and (unless detached) follow it to a terminal state. Exits 1
/// when the campaign completes degraded.
fn fleet_submit(config: &ExperimentConfig, args: &[String]) {
    let mut addr = DEFAULT_FLEET_ADDR.to_string();
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    spec.sample = Some((config.sample_per_campaign, config.seed));
    spec.injection = InjectionInstant::Fraction(0.05);
    let mut shards: u32 = 2;
    let mut watch = false;
    let mut detach = false;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{FLEET_USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "iu" => spec.target = Target::IntegerUnit,
            "cmem" => spec.target = Target::CacheMemory,
            "whole" => spec.target = Target::Whole,
            "--addr" => addr = value("--addr"),
            "--benchmark" => {
                let name = value("--benchmark");
                spec.benchmark = Benchmark::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown benchmark `{name}`\n{FLEET_USAGE}");
                    std::process::exit(2);
                });
            }
            "--sample" => {
                let n = parse_usize("--sample", value("--sample"), FLEET_USAGE);
                let seed = spec.sample.map_or(config.seed, |(_, s)| s);
                spec.sample = Some((n, seed));
            }
            "--seed" => {
                let seed = parse_usize("--seed", value("--seed"), FLEET_USAGE) as u64;
                let n = spec.sample.map_or(config.sample_per_campaign, |(n, _)| n);
                spec.sample = Some((n, seed));
            }
            "--injection-fraction" => {
                let raw = value("--injection-fraction");
                let f: f64 = raw.parse().unwrap_or_else(|_| {
                    eprintln!("`--injection-fraction` needs a number, got `{raw}`\n{FLEET_USAGE}");
                    std::process::exit(2);
                });
                spec.injection = InjectionInstant::Fraction(f);
            }
            "--deadline-ms" => {
                spec.deadline_ms =
                    Some(parse_usize("--deadline-ms", value("--deadline-ms"), FLEET_USAGE) as u64);
            }
            "--shards" => {
                let n = parse_usize("--shards", value("--shards"), FLEET_USAGE);
                shards = u32::try_from(n).unwrap_or(0);
            }
            "--watch" => watch = true,
            "--detach" => detach = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown submit flag `{other}`\n{FLEET_USAGE}");
                std::process::exit(2);
            }
        }
    }
    if shards == 0 || shards > 4096 {
        eprintln!("`--shards` wants 1..=4096\n{FLEET_USAGE}");
        std::process::exit(2);
    }
    let reply = client::fleet_submit(&addr, &spec, shards).unwrap_or_else(|e| {
        eprintln!("[repro] fleet submit failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[repro] fleet campaign {} {} ({} of {shards} shards already stored, fingerprint {})",
        reply.id,
        reply.status,
        reply.cached,
        spec.fingerprint()
    );
    if detach {
        println!("{}", reply.id);
        return;
    }
    let status = if watch {
        client::fleet_watch(&addr, reply.id, &mut |line| eprintln!("[repro] {line}"))
    } else {
        client::fleet_wait(&addr, reply.id)
    };
    let status = status.unwrap_or_else(|e| {
        eprintln!("[repro] fleet campaign {} failed: {e}", reply.id);
        std::process::exit(1);
    });
    report_fleet_status(&status, json);
}

/// `repro fleet status`: poll (or `--watch` stream) one fleet campaign.
/// Exits 1 when the campaign is degraded.
fn fleet_status(args: &[String]) {
    let mut addr = DEFAULT_FLEET_ADDR.to_string();
    let mut watch = false;
    let mut json = false;
    let mut id: Option<u64> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = iter.next().cloned().unwrap_or_else(|| {
                    eprintln!("`--addr` needs a value\n{FLEET_USAGE}");
                    std::process::exit(2);
                });
            }
            "--watch" => watch = true,
            "--json" => json = true,
            raw => match raw.parse::<u64>() {
                Ok(n) => id = Some(n),
                Err(_) => {
                    eprintln!("`{raw}` is not a fleet campaign id\n{FLEET_USAGE}");
                    std::process::exit(2);
                }
            },
        }
    }
    let Some(id) = id else {
        eprintln!("`status` needs a campaign id\n{FLEET_USAGE}");
        std::process::exit(2);
    };
    let status = if watch {
        client::fleet_watch(&addr, id, &mut |line| eprintln!("[repro] {line}"))
    } else {
        client::fleet_status(&addr, id)
    };
    match status {
        Ok(status) => report_fleet_status(&status, json),
        Err(e) => {
            eprintln!("[repro] fleet status failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Print one terminal (or in-flight) fleet status; exit 1 on a degraded
/// campaign so scripts notice missing shards.
fn report_fleet_status(status: &verifd::FleetStatus, json: bool) {
    eprintln!(
        "[repro] fleet campaign {} {}: {}/{} shards",
        status.id, status.status, status.done, status.total
    );
    if let Some(merged) = &status.campaign {
        if json {
            println!("{}", merged.to_json());
        } else {
            print!("{}", merged.result);
        }
    }
    if status.status == "degraded" {
        let missing: Vec<String> = status.missing.iter().map(u32::to_string).collect();
        eprintln!(
            "[repro] campaign degraded; missing shards: {}",
            missing.join(", ")
        );
        std::process::exit(1);
    }
}

/// `repro correlate`: the Fig. 7 sweep as one command — run the
/// benchmarks × datasets × domains cross-product, fit
/// `Pf = a·ln(D) + b` per domain, and print the calibrated report.
/// Local by default; `--addr` submits to a running service instead,
/// which caches the fitted model for `repro predict`. `--shard I/N`
/// cuts the sweep for distributed runs — each shard job goes through a
/// service and `repro merge` of the shard ids fits the report.
fn run_correlate(config: &ExperimentConfig, args: &[String]) {
    let usage = "usage: repro correlate [--addr HOST:PORT] [--benchmarks a,b,..] \
                 [--targets iu,cmem,whole] [--kinds KIND,..] [--datasets all|first|0,2] \
                 [--no-excerpts] [--sample N --seed N] [--exhaustive] [--injection-cycle N] \
                 [--injection-fraction F] [--shard I/N] [--threads N] [--detach] [--json]";
    let mut addr: Option<String> = None;
    let mut spec = CorrelationSpec::new();
    spec.sample = Some((config.sample_per_campaign, config.seed));
    spec.injection = InjectionInstant::Fraction(0.3);
    let mut threads = config.threads;
    let mut detach = false;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--benchmarks" => {
                spec.benchmarks = value("--benchmarks")
                    .split(',')
                    .map(|name| {
                        Benchmark::by_name(name).unwrap_or_else(|| {
                            eprintln!("unknown benchmark `{name}`\n{usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--targets" => {
                spec.targets = value("--targets")
                    .split(',')
                    .map(|token| {
                        target_from_token(token).unwrap_or_else(|| {
                            eprintln!("unknown target `{token}` (iu, cmem or whole)\n{usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--kinds" => {
                spec.kinds = value("--kinds")
                    .split(',')
                    .map(|token| {
                        kind_from_token(token).unwrap_or_else(|e| {
                            eprintln!("{e}\n{usage}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            "--datasets" => {
                let raw = value("--datasets");
                spec.datasets = match raw.as_str() {
                    "all" => DatasetSelection::All,
                    "first" => DatasetSelection::First,
                    list => DatasetSelection::List(
                        list.split(',')
                            .map(|d| {
                                d.parse().unwrap_or_else(|_| {
                                    eprintln!(
                                        "`--datasets` is all, first or a comma list of \
                                         indices, got `{raw}`\n{usage}"
                                    );
                                    std::process::exit(2);
                                })
                            })
                            .collect(),
                    ),
                };
            }
            "--no-excerpts" => spec.include_excerpts = false,
            "--sample" => {
                let n = parse_usize("--sample", value("--sample"), usage);
                let seed = spec.sample.map_or(config.seed, |(_, s)| s);
                spec.sample = Some((n, seed));
            }
            "--seed" => {
                let seed = parse_usize("--seed", value("--seed"), usage) as u64;
                let n = spec.sample.map_or(config.sample_per_campaign, |(n, _)| n);
                spec.sample = Some((n, seed));
            }
            "--exhaustive" => spec.sample = None,
            "--injection-cycle" => {
                spec.injection = InjectionInstant::Cycle(parse_usize(
                    "--injection-cycle",
                    value("--injection-cycle"),
                    usage,
                ) as u64);
            }
            "--injection-fraction" => {
                let raw = value("--injection-fraction");
                let f: f64 = raw.parse().unwrap_or_else(|_| {
                    eprintln!("`--injection-fraction` needs a number, got `{raw}`\n{usage}");
                    std::process::exit(2);
                });
                spec.injection = InjectionInstant::Fraction(f);
            }
            "--shard" => {
                let raw = value("--shard");
                let parsed = raw
                    .split_once('/')
                    .and_then(|(i, n)| Some((i.parse::<u32>().ok()?, n.parse::<u32>().ok()?)));
                match parsed {
                    Some((i, n)) if n > 0 && i < n => spec.shard = Some((i, n)),
                    _ => {
                        eprintln!("`--shard` wants I/N with I < N, got `{raw}`\n{usage}");
                        std::process::exit(2);
                    }
                }
            }
            "--threads" => {
                threads = parse_usize("--threads", value("--threads"), usage).max(1);
            }
            "--detach" => detach = true,
            "--json" => json = true,
            other => {
                eprintln!("unknown correlate argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    // Normalize through the wire round-trip: sorts and dedups the axes,
    // range-checks dataset indices, refuses empty lists.
    spec = CorrelationSpec::parse(&spec.to_json()).unwrap_or_else(|e| {
        eprintln!("invalid sweep: {e}\n{usage}");
        std::process::exit(2);
    });
    let Some(addr) = addr else {
        if spec.shard.is_some() {
            eprintln!(
                "sharded sweeps run on a service (--addr); merge the shard ids with \
                 `repro merge`\n{usage}"
            );
            std::process::exit(2);
        }
        match spec.run_report(threads) {
            Ok(report) => report_correlation(&report, json),
            Err(e) => {
                eprintln!("[repro] correlation sweep failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    };
    let reply = client::correlate(&addr, &spec).unwrap_or_else(|e| {
        eprintln!("[repro] correlate failed: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[repro] correlation {} {} (fingerprint {})",
        reply.id,
        if reply.cached {
            "cached"
        } else {
            &reply.status
        },
        spec.fingerprint()
    );
    if detach || spec.shard.is_some() {
        println!("{}", reply.id);
        return;
    }
    let report = client::wait_report(&addr, reply.id).unwrap_or_else(|e| {
        eprintln!("[repro] correlation {} failed: {e}", reply.id);
        std::process::exit(1);
    });
    report_correlation(&report, json);
}

/// Print one fitted correlation report, leading with the
/// best-correlating domain (the acceptance headline).
fn report_correlation(report: &CorrelationReport, json: bool) {
    let best = report.best_domain();
    eprintln!(
        "[repro] best domain {} @ {}: R² = {:.4} over {} points (fingerprint {})",
        kind_to_token(best.kind),
        target_to_token(best.target),
        best.model.r2,
        best.model.n,
        report.fingerprint
    );
    if json {
        println!("{}", report.to_json());
    } else {
        print!("{report}");
    }
}

/// `repro predict`: ask a running service for a failure-probability
/// prediction with zero simulated RTL cycles — by calibration-point
/// label, from an explicit opcode histogram, or from a fresh local ISS
/// run of a benchmark.
fn run_predict(args: &[String]) {
    let usage = "usage: repro predict (--benchmark LABEL | --iss NAME | --histogram op=N,..) \
                 [--addr HOST:PORT] [--target iu|cmem|whole] [--kind KIND] \
                 [--fingerprint FP] [--json]";
    let mut addr = DEFAULT_ADDR.to_string();
    let mut benchmark: Option<String> = None;
    let mut iss: Option<String> = None;
    let mut histogram: Option<Vec<(String, u64)>> = None;
    let mut target = Target::IntegerUnit;
    let mut kind = FaultKind::StuckAt1;
    let mut fingerprint: Option<String> = None;
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{usage}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--benchmark" => benchmark = Some(value("--benchmark")),
            "--iss" => iss = Some(value("--iss")),
            "--histogram" => {
                let raw = value("--histogram");
                let entries = raw
                    .split(',')
                    .map(|pair| {
                        let Some((mnemonic, count)) = pair.split_once('=') else {
                            eprintln!("`--histogram` wants op=N pairs, got `{pair}`\n{usage}");
                            std::process::exit(2);
                        };
                        let count: u64 = count.parse().unwrap_or_else(|_| {
                            eprintln!(
                                "`--histogram` count for `{mnemonic}` is not an integer\n{usage}"
                            );
                            std::process::exit(2);
                        });
                        (mnemonic.to_string(), count)
                    })
                    .collect();
                histogram = Some(entries);
            }
            "--target" => {
                let token = value("--target");
                target = target_from_token(&token).unwrap_or_else(|| {
                    eprintln!("unknown target `{token}` (iu, cmem or whole)\n{usage}");
                    std::process::exit(2);
                });
            }
            "--kind" => {
                kind = kind_from_token(&value("--kind")).unwrap_or_else(|e| {
                    eprintln!("{e}\n{usage}");
                    std::process::exit(2);
                });
            }
            "--fingerprint" => fingerprint = Some(value("--fingerprint")),
            "--json" => json = true,
            other => {
                eprintln!("unknown predict argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    let sources = usize::from(benchmark.is_some())
        + usize::from(iss.is_some())
        + usize::from(histogram.is_some());
    if sources != 1 {
        eprintln!("give exactly one of --benchmark, --iss, --histogram\n{usage}");
        std::process::exit(2);
    }
    if let Some(name) = iss {
        // The paper's workflow: characterize the workload on the ISS,
        // predict its RTL failure probability from diversity alone.
        let subject = Benchmark::by_name(&name).unwrap_or_else(|| {
            eprintln!("unknown benchmark `{name}`\n{usage}");
            std::process::exit(2);
        });
        let mut run = Iss::new(IssConfig::default());
        run.load(&subject.program(&Params::default()));
        let outcome = run.run(200_000_000);
        if !matches!(outcome, RunOutcome::Halted { .. }) {
            eprintln!("[repro] {name} did not halt on the ISS: {outcome:?}");
            std::process::exit(1);
        }
        let entries: Vec<(String, u64)> = run
            .stats()
            .named_histogram()
            .into_iter()
            .map(|(mnemonic, count)| (mnemonic.to_string(), count))
            .collect();
        eprintln!("[repro] {name}: D = {} from the ISS run", entries.len());
        histogram = Some(entries);
    }
    let mut request = match (benchmark, histogram) {
        (Some(label), None) => PredictRequest::from_benchmark(&label),
        (None, Some(entries)) => PredictRequest::from_histogram(entries),
        _ => unreachable!("exactly one source checked above"),
    };
    request.target = target;
    request.kind = kind;
    request.fingerprint = fingerprint;
    // Round-trip validation: unknown mnemonics and zero counts are
    // refused here rather than by the service.
    let request = PredictRequest::parse(&request.to_json()).unwrap_or_else(|e| {
        eprintln!("invalid request: {e}\n{usage}");
        std::process::exit(2);
    });
    let prediction = client::predict(&addr, &request).unwrap_or_else(|e| {
        eprintln!("[repro] predict failed: {e}");
        std::process::exit(1);
    });
    if json {
        println!("{}", prediction.to_json());
    } else {
        println!(
            "Pf = {:.4} ± {:.4}  (D = {}, {} @ {}, model {})",
            prediction.pf,
            prediction.band,
            prediction.diversity,
            kind_to_token(prediction.kind),
            target_to_token(prediction.target),
            prediction.fingerprint
        );
    }
}

/// `repro benchgate [--baseline BENCH_campaign.json]
/// [--checkpoint-baseline BENCH_checkpoint.json] [--perturb 1.0]
/// [--threads N]` — the CI bench-regression gate. Re-measures the gate
/// campaigns (including the checkpoint-tree gate's dense intermittent
/// sweep and the correlation gate's Fig. 7 sweep) and compares their
/// deterministic cycle ratios — plus the correlation fit's R² against
/// its committed floor — against the committed baselines; exits 1 on
/// any regression beyond the in-file tolerance. `--perturb` degrades
/// the measured quantities (ratios up, R² down) so CI can prove the
/// gate fails when the engine slows down or the fit collapses.
fn run_benchgate(config: &ExperimentConfig, args: &[String]) {
    const USAGE: &str = "usage: repro benchgate [--baseline <path>] \
                         [--checkpoint-baseline <path>] [--correlation-baseline <path>] \
                         [--perturb <factor>] [--threads N]";
    let mut baseline = "BENCH_campaign.json".to_string();
    let mut checkpoint_baseline = "BENCH_checkpoint.json".to_string();
    let mut correlation_baseline = "BENCH_correlation.json".to_string();
    let mut perturb = 1.0_f64;
    let mut threads = config.threads;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--baseline" => baseline = value("--baseline"),
            "--checkpoint-baseline" => checkpoint_baseline = value("--checkpoint-baseline"),
            "--correlation-baseline" => correlation_baseline = value("--correlation-baseline"),
            "--perturb" => {
                let raw = value("--perturb");
                perturb = raw.parse().unwrap_or_else(|_| {
                    eprintln!("`--perturb` needs a number, got `{raw}`\n{USAGE}");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads = parse_usize("--threads", value("--threads"), USAGE).max(1);
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let mut failed = false;
    for (path, check) in [
        (
            &baseline,
            &bench::gate::check as &dyn Fn(&str, usize, f64) -> Result<Vec<String>, Vec<String>>,
        ),
        (&checkpoint_baseline, &bench::gate::check_checkpoint),
        (&correlation_baseline, &bench::gate::check_correlation),
    ] {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("[benchgate] cannot read `{path}`: {e}");
            std::process::exit(1);
        });
        match check(&text, threads, perturb) {
            Ok(report) => {
                for line in report {
                    println!("[benchgate] {line}");
                }
            }
            Err(failures) => {
                failed = true;
                for line in failures {
                    eprintln!("[benchgate] {line}");
                }
            }
        }
    }
    if failed {
        eprintln!("[benchgate] FAIL");
        std::process::exit(1);
    }
    println!("[benchgate] PASS");
}

/// `repro netcheck [--deny CHECK,...] [--threads N]` — the static model
/// lint gate. Prints the declared net graph's vital signs (dead and
/// unobservable nets, stuck-at equivalence classes, transient-safe
/// latches), cross-checks the declaration against the observed access
/// order of the conformance mix, and compares the statically predicted
/// per-unit observability against a small measured safety campaign.
/// `--deny` turns named findings into a nonzero exit for CI:
/// `dead-nets` (any dead or unobservable net) and `graph-mismatch`
/// (any observed edge the declaration lacks, or a measured DC above the
/// static bound).
fn run_netcheck(config: &ExperimentConfig, args: &[String]) {
    const USAGE: &str = "usage: repro netcheck [--deny dead-nets,graph-mismatch] [--threads N]";
    let mut deny_dead = false;
    let mut deny_mismatch = false;
    let mut threads = config.threads;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("`{flag}` needs a value\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--deny" => {
                for check in value("--deny").split(',') {
                    match check {
                        "dead-nets" => deny_dead = true,
                        "graph-mismatch" => deny_mismatch = true,
                        other => {
                            eprintln!("unknown check `{other}`\n{USAGE}");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--threads" => {
                threads = parse_usize("--threads", value("--threads"), USAGE).max(1);
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let model_config = Leon3Config::default();
    let cpu = Leon3::new(model_config.clone());
    let analysis = StaticAnalysis::for_config(&model_config);
    let graph = analysis.graph();
    let name = |net: rtl_sim::NetId| cpu.pool().meta(net).name.clone();

    let transient_safe = (0..graph.net_count())
        .filter(|&i| graph.is_transient_safe(rtl_sim::NetId::from_raw(i as u32)))
        .count();
    println!(
        "[netcheck] graph: {} nets, {} edges, {} sinks, {} transient-safe latches",
        graph.net_count(),
        graph.edge_count(),
        graph.sink_count(),
        transient_safe,
    );

    let dead = graph.dead_nets();
    let unobservable = graph.unobservable_nets();
    println!(
        "[netcheck] dead nets: {} | unobservable nets: {}",
        dead.len(),
        unobservable.len(),
    );
    for &net in &dead {
        println!("[netcheck]   dead: {}", name(net));
    }
    for &net in &unobservable {
        println!("[netcheck]   unobservable: {}", name(net));
    }

    let classes = graph.equivalence_classes();
    let collapsible: Vec<&Vec<rtl_sim::NetId>> = classes.iter().filter(|c| c.len() > 1).collect();
    println!(
        "[netcheck] stuck-at equivalence classes of size > 1: {}",
        collapsible.len()
    );
    for class in &collapsible {
        let names: Vec<String> = class.iter().map(|&n| name(n)).collect();
        println!("[netcheck]   class[{}]: {}", class.len(), names.join(" = "));
    }

    // Taint-instrumented cross-check: every driver→reader edge the
    // conformance mix actually exercises must be declared, on the default
    // and the parity configurations (parity changes the net population).
    let mut missing_total = 0;
    for (label, config) in [
        ("default", Leon3Config::default()),
        (
            "parity",
            Leon3Config {
                cmem_parity: true,
                ..Leon3Config::default()
            },
        ),
    ] {
        let missing = leon3_model::graph::conformance_missing_edges(config);
        println!(
            "[netcheck] conformance ({label}): {} undeclared edges",
            missing.len()
        );
        for (from, to) in &missing {
            println!("[netcheck]   undeclared: {from} -> {to}");
        }
        missing_total += missing.len();
    }

    // Predicted-vs-measured: static observability is an upper bound on
    // what the safety mechanisms can see, so any unit whose measured DC
    // exceeds its predicted fraction exposes a graph declaration bug.
    let sample = config.sample_per_campaign.clamp(24, 120);
    let campaign = Campaign::new(Benchmark::Rspeed.program(&Params::default()), Target::Whole)
        .with_sample(sample, config.seed)
        .with_injection_fraction(0.25)
        .with_lockstep_window(32)
        .with_parity(true);
    let result = campaign.run(threads);
    let predicted = analysis.unit_observability(&cpu);
    let mut dc_violations = 0;
    println!("[netcheck] unit        predicted-obs  measured-dc  dangerous");
    for (unit, obs) in &predicted {
        let mut dangerous = 0;
        let mut measured: Option<f64> = None;
        for kind in rtl_sim::FaultKind::ALL {
            let per_unit = result.coverage_per_unit(kind);
            if let Some(c) = per_unit.get(unit) {
                dangerous += c.detected() + c.residual;
                if let Some(dc) = c.diagnostic_coverage() {
                    measured = Some(measured.map_or(dc, |m: f64| m.max(dc)));
                }
            }
        }
        let shown = measured.map_or("    n/a".to_string(), |m| format!("{m:7.3}"));
        println!(
            "[netcheck] {:<12} {:>9.3}      {shown}      {dangerous}",
            unit.to_string(),
            obs.fraction(),
        );
        if measured.is_some_and(|m| m > obs.fraction() + 1e-9) {
            dc_violations += 1;
            println!(
                "[netcheck]   VIOLATION: {unit} measured DC exceeds static observability bound"
            );
        }
    }

    let mut failed = Vec::new();
    if deny_dead && (!dead.is_empty() || !unobservable.is_empty()) {
        failed.push("dead-nets");
    }
    if deny_mismatch && (missing_total > 0 || dc_violations > 0) {
        failed.push("graph-mismatch");
    }
    if failed.is_empty() {
        println!("[netcheck] PASS");
    } else {
        eprintln!("[netcheck] FAIL: {}", failed.join(", "));
        std::process::exit(1);
    }
}

/// Parse a flag value as a non-negative integer or exit 2.
fn parse_usize(flag: &str, raw: String, usage: &str) -> usize {
    raw.parse().unwrap_or_else(|_| {
        eprintln!("`{flag}` needs an integer, got `{raw}`\n{usage}");
        std::process::exit(2);
    })
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let config = config_from_env();
    eprintln!(
        "[repro] sample={} seed={:#x} threads={}",
        config.sample_per_campaign, config.seed, config.threads
    );
    match what.as_str() {
        "table1" => print!("{}", table1()),
        "fig3" => print!("{}", fig3(&config)),
        "fig4" => print!("{}", fig4(&config)),
        "fig5" => {
            let f5 = fig5(&config);
            print!("{f5}");
            print!("{}", TemporalStudy::from_fig5(&f5));
        }
        "fig6" => print!("{}", fig6(&config)),
        "fig7" => {
            let f5 = fig5(&config);
            let f3 = fig3(&config);
            print!("{}", fig7_from_parts(&f5, &f3));
        }
        "temporal" => {
            let f5 = fig5(&config);
            print!("{}", TemporalStudy::from_fig5(&f5));
        }
        "simtime" => print!("{}", simtime()),
        "campaign" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_campaign(&config, &rest);
        }
        "serve" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_serve(&rest);
        }
        "submit" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_submit(&config, &rest);
        }
        "merge" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_merge(&rest);
        }
        "fleet" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_fleet(&config, &rest);
        }
        "correlate" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_correlate(&config, &rest);
        }
        "predict" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_predict(&rest);
        }
        "benchgate" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_benchgate(&config, &rest);
        }
        "netcheck" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_netcheck(&config, &rest);
        }
        "inject" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            run_inject(&config, &rest);
        }
        // `repro transient` predates `repro inject` and is kept as an
        // alias for `repro inject --kind transient`.
        "transient" => print!("{}", transient_study(&config)),
        "bridging" => print!("{}", bridging_study(&config)),
        "latent" => print!("{}", latent_study(&config)),
        "issbaseline" => print!("{}", iss_baseline(&config)),
        "eq1" => {
            let f5 = fig5(&config);
            print!("{}", eq1_ablation(&f5));
        }
        "extensions" => {
            print!("{}", transient_study(&config));
            println!();
            print!("{}", bridging_study(&config));
            println!();
            print!("{}", latent_study(&config));
            println!();
            print!("{}", iss_baseline(&config));
            println!();
            let f5 = fig5(&config);
            print!("{}", eq1_ablation(&f5));
        }
        "all" => {
            print!("{}", table1());
            println!();
            let f3 = fig3(&config);
            print!("{f3}");
            println!();
            print!("{}", fig4(&config));
            println!();
            let f5 = fig5(&config);
            print!("{f5}");
            println!();
            print!("{}", TemporalStudy::from_fig5(&f5));
            println!();
            print!("{}", fig6(&config));
            println!();
            print!("{}", fig7_from_parts(&f5, &f3));
            println!();
            print!("{}", simtime());
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; try table1|fig3|fig4|fig5|fig6|fig7|temporal|simtime|inject|transient|bridging|latent|issbaseline|eq1|extensions|campaign|serve|submit|merge|fleet|correlate|predict|benchgate|netcheck|all"
            );
            std::process::exit(2);
        }
    }
}
