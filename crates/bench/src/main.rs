//! `repro`: regenerate every table and figure of the paper.
//!
//! ```text
//! repro [table1|fig3|fig4|fig5|fig6|fig7|temporal|simtime|all]
//! ```
//!
//! Sizing via `REPRO_SAMPLE`, `REPRO_SEED`, `REPRO_THREADS` environment
//! variables (see [`bench::config_from_env`]).

use bench::config_from_env;
use correlation::experiments::{
    fig3, fig4, fig5, fig6, fig7_from_parts, simtime, table1, TemporalStudy,
};
use correlation::extensions::{
    bridging_study, eq1_ablation, iss_baseline, latent_study, transient_study,
};

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let config = config_from_env();
    eprintln!(
        "[repro] sample={} seed={:#x} threads={}",
        config.sample_per_campaign, config.seed, config.threads
    );
    match what.as_str() {
        "table1" => print!("{}", table1()),
        "fig3" => print!("{}", fig3(&config)),
        "fig4" => print!("{}", fig4(&config)),
        "fig5" => {
            let f5 = fig5(&config);
            print!("{f5}");
            print!("{}", TemporalStudy::from_fig5(&f5));
        }
        "fig6" => print!("{}", fig6(&config)),
        "fig7" => {
            let f5 = fig5(&config);
            let f3 = fig3(&config);
            print!("{}", fig7_from_parts(&f5, &f3));
        }
        "temporal" => {
            let f5 = fig5(&config);
            print!("{}", TemporalStudy::from_fig5(&f5));
        }
        "simtime" => print!("{}", simtime()),
        "transient" => print!("{}", transient_study(&config)),
        "bridging" => print!("{}", bridging_study(&config)),
        "latent" => print!("{}", latent_study(&config)),
        "issbaseline" => print!("{}", iss_baseline(&config)),
        "eq1" => {
            let f5 = fig5(&config);
            print!("{}", eq1_ablation(&f5));
        }
        "extensions" => {
            print!("{}", transient_study(&config));
            println!();
            print!("{}", bridging_study(&config));
            println!();
            print!("{}", latent_study(&config));
            println!();
            print!("{}", iss_baseline(&config));
            println!();
            let f5 = fig5(&config);
            print!("{}", eq1_ablation(&f5));
        }
        "all" => {
            print!("{}", table1());
            println!();
            let f3 = fig3(&config);
            print!("{f3}");
            println!();
            print!("{}", fig4(&config));
            println!();
            let f5 = fig5(&config);
            print!("{f5}");
            println!();
            print!("{}", TemporalStudy::from_fig5(&f5));
            println!();
            print!("{}", fig6(&config));
            println!();
            print!("{}", fig7_from_parts(&f5, &f3));
            println!();
            print!("{}", simtime());
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; try table1|fig3|fig4|fig5|fig6|fig7|temporal|simtime|transient|bridging|latent|issbaseline|eq1|extensions|all"
            );
            std::process::exit(2);
        }
    }
}
