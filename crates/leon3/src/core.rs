//! The model's top level: state over nets, the step loop and trap entry.

use crate::config::Leon3Config;
use crate::nets::NetMap;
use rtl_sim::{Fault, NetId, NetPool, PoolCheckpoint, Waveform};
use sparc_asm::Program;
use sparc_isa::{decode, Icc, Psr, Reg, Tbr, TrapType, Unit, Wim, WindowedRegs, NWINDOWS};
use sparc_iss::{BusTrace, CpuState, Exit, Memory, RunOutcome, RunStats, StepEvent, Timer};

/// A complete mid-run capture of a fault-free [`Leon3`].
///
/// A snapshot holds everything execution depends on: every net's raw value
/// (architectural registers, pipeline latches, cache tag/valid/data arrays
/// — caches are nets), the memory image, the off-core bus trace recorded so
/// far, the statistics counters, the timer peripheral and the cycle
/// counter. [`Leon3::restore`] therefore resumes execution bit-identically
/// to the model the snapshot was taken from; the campaign engine exploits
/// this to fork every fault job from one shared fault-free prefix instead
/// of re-simulating it.
///
/// Two things are deliberately *not* captured: the fault overlay (a
/// snapshot must be taken fault-free, and each forked job re-injects its
/// own fault after restoring) and debugging aids (waveform recording and
/// the rolling instruction window), which restore simply clears.
///
/// Snapshots are plain data (`Send + Sync`): one snapshot is shared by
/// reference across all campaign worker threads.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pool: PoolCheckpoint,
    mem: Memory,
    trace: BusTrace,
    stats: RunStats,
    exit: Option<Exit>,
    eval_acc: u32,
    timer: Timer,
    parity_event: Option<u64>,
    config: Leon3Config,
}

impl Snapshot {
    /// The cycle at which the snapshot was captured.
    pub fn cycle(&self) -> u64 {
        self.pool.cycle()
    }

    /// Number of bus events already recorded at the capture instant (the
    /// campaign's streaming comparison starts its cursor here).
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Instructions retired up to the capture instant.
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Approximate resident size of this snapshot in bytes: captured net
    /// values, allocated memory pages and the recorded bus trace (the
    /// three components that grow with the workload; the fixed-size
    /// fields are noise next to them). Checkpoint pools use this to
    /// report the memory side of the stride trade-off.
    pub fn approx_bytes(&self) -> usize {
        self.pool.resident_bytes()
            + self.mem.resident_bytes()
            + self.trace.len() * std::mem::size_of::<sparc_iss::BusEvent>()
    }
}

/// The signal-level Leon3-like model.
///
/// See the [crate docs](crate) for scope and modelling decisions.
///
/// # Unwind boundary
///
/// The campaign engine runs every fault job under
/// `std::panic::catch_unwind` and keeps using the same model instance
/// afterwards (wrapped in `AssertUnwindSafe`, since `&mut Leon3` is never
/// `UnwindSafe` by definition). That is sound on two grounds, both of
/// which are contracts of this type:
///
/// 1. `Leon3` (and [`Snapshot`]) hold only owned data — asserted at
///    compile time below — so a caught panic can leave the model *stale*,
///    never torn in the memory-safety sense. The only interior mutability
///    in the model lives in `rtl_sim::NetPool`: the golden-run read
///    tracker's `Cell` counters and the conformance-check event trace's
///    `RefCell` buffer, neither of which campaign workers ever enable and
///    both of which hold plain data either way;
/// 2. every job entry sequence rebuilds all execution state from scratch:
///    [`Leon3::reset`] + [`Leon3::load`] on the re-execution path,
///    [`Leon3::restore`] on the fork path. Nothing a panicked job left
///    behind survives into the next job.
///
/// Any new field must be covered by `reset`/`restore` (or be a pure
/// debugging aid those paths clear) to preserve this contract.
#[derive(Debug, Clone)]
pub struct Leon3 {
    pub(crate) pool: NetPool<Unit>,
    pub(crate) nets: NetMap,
    pub(crate) mem: Memory,
    pub(crate) trace: BusTrace,
    pub(crate) stats: RunStats,
    pub(crate) config: Leon3Config,
    pub(crate) exit: Option<Exit>,
    /// Accumulator for faithful-clocking evaluation (keeps the per-cycle
    /// net sweep observable so it cannot be optimised away).
    eval_acc: u32,
    waveform: Option<Waveform>,
    pub(crate) timer: Timer,
    /// Cycle of the first cache-parity mismatch, when `cmem_parity` is
    /// configured. Latch-only: detection never alters execution, so the
    /// parity mechanism is orthogonal to the outcome classification.
    pub(crate) parity_event: Option<u64>,
    trace_depth: usize,
    recent: std::collections::VecDeque<(u64, u32, sparc_isa::Instr)>,
}

// Compile-time proof of the unwind boundary's first ground: the model is
// owned data (`UnwindSafe`), and snapshots — shared by reference across
// all campaign workers — carry no interior mutability at all
// (`RefUnwindSafe`). A new `Mutex`/`RefCell` field, or a `Cell` leaking
// into snapshots, fails the build here.
const _: fn() = || {
    fn owned_data<T: std::panic::UnwindSafe>() {}
    fn shareable_plain_data<T: std::panic::UnwindSafe + std::panic::RefUnwindSafe>() {}
    owned_data::<Leon3>();
    shareable_plain_data::<Snapshot>();
};

impl Leon3 {
    /// A fresh model with nothing loaded.
    pub fn new(config: Leon3Config) -> Leon3 {
        let mut pool = NetPool::new();
        let nets = NetMap::declare(&mut pool, config.icache, config.dcache, config.cmem_parity);
        let mut cpu = Leon3 {
            pool,
            nets,
            mem: Memory::new(config.ram_base, config.ram_size),
            trace: if config.trace_reads {
                BusTrace::with_reads()
            } else {
                BusTrace::new()
            },
            stats: RunStats::default(),
            config,
            exit: None,
            eval_acc: 0,
            waveform: None,
            timer: Timer::new(),
            parity_event: None,
            trace_depth: 0,
            recent: std::collections::VecDeque::new(),
        };
        cpu.reset_state(cpu.config.ram_base);
        cpu
    }

    fn reset_state(&mut self, entry: u32) {
        self.pool.write(self.nets.pc, entry);
        self.pool.write(self.nets.npc, entry.wrapping_add(4));
        self.pool.write(self.nets.annul, 0);
        // PSR reset: supervisor, traps enabled (matches CpuState::at_entry).
        self.pool.write(self.nets.psr_s, 1);
        self.pool.write(self.nets.psr_ps, 1);
        self.pool.write(self.nets.psr_et, 1);
        self.pool.write(self.nets.psr_pil, 0);
        self.pool.write(self.nets.psr_cwp, 0);
        self.pool.write(self.nets.psr_icc, 0);
        self.pool.write(self.nets.wim, 0);
        self.pool.write(self.nets.tbr, 0);
    }

    /// Load a program image and point the PC at its entry.
    pub fn load(&mut self, program: &Program) {
        self.mem.load(program);
        self.reset_state(program.entry);
    }

    /// Return the model to power-on state (all nets zero, faults cleared,
    /// memory empty, traces and statistics reset) without re-allocating
    /// the net pool — campaign runners reuse one instance per worker.
    pub fn reset(&mut self) {
        self.pool.reset();
        self.mem = Memory::new(self.config.ram_base, self.config.ram_size);
        self.trace = if self.config.trace_reads {
            BusTrace::with_reads()
        } else {
            BusTrace::new()
        };
        self.stats = RunStats::default();
        self.exit = None;
        self.eval_acc = 0;
        self.waveform = None;
        self.timer = Timer::new();
        self.parity_event = None;
        self.recent.clear();
        self.reset_state(self.config.ram_base);
    }

    /// Capture the complete execution state (see [`Snapshot`]).
    ///
    /// # Panics
    ///
    /// Panics if a fault or bridge is injected: the overlay is not part of
    /// a snapshot, so capturing one here would silently drop it on
    /// restore.
    pub fn snapshot(&self) -> Snapshot {
        assert!(
            self.pool.is_fault_free(),
            "snapshots must be taken from a fault-free model"
        );
        Snapshot {
            pool: self.pool.checkpoint(),
            mem: self.mem.clone(),
            trace: self.trace.clone(),
            stats: self.stats.clone(),
            exit: self.exit,
            eval_acc: self.eval_acc,
            timer: self.timer.clone(),
            parity_event: self.parity_event,
            config: self.config.clone(),
        }
    }

    /// Restore a [`Snapshot`], resuming execution bit-identically to the
    /// model it was captured from. Any injected faults are cleared (the
    /// caller re-injects the fault under test, which re-arms against the
    /// restored clock exactly as on a fresh run); waveform recording and
    /// the rolling instruction window are dropped.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was captured under a different
    /// [`Leon3Config`] (the net population and timing would not line up).
    pub fn restore(&mut self, snapshot: &Snapshot) {
        assert_eq!(
            self.config, snapshot.config,
            "snapshot captured under a different configuration"
        );
        self.pool.restore(&snapshot.pool);
        self.mem.clone_from(&snapshot.mem);
        self.trace.clone_from(&snapshot.trace);
        self.stats.clone_from(&snapshot.stats);
        self.exit = snapshot.exit;
        self.eval_acc = snapshot.eval_acc;
        self.timer.clone_from(&snapshot.timer);
        self.parity_event = snapshot.parity_event;
        self.waveform = None;
        self.recent.clear();
    }

    /// Record, per net, the cycle of its most recent read (used on golden
    /// runs to find which nets a workload ever exercises — the campaign's
    /// site-activation tracker).
    pub fn enable_read_tracking(&mut self) {
        self.pool.enable_read_tracking();
    }

    /// The cycle of the most recent read of `net`, or `None` if the net
    /// was never read while tracking was enabled.
    pub fn net_last_read(&self, net: NetId) -> Option<u64> {
        self.pool.last_read_cycle(net)
    }

    /// Record every net read and write in program order, for cross-checking
    /// the declared net graph against the model's real access order (see
    /// [`crate::graph`]). Unbounded memory per access — extraction runs
    /// only.
    pub fn enable_event_trace(&mut self) {
        self.pool.enable_event_trace();
    }

    /// Drain the recorded access trace (empty if tracing is off).
    pub fn take_net_events(&mut self) -> Vec<rtl_sim::NetEvent> {
        self.pool.take_events()
    }

    /// Inject a permanent fault into a net.
    pub fn inject(&mut self, fault: Fault) {
        self.pool.inject(fault);
    }

    /// Inject a bridging (short-circuit) fault between two net bits.
    pub fn inject_bridge(&mut self, bridge: rtl_sim::Bridge) {
        self.pool.inject_bridge(bridge);
    }

    /// Run until halt, error mode or the instruction budget is exhausted.
    pub fn run(&mut self, max_instructions: u64) -> RunOutcome {
        let budget_end = self.stats.instructions + max_instructions;
        loop {
            match self.exit {
                Some(Exit::Halted(code)) => return RunOutcome::Halted { code },
                Some(Exit::ErrorMode(trap)) => return RunOutcome::ErrorMode { trap },
                None => {}
            }
            if self.stats.instructions >= budget_end {
                return RunOutcome::InstructionLimit;
            }
            self.step();
        }
    }

    /// Execute one instruction through all seven stages.
    pub fn step(&mut self) -> StepEvent {
        if self.exit.is_some() {
            return StepEvent::Stopped;
        }
        // Sample the interrupt lines between instructions.
        if self.config.timer {
            self.timer.advance_to(self.pool.cycle());
            if let Some(level) = self.timer.pending_level() {
                let et = self.pool.read(self.nets.psr_et) == 1;
                let pil = self.pool.read(self.nets.psr_pil) as u8;
                let annulled = self.pool.read(self.nets.annul) == 1;
                if et && !annulled && (level == 15 || level > pil) {
                    return self.take_trap(TrapType::Interrupt(level));
                }
            }
        }
        self.advance_cycles(1);
        if self.pool.read(self.nets.annul) == 1 {
            self.pool.write(self.nets.annul, 0);
            self.stats.annulled += 1;
            self.advance();
            return StepEvent::Annulled;
        }
        // ---- Fetch ----
        let pc = self.pool.read(self.nets.pc);
        if !pc.is_multiple_of(4) || !self.mem.in_range(pc, 4) {
            return self.take_trap(TrapType::InstructionAccess);
        }
        let word = self.icache_fetch(pc);
        self.pool.write(self.nets.fe_inst, word);
        // ---- Decode ----
        let fetched = self.pool.read(self.nets.fe_inst);
        self.pool.write(self.nets.de_ir, fetched);
        let ir = self.pool.read(self.nets.de_ir);
        let instr = match decode(ir) {
            Ok(instr) => instr,
            Err(_) => return self.take_trap(TrapType::IllegalInstruction),
        };
        self.stats.record(&instr);
        if self.trace_depth > 0 {
            if self.recent.len() == self.trace_depth {
                self.recent.pop_front();
            }
            self.recent.push_back((self.pool.cycle(), pc, instr));
        }
        let extra = instr.op.latency().saturating_sub(1);
        self.advance_cycles(u64::from(extra));
        // ---- Register access / execute / memory / exception / write-back.
        match self.exec(&instr) {
            Ok(crate::execute::Flow::Advance) => {
                self.advance();
                StepEvent::Executed
            }
            Ok(crate::execute::Flow::Jumped) => StepEvent::Executed,
            Ok(crate::execute::Flow::Halt(code)) => {
                self.exit = Some(Exit::Halted(code));
                StepEvent::Stopped
            }
            Err(trap) => self.take_trap(trap),
        }
    }

    /// Start recording a waveform of the given nets (one sample per
    /// cycle). Call before `run`; retrieve with [`Leon3::waveform_vcd`].
    pub fn trace_nets(&mut self, nets: Vec<NetId>) {
        self.waveform = Some(Waveform::new(nets));
    }

    /// The recorded waveform as a VCD document, if tracing was enabled.
    pub fn waveform_vcd(&self) -> Option<String> {
        self.waveform.as_ref().map(|w| w.to_vcd(&self.pool))
    }

    /// Keep a rolling window of the last `depth` executed instructions
    /// (`(cycle, pc, instruction)`), for post-mortem failure analysis.
    pub fn enable_instruction_trace(&mut self, depth: usize) {
        self.trace_depth = depth;
        self.recent.clear();
    }

    /// The rolling instruction window (most recent last).
    pub fn recent_instructions(&self) -> impl Iterator<Item = &(u64, u32, sparc_isa::Instr)> {
        self.recent.iter()
    }

    /// Advance the model clock by `n` cycles. In faithful-clocking mode
    /// every net is re-evaluated on every cycle, emulating the process
    /// evaluation load of an event-driven RTL simulator.
    pub(crate) fn advance_cycles(&mut self, n: u64) {
        self.pool.tick_many(n);
        if let Some(wave) = &mut self.waveform {
            wave.capture(&self.pool);
        }
        if self.config.faithful_clocking {
            // An event-driven simulator settles each clock edge over
            // several delta cycles; eight full-design sweeps per clock is
            // a conservative stand-in for that load.
            const DELTA_CYCLES_PER_CLOCK: u64 = 8;
            for _ in 0..n * DELTA_CYCLES_PER_CLOCK {
                self.eval_acc = self.eval_acc.wrapping_add(self.pool.evaluate_all());
            }
        }
    }

    // ---- Control-flow helpers over nets ----

    pub(crate) fn advance(&mut self) {
        let npc = self.pool.read(self.nets.npc);
        self.pool.write(self.nets.pc, npc);
        self.pool.write(self.nets.npc, npc.wrapping_add(4));
    }

    pub(crate) fn delayed_jump(&mut self, target: u32) {
        let npc = self.pool.read(self.nets.npc);
        self.pool.write(self.nets.pc, npc);
        self.pool.write(self.nets.npc, target);
    }

    // ---- Register-file access over nets ----

    pub(crate) fn cwp(&self) -> usize {
        self.pool.read(self.nets.psr_cwp) as usize % NWINDOWS
    }

    pub(crate) fn rf_read(&self, reg: Reg) -> u32 {
        if reg.is_g0() {
            return 0;
        }
        let slot = WindowedRegs::physical_index(self.cwp(), reg);
        self.pool.read(self.nets.rf[slot])
    }

    pub(crate) fn rf_write(&mut self, reg: Reg, value: u32) {
        if reg.is_g0() {
            return;
        }
        let slot = WindowedRegs::physical_index(self.cwp(), reg);
        self.pool.write(self.nets.rf[slot], value);
    }

    /// Result write-back through the WB-stage nets (faults on `wb_rd` can
    /// redirect the write, as in real hardware).
    pub(crate) fn writeback(&mut self, rd: Reg, value: u32) {
        self.pool.write(self.nets.wb_res, value);
        self.pool.write(self.nets.wb_rd, rd.index() as u32);
        let effective_rd = Reg::new((self.pool.read(self.nets.wb_rd) & 31) as u8);
        let value = self.pool.read(self.nets.wb_res);
        self.rf_write(effective_rd, value);
    }

    // ---- PSR access over nets ----

    pub(crate) fn icc(&self) -> Icc {
        Icc::from_bits(self.pool.read(self.nets.psr_icc))
    }

    pub(crate) fn set_icc(&mut self, icc: Icc) {
        self.pool.write(self.nets.psr_icc, icc.to_bits());
    }

    pub(crate) fn psr(&self) -> Psr {
        Psr {
            icc: self.icc(),
            s: self.pool.read(self.nets.psr_s) == 1,
            ps: self.pool.read(self.nets.psr_ps) == 1,
            et: self.pool.read(self.nets.psr_et) == 1,
            pil: self.pool.read(self.nets.psr_pil) as u8,
            cwp: self.cwp() as u8,
        }
    }

    pub(crate) fn set_psr(&mut self, psr: Psr) {
        self.set_icc(psr.icc);
        self.pool.write(self.nets.psr_s, u32::from(psr.s));
        self.pool.write(self.nets.psr_ps, u32::from(psr.ps));
        self.pool.write(self.nets.psr_et, u32::from(psr.et));
        self.pool.write(self.nets.psr_pil, u32::from(psr.pil));
        self.pool.write(self.nets.psr_cwp, u32::from(psr.cwp));
    }

    pub(crate) fn wim(&self) -> Wim {
        Wim(self.pool.read(self.nets.wim))
    }

    pub(crate) fn tbr(&self) -> Tbr {
        Tbr::from_bits(self.pool.read(self.nets.tbr))
    }

    // ---- Trap entry (exception stage) ----

    pub(crate) fn take_trap(&mut self, trap: TrapType) -> StepEvent {
        self.stats.traps += 1;
        self.advance_cycles(5);
        if self.pool.read(self.nets.psr_et) != 1 {
            self.exit = Some(Exit::ErrorMode(trap));
            return StepEvent::Stopped;
        }
        let s = self.pool.read(self.nets.psr_s);
        self.pool.write(self.nets.psr_et, 0);
        self.pool.write(self.nets.psr_ps, s);
        self.pool.write(self.nets.psr_s, 1);
        let new_cwp = (self.cwp() + NWINDOWS - 1) % NWINDOWS;
        self.pool.write(self.nets.psr_cwp, new_cwp as u32);
        let pc = self.pool.read(self.nets.pc);
        let npc = self.pool.read(self.nets.npc);
        self.rf_write(Reg::l(1), pc);
        self.rf_write(Reg::l(2), npc);
        // Route the trap type through the exception-stage net: faults there
        // send the core to the wrong vector.
        self.pool.write(self.nets.xc_tt, u32::from(trap.tt()));
        let tt = self.pool.read(self.nets.xc_tt);
        let tbr = self.pool.read(self.nets.tbr);
        let new_tbr = (tbr & !0xff0) | (tt << 4);
        self.pool.write(self.nets.tbr, new_tbr);
        let vector = self.pool.read(self.nets.tbr) & 0xffff_fff0;
        self.pool.write(self.nets.pc, vector);
        self.pool.write(self.nets.npc, vector.wrapping_add(4));
        self.pool.write(self.nets.annul, 0);
        StepEvent::Trapped(trap)
    }

    // ---- Observability ----

    /// The off-core bus trace recorded so far.
    pub fn bus_trace(&self) -> &BusTrace {
        &self.trace
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Elapsed simulation cycles.
    pub fn cycles(&self) -> u64 {
        self.pool.cycle()
    }

    /// The memory image.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Terminal state, if the core has stopped.
    pub fn exit(&self) -> Option<Exit> {
        self.exit
    }

    /// The timer peripheral's state (for tests and debuggers).
    pub fn timer(&self) -> &Timer {
        &self.timer
    }

    /// Cycle of the first cache-parity mismatch, or `None` if the parity
    /// mechanism is disabled or never fired.
    pub fn parity_detected_at(&self) -> Option<u64> {
        self.parity_event
    }

    /// The net pool (for fault-list construction and area statistics).
    pub fn pool(&self) -> &NetPool<Unit> {
        &self.pool
    }

    /// The net map (names and handles for every injectable net).
    pub fn nets(&self) -> &NetMap {
        &self.nets
    }

    /// The platform configuration.
    pub fn config(&self) -> &Leon3Config {
        &self.config
    }

    /// Reconstruct the architectural state from the nets — used by the
    /// ISS/RTL lockstep tests, which require golden runs to be bit-exact
    /// across the two simulation levels.
    pub fn architectural_state(&self) -> CpuState {
        let mut state = CpuState::at_entry(0);
        for slot in 0..self.nets.rf.len() {
            state
                .regs
                .write_physical(slot, self.pool.read(self.nets.rf[slot]));
        }
        // Keep %g0's backing storage architecturally zero.
        state.regs.write_physical(0, 0);
        state.psr = self.psr();
        state.wim = self.wim();
        state.tbr = self.tbr();
        state.y = self.pool.read(self.nets.md_y);
        state.pc = self.pool.read(self.nets.pc);
        state.npc = self.pool.read(self.nets.npc);
        state.annul = self.pool.read(self.nets.annul) == 1;
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_asm::assemble;

    fn run(src: &str) -> (Leon3, RunOutcome) {
        let program = assemble(src).expect("assembles");
        let mut cpu = Leon3::new(Leon3Config::default());
        cpu.load(&program);
        let outcome = cpu.run(100_000);
        (cpu, outcome)
    }

    #[test]
    fn halts_with_exit_code() {
        let (_, outcome) = run("_start: mov 21, %o0\n add %o0, %o0, %o0\n halt\n");
        assert_eq!(outcome, RunOutcome::Halted { code: 42 });
    }

    #[test]
    fn stores_reach_the_bus() {
        let (cpu, outcome) =
            run("_start: set 0x40002000, %o1\n mov 9, %o0\n st %o0, [%o1]\n halt\n");
        assert!(matches!(outcome, RunOutcome::Halted { .. }));
        let writes: Vec<_> = cpu.bus_trace().writes().collect();
        assert_eq!(writes.len(), 1);
        assert_eq!((writes[0].addr, writes[0].data), (0x4000_2000, 9));
    }

    #[test]
    fn loops_and_branches() {
        let (_, outcome) = run(
            "_start: mov 10, %o1\n mov 0, %o0\nloop: add %o0, %o1, %o0\n subcc %o1, 1, %o1\n bne loop\n nop\n halt\n",
        );
        assert_eq!(outcome, RunOutcome::Halted { code: 55 });
    }

    #[test]
    fn cycles_accumulate_beyond_instruction_count() {
        let (cpu, _) = run("_start: mov 1, %o0\n halt\n");
        // Cache misses and latencies make cycles > instructions.
        assert!(cpu.cycles() > cpu.stats().instructions);
    }

    #[test]
    fn error_mode_without_trap_handlers() {
        let (_, outcome) = run("_start: unimp\n halt\n");
        assert!(matches!(outcome, RunOutcome::ErrorMode { .. }));
    }

    #[test]
    fn instruction_limit_is_hang_detection() {
        let program = assemble("_start: ba _start\n nop\n").unwrap();
        let mut cpu = Leon3::new(Leon3Config::default());
        cpu.load(&program);
        assert_eq!(cpu.run(500), RunOutcome::InstructionLimit);
    }

    const STORE_LOOP: &str = "
        _start:
            set 0x40003000, %l0
            mov 8, %l1
            mov 0, %o0
        loop:
            add %o0, %l1, %o0
            st %o0, [%l0]
            st %l1, [%l0 + 4]
            subcc %l1, 1, %l1
            bne loop
             nop
            halt
    ";

    #[test]
    fn restoring_a_mid_run_snapshot_reproduces_the_remaining_write_stream() {
        let program = assemble(STORE_LOOP).expect("assembles");
        let mut golden = Leon3::new(Leon3Config::default());
        golden.load(&program);
        assert!(matches!(golden.run(100_000), RunOutcome::Halted { .. }));

        // Take a snapshot partway through a second, identical run.
        let mut cpu = Leon3::new(Leon3Config::default());
        cpu.load(&program);
        for _ in 0..7 {
            cpu.step();
        }
        let snapshot = cpu.snapshot();
        assert!(snapshot.cycle() > 0 && snapshot.cycle() < golden.cycles());
        assert!(snapshot.trace_len() <= golden.bus_trace().len());

        // Restore into a worker whose state is thoroughly dirty: a faulty
        // run of the same program that went who-knows-where.
        let mut worker = Leon3::new(Leon3Config::default());
        worker.load(&program);
        let victim = worker.nets().pc;
        worker.inject(Fault {
            net: victim,
            bit: 2,
            kind: rtl_sim::FaultKind::StuckAt1,
            from_cycle: 0,
        });
        worker.run(200);
        worker.restore(&snapshot);
        assert_eq!(worker.cycles(), snapshot.cycle());
        assert!(worker.pool().is_fault_free());
        assert!(matches!(worker.run(100_000), RunOutcome::Halted { .. }));

        // The resumed run must be bit-identical to the golden one: same
        // write stream (events after the snapshot cursor included), same
        // exit code, same cycle count, same architectural state.
        assert_eq!(worker.bus_trace().events(), golden.bus_trace().events());
        assert_eq!(worker.exit(), golden.exit());
        assert_eq!(worker.cycles(), golden.cycles());
        assert_eq!(worker.architectural_state(), golden.architectural_state());
        assert_eq!(worker.stats(), golden.stats());
    }

    #[test]
    #[should_panic(expected = "fault-free")]
    fn snapshot_with_injected_fault_is_rejected() {
        let program = assemble("_start: halt\n").unwrap();
        let mut cpu = Leon3::new(Leon3Config::default());
        cpu.load(&program);
        let pc = cpu.nets().pc;
        cpu.inject(Fault {
            net: pc,
            bit: 0,
            kind: rtl_sim::FaultKind::StuckAt0,
            from_cycle: 0,
        });
        let _ = cpu.snapshot();
    }

    #[test]
    fn read_tracking_sees_exercised_nets_only() {
        let program = assemble(STORE_LOOP).expect("assembles");
        let mut cpu = Leon3::new(Leon3Config::default());
        cpu.enable_read_tracking();
        cpu.load(&program);
        assert!(matches!(cpu.run(100_000), RunOutcome::Halted { .. }));
        let pc = cpu.nets().pc;
        assert!(cpu.net_last_read(pc).is_some(), "the PC is read every step");
        // The register file has 136 slots; this workload touches a
        // handful, so plenty of slots are never read.
        let unread = cpu
            .nets()
            .rf
            .iter()
            .filter(|&&slot| cpu.net_last_read(slot).is_none())
            .count();
        assert!(unread > 0, "some register-file slots must stay cold");
    }
}
