//! Cache access paths over nets (the CMEM injection domain).
//!
//! Both caches are direct-mapped, write-through and no-write-allocate, like
//! the default Leon3 configuration. Tags, valid bits and data words are all
//! nets, so faults produce the realistic spectrum of cache pathologies:
//! false hits (stale data), false misses (spurious refills), corrupted
//! refill data and corrupted store-through data.

use crate::core::Leon3;
use rtl_sim::NetId;
use sparc_iss::{BusEvent, BusKind, CacheSpec};

/// Which cache an access targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    Instruction,
    Data,
}

impl Leon3 {
    fn geometry(&self, side: Side) -> CacheSpec {
        match side {
            Side::Instruction => self.config.icache,
            Side::Data => self.config.dcache,
        }
    }

    fn hit_and_index_nets(&self, side: Side) -> (NetId, NetId) {
        match side {
            Side::Instruction => (self.nets.ic_hit, self.nets.ic_index),
            Side::Data => (self.nets.dc_hit, self.nets.dc_index),
        }
    }

    fn tag_and_valid_nets(&self, side: Side, index: usize) -> (NetId, NetId) {
        match side {
            Side::Instruction => (self.nets.itag[index], self.nets.ivalid[index]),
            Side::Data => (self.nets.dtag[index], self.nets.dvalid[index]),
        }
    }

    fn data_net(&self, side: Side, index: usize, word: usize) -> NetId {
        let words = self.geometry(side).line_bytes / 4;
        match side {
            Side::Instruction => self.nets.idata[index * words + word],
            Side::Data => self.nets.ddata[index * words + word],
        }
    }

    fn index_and_tag(&self, side: Side, addr: u32) -> (usize, u32) {
        let spec = self.geometry(side);
        let line = addr as usize / spec.line_bytes;
        (line % spec.lines, ((line / spec.lines) as u32) & 0xf_ffff)
    }

    /// The line's parity net, when the parity mechanism is configured.
    fn parity_net(&self, side: Side, index: usize) -> Option<NetId> {
        match side {
            Side::Instruction => self.nets.iparity.get(index).copied(),
            Side::Data => self.nets.dparity.get(index).copied(),
        }
    }

    /// XOR of the line's data words as stored in the arrays.
    fn line_words_xor(&self, side: Side, index: usize) -> u32 {
        let words = self.geometry(side).line_bytes / 4;
        (0..words).fold(0u32, |acc, w| {
            acc ^ self.pool.read(self.data_net(side, index, w))
        })
    }

    /// Check a valid line against its stored parity bit and latch the
    /// first mismatch cycle. Purely observational: the access itself
    /// proceeds unchanged, so enabling parity never perturbs outcomes.
    fn parity_check(&mut self, side: Side, index: usize, stored_tag: u32) {
        let Some(pnet) = self.parity_net(side, index) else {
            return;
        };
        let expected = line_parity(stored_tag, 1, self.line_words_xor(side, index));
        if self.pool.read(pnet) != expected && self.parity_event.is_none() {
            self.parity_event = Some(self.pool.cycle());
        }
    }

    /// Route the line index through the controller's index net (so control
    /// faults can redirect accesses to the wrong set) and return it.
    fn effective_index(&mut self, side: Side, index: usize) -> usize {
        let (_, index_net) = self.hit_and_index_nets(side);
        self.pool.write(index_net, index as u32);
        self.pool.read(index_net) as usize % self.geometry(side).lines
    }

    /// Look up `addr`; returns whether it hit (through the hit net, so
    /// control faults can flip the outcome).
    fn lookup(&mut self, side: Side, addr: u32) -> bool {
        let (index, tag) = self.index_and_tag(side, addr);
        let index = self.effective_index(side, index);
        let (tag_net, valid_net) = self.tag_and_valid_nets(side, index);
        let stored_tag = self.pool.read(tag_net);
        let valid = self.pool.read(valid_net) == 1;
        if valid {
            self.parity_check(side, index, stored_tag);
        }
        let hit = valid && stored_tag == tag;
        let (hit_net, _) = self.hit_and_index_nets(side);
        self.pool.write(hit_net, u32::from(hit));
        self.pool.read(hit_net) == 1
    }

    /// Refill the line containing `addr` from memory over the bus.
    fn refill(&mut self, side: Side, addr: u32) {
        let spec = self.geometry(side);
        let (index, tag) = self.index_and_tag(side, addr);
        let index = self.effective_index(side, index);
        let words = spec.line_bytes / 4;
        let line_base = addr & !(spec.line_bytes as u32 - 1);
        // Parity is generated from the incoming bus values, before the
        // array: a stuck-at in the data array then shows up as a mismatch
        // between the stored parity and the array's read-back on a later
        // lookup, which is exactly how a hardware parity tree catches it.
        let mut incoming = 0u32;
        for w in 0..words {
            let word_addr = line_base + (w as u32) * 4;
            // Bus transfer through the controller nets.
            self.pool.write(self.nets.bus_addr, word_addr);
            let bus_addr = self.pool.read(self.nets.bus_addr);
            let value = self.mem.read_u32(bus_addr).unwrap_or(0);
            self.pool.write(self.nets.bus_data, value);
            let value = self.pool.read(self.nets.bus_data);
            let at = self.pool.cycle();
            self.trace.push(BusEvent {
                at,
                kind: BusKind::Read,
                addr: word_addr,
                size: 4,
                data: value,
            });
            let net = self.data_net(side, index, w);
            self.pool.write(net, value);
            incoming ^= value;
        }
        let (tag_net, valid_net) = self.tag_and_valid_nets(side, index);
        self.pool.write(tag_net, tag);
        self.pool.write(valid_net, 1);
        if let Some(pnet) = self.parity_net(side, index) {
            self.pool.write(pnet, line_parity(tag, 1, incoming));
        }
        self.advance_cycles(u64::from(spec.miss_penalty));
    }

    /// Read the cached word containing `addr` (must follow a hit or
    /// refill).
    fn cached_word(&mut self, side: Side, addr: u32) -> u32 {
        let spec = self.geometry(side);
        let (index, _) = self.index_and_tag(side, addr);
        let index = self.effective_index(side, index);
        let word = (addr as usize % spec.line_bytes) / 4;
        let net = self.data_net(side, index, word);
        self.pool.read(net)
    }

    /// Fetch an instruction word through the instruction cache.
    pub(crate) fn icache_fetch(&mut self, pc: u32) -> u32 {
        if !self.lookup(Side::Instruction, pc) {
            self.refill(Side::Instruction, pc);
        }
        self.cached_word(Side::Instruction, pc)
    }

    /// Load a 32-bit word through the data cache.
    pub(crate) fn dcache_load_word(&mut self, addr: u32) -> u32 {
        if !self.lookup(Side::Data, addr) {
            self.refill(Side::Data, addr);
        }
        self.cached_word(Side::Data, addr)
    }

    /// Store through the data cache: memory always updated (write-through);
    /// the cached copy only on hit (no-write-allocate). `size` ∈ {1,2,4};
    /// `addr` is already size-aligned. Emits the off-core write event.
    pub(crate) fn dcache_store(&mut self, addr: u32, size: u8, value: u32) {
        // Bus write through the controller nets — the lockstep comparison
        // point.
        self.pool.write(self.nets.bus_addr, addr);
        self.pool.write(self.nets.bus_data, value);
        let bus_addr = self.pool.read(self.nets.bus_addr);
        let bus_value = self.pool.read(self.nets.bus_data);
        match size {
            1 => self.mem.write_u8(bus_addr, bus_value as u8),
            2 => self.mem.write_u16(bus_addr, bus_value as u16),
            _ => self.mem.write_u32(bus_addr, bus_value),
        }
        .expect("store address validated in the memory stage");
        let at = self.pool.cycle();
        self.trace.push(BusEvent {
            at,
            kind: BusKind::Write,
            addr: bus_addr,
            size,
            data: bus_value & size_mask(size),
        });

        if self.lookup(Side::Data, addr) {
            // Update the cached copy in place (big-endian byte lanes).
            let word_addr = addr & !3;
            let current = self.cached_word(Side::Data, word_addr);
            let shift = (3 - (addr as usize % 4) - (usize::from(size) - 1)) * 8;
            let mask = size_mask(size) << shift;
            let merged = (current & !mask) | ((bus_value & size_mask(size)) << shift);
            let spec = self.geometry(Side::Data);
            let (index, _) = self.index_and_tag(Side::Data, word_addr);
            let index = self.effective_index(Side::Data, index);
            let word = (word_addr as usize % spec.line_bytes) / 4;
            let net = self.data_net(Side::Data, index, word);
            self.pool.write(net, merged);
            if let Some(pnet) = self.parity_net(Side::Data, index) {
                // Regenerate the line parity. The untouched words come from
                // the array read-back; the merged word uses the value just
                // driven, so a stuck-at there still mismatches on the next
                // lookup instead of being silently folded into the parity.
                let words = spec.line_bytes / 4;
                let others = (0..words).filter(|&w| w != word).fold(0u32, |acc, w| {
                    acc ^ self.pool.read(self.data_net(Side::Data, index, w))
                });
                let (tag_net, valid_net) = self.tag_and_valid_nets(Side::Data, index);
                let tag = self.pool.read(tag_net);
                let valid = self.pool.read(valid_net);
                self.pool
                    .write(pnet, line_parity(tag, valid, others ^ merged));
            }
        }
    }
}

/// Even parity over a line's tag, valid bit and XORed data words.
fn line_parity(tag: u32, valid: u32, words_xor: u32) -> u32 {
    (tag ^ valid ^ words_xor).count_ones() & 1
}

fn size_mask(size: u8) -> u32 {
    match size {
        1 => 0xff,
        2 => 0xffff,
        _ => u32::MAX,
    }
}
