//! The complete net map of the modelled microcontroller.

use rtl_sim::{NetId, NetPool};
use sparc_isa::{Unit, NWINDOWS};
use sparc_iss::CacheSpec;

/// Handles to every net in the model, grouped by pipeline stage / unit.
///
/// All fields are public so fault-list builders, the campaign runner and
/// white-box tests can target specific nets; the model itself only mutates
/// them through the owning [`NetPool`].
#[derive(Debug, Clone)]
#[allow(missing_docs)] // the field names *are* the documentation (net paths)
pub struct NetMap {
    // ---- Fetch stage ----
    pub pc: NetId,
    pub npc: NetId,
    pub annul: NetId,
    pub fe_inst: NetId,

    // ---- Decode stage ----
    pub de_ir: NetId,
    pub de_rd: NetId,
    pub de_rs1: NetId,
    pub de_rs2: NetId,
    pub de_useimm: NetId,
    pub de_simm: NetId,
    pub de_cond: NetId,

    // ---- Register file (one net per physical register) ----
    pub rf: Vec<NetId>,
    pub ra_op1: NetId,
    pub ra_op2: NetId,
    pub ra_store_data: NetId,

    // ---- Execute: adder datapath ----
    pub add_a: NetId,
    pub add_b: NetId,
    pub add_res: NetId,

    // ---- Execute: logic datapath ----
    pub logic_a: NetId,
    pub logic_b: NetId,
    pub logic_res: NetId,

    // ---- Execute: shifter ----
    pub shift_a: NetId,
    pub shift_cnt: NetId,
    pub shift_res: NetId,

    // ---- Execute: multiply/divide ----
    pub md_a: NetId,
    pub md_b: NetId,
    pub md_res: NetId,
    pub md_y: NetId,

    // ---- Branch unit ----
    pub br_taken: NetId,
    pub br_target: NetId,

    // ---- Load/store unit ----
    pub lsu_addr: NetId,
    pub lsu_wdata: NetId,
    pub lsu_rdata: NetId,
    pub lsu_size: NetId,

    // ---- Special registers ----
    pub psr_icc: NetId,
    pub psr_cwp: NetId,
    pub psr_s: NetId,
    pub psr_ps: NetId,
    pub psr_et: NetId,
    pub psr_pil: NetId,
    pub wim: NetId,
    pub tbr: NetId,

    // ---- Exception stage ----
    pub xc_tt: NetId,

    // ---- Write-back stage ----
    pub wb_res: NetId,
    pub wb_rd: NetId,

    // ---- Instruction cache ----
    pub itag: Vec<NetId>,
    pub ivalid: Vec<NetId>,
    pub idata: Vec<NetId>,

    // ---- Data cache ----
    pub dtag: Vec<NetId>,
    pub dvalid: Vec<NetId>,
    pub ddata: Vec<NetId>,

    // ---- Cache/bus controller ----
    pub ic_hit: NetId,
    pub ic_index: NetId,
    pub dc_hit: NetId,
    pub dc_index: NetId,
    pub bus_addr: NetId,
    pub bus_data: NetId,

    // ---- Per-line cache parity (optional safety mechanism) ----
    // Declared after every other net so the NetId numbering of the base
    // model is identical with parity on or off; empty when disabled.
    pub iparity: Vec<NetId>,
    pub dparity: Vec<NetId>,
}

impl NetMap {
    /// Declare every net of the model in `pool`. `parity` additionally
    /// declares one parity bit per cache line (appended after all other
    /// nets, so existing ids are stable either way).
    pub fn declare(
        pool: &mut NetPool<Unit>,
        icache: CacheSpec,
        dcache: CacheSpec,
        parity: bool,
    ) -> NetMap {
        let rf = (0..8 + NWINDOWS * 16)
            .map(|i| pool.net(format!("iu.rf.r{i}"), 32, Unit::RegFile))
            .collect();
        let index_bits = |lines: usize| (lines.trailing_zeros()).max(1) as u8;
        let itag: Vec<NetId> = (0..icache.lines)
            .map(|i| pool.net(format!("cmem.ic.tag{i}"), 20, Unit::ICacheTag))
            .collect();
        let ivalid = (0..icache.lines)
            .map(|i| pool.net(format!("cmem.ic.valid{i}"), 1, Unit::ICacheTag))
            .collect();
        let idata = (0..icache.lines * (icache.line_bytes / 4))
            .map(|i| pool.net(format!("cmem.ic.data{i}"), 32, Unit::ICacheData))
            .collect();
        let dtag = (0..dcache.lines)
            .map(|i| pool.net(format!("cmem.dc.tag{i}"), 20, Unit::DCacheTag))
            .collect();
        let dvalid = (0..dcache.lines)
            .map(|i| pool.net(format!("cmem.dc.valid{i}"), 1, Unit::DCacheTag))
            .collect();
        let ddata = (0..dcache.lines * (dcache.line_bytes / 4))
            .map(|i| pool.net(format!("cmem.dc.data{i}"), 32, Unit::DCacheData))
            .collect();
        let mut map = NetMap {
            pc: pool.net("iu.fe.pc", 32, Unit::Fetch),
            npc: pool.net("iu.fe.npc", 32, Unit::Fetch),
            annul: pool.net("iu.fe.annul", 1, Unit::Fetch),
            fe_inst: pool.net("iu.fe.inst", 32, Unit::Fetch),
            de_ir: pool.net("iu.de.ir", 32, Unit::Decode),
            de_rd: pool.net("iu.de.rd", 5, Unit::Decode),
            de_rs1: pool.net("iu.de.rs1", 5, Unit::Decode),
            de_rs2: pool.net("iu.de.rs2", 5, Unit::Decode),
            de_useimm: pool.net("iu.de.useimm", 1, Unit::Decode),
            de_simm: pool.net("iu.de.simm", 13, Unit::Decode),
            de_cond: pool.net("iu.de.cond", 4, Unit::Decode),
            rf,
            ra_op1: pool.net("iu.ra.op1", 32, Unit::RegFile),
            ra_op2: pool.net("iu.ra.op2", 32, Unit::RegFile),
            ra_store_data: pool.net("iu.ra.store_data", 32, Unit::RegFile),
            add_a: pool.net("iu.ex.add_a", 32, Unit::AluAdd),
            add_b: pool.net("iu.ex.add_b", 32, Unit::AluAdd),
            add_res: pool.net("iu.ex.add_res", 32, Unit::AluAdd),
            logic_a: pool.net("iu.ex.logic_a", 32, Unit::AluLogic),
            logic_b: pool.net("iu.ex.logic_b", 32, Unit::AluLogic),
            logic_res: pool.net("iu.ex.logic_res", 32, Unit::AluLogic),
            shift_a: pool.net("iu.ex.shift_a", 32, Unit::Shift),
            shift_cnt: pool.net("iu.ex.shift_cnt", 5, Unit::Shift),
            shift_res: pool.net("iu.ex.shift_res", 32, Unit::Shift),
            md_a: pool.net("iu.ex.md_a", 32, Unit::MulDiv),
            md_b: pool.net("iu.ex.md_b", 32, Unit::MulDiv),
            md_res: pool.net("iu.ex.md_res", 32, Unit::MulDiv),
            md_y: pool.net("iu.ex.md_y", 32, Unit::MulDiv),
            br_taken: pool.net("iu.ex.br_taken", 1, Unit::BranchUnit),
            br_target: pool.net("iu.ex.br_target", 32, Unit::BranchUnit),
            lsu_addr: pool.net("iu.me.addr", 32, Unit::Lsu),
            lsu_wdata: pool.net("iu.me.wdata", 32, Unit::Lsu),
            lsu_rdata: pool.net("iu.me.rdata", 32, Unit::Lsu),
            lsu_size: pool.net("iu.me.size", 2, Unit::Lsu),
            psr_icc: pool.net("iu.sr.icc", 4, Unit::Special),
            psr_cwp: pool.net("iu.sr.cwp", 3, Unit::Special),
            psr_s: pool.net("iu.sr.s", 1, Unit::Special),
            psr_ps: pool.net("iu.sr.ps", 1, Unit::Special),
            psr_et: pool.net("iu.sr.et", 1, Unit::Special),
            psr_pil: pool.net("iu.sr.pil", 4, Unit::Special),
            wim: pool.net("iu.sr.wim", NWINDOWS as u8, Unit::Special),
            tbr: pool.net("iu.sr.tbr", 32, Unit::Special),
            xc_tt: pool.net("iu.xc.tt", 8, Unit::Except),
            wb_res: pool.net("iu.wb.res", 32, Unit::WriteBack),
            wb_rd: pool.net("iu.wb.rd", 5, Unit::WriteBack),
            itag,
            ivalid,
            idata,
            dtag,
            dvalid,
            ddata,
            ic_hit: pool.net("cmem.ic.hit", 1, Unit::CacheCtrl),
            ic_index: pool.net("cmem.ic.index", index_bits(icache.lines), Unit::CacheCtrl),
            dc_hit: pool.net("cmem.dc.hit", 1, Unit::CacheCtrl),
            dc_index: pool.net("cmem.dc.index", index_bits(dcache.lines), Unit::CacheCtrl),
            bus_addr: pool.net("cmem.bus.addr", 32, Unit::CacheCtrl),
            bus_data: pool.net("cmem.bus.data", 32, Unit::CacheCtrl),
            iparity: Vec::new(),
            dparity: Vec::new(),
        };
        if parity {
            map.iparity = (0..icache.lines)
                .map(|i| pool.net(format!("cmem.ic.parity{i}"), 1, Unit::ICacheTag))
                .collect();
            map.dparity = (0..dcache.lines)
                .map(|i| pool.net(format!("cmem.dc.parity{i}"), 1, Unit::DCacheTag))
                .collect();
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_expected_population() {
        let mut pool = NetPool::new();
        let map = NetMap::declare(
            &mut pool,
            CacheSpec::leon3_icache(),
            CacheSpec::leon3_dcache(),
            false,
        );
        assert_eq!(map.rf.len(), 8 + NWINDOWS * 16);
        assert_eq!(map.itag.len(), 128);
        assert_eq!(map.idata.len(), 128 * 8);
        assert_eq!(map.dtag.len(), 256);
        assert_eq!(map.ddata.len(), 256 * 4);
        // Every unit of the taxonomy is populated.
        for unit in Unit::ALL {
            let bits: usize = pool
                .iter()
                .filter(|(_, m)| m.tag == unit)
                .map(|(_, m)| usize::from(m.width))
                .sum();
            assert!(bits > 0, "unit {unit} has no injectable bits");
        }
    }

    #[test]
    fn iu_and_cmem_bit_populations_are_realistic() {
        let mut pool = NetPool::new();
        let _ = NetMap::declare(
            &mut pool,
            CacheSpec::leon3_icache(),
            CacheSpec::leon3_dcache(),
            false,
        );
        let iu_bits: usize = pool
            .iter()
            .filter(|(_, m)| m.tag.is_iu())
            .map(|(_, m)| usize::from(m.width))
            .sum();
        let cmem_bits: usize = pool
            .iter()
            .filter(|(_, m)| m.tag.is_cmem())
            .map(|(_, m)| usize::from(m.width))
            .sum();
        // Register file dominates the IU, data arrays dominate the CMEM —
        // the heterogeneity the paper's α_m weights exist to handle.
        assert!(iu_bits > 4000, "{iu_bits}");
        assert!(cmem_bits > 60_000, "{cmem_bits}");
    }

    #[test]
    fn parity_nets_append_without_renumbering() {
        let mut plain_pool = NetPool::new();
        let plain = NetMap::declare(
            &mut plain_pool,
            CacheSpec::leon3_icache(),
            CacheSpec::leon3_dcache(),
            false,
        );
        assert!(plain.iparity.is_empty());
        assert!(plain.dparity.is_empty());

        let mut parity_pool = NetPool::new();
        let with_parity = NetMap::declare(
            &mut parity_pool,
            CacheSpec::leon3_icache(),
            CacheSpec::leon3_dcache(),
            true,
        );
        assert_eq!(with_parity.iparity.len(), 128);
        assert_eq!(with_parity.dparity.len(), 256);
        // Every pre-existing net keeps its id: parity is purely appended.
        assert_eq!(plain.pc, with_parity.pc);
        assert_eq!(plain.rf, with_parity.rf);
        assert_eq!(plain.ddata, with_parity.ddata);
        assert_eq!(plain.bus_data, with_parity.bus_data);
        let plain_count = plain_pool.iter().count();
        for (id, _) in parity_pool.iter().skip(plain_count) {
            let is_parity = with_parity.iparity.contains(&id) || with_parity.dparity.contains(&id);
            assert!(is_parity, "appended net {id:?} must be a parity net");
        }
    }
}
