//! Cycle-accounted, signal-level model of a Leon3-like SPARC V8
//! microcontroller with injectable nets.
//!
//! This is the suite's stand-in for the paper's RTL Leon3 description: a
//! structural model in which **every architectural and micro-architectural
//! value flows through named nets** of an [`rtl_sim::NetPool`], so a
//! permanent fault injected on any net bit perturbs real execution of real
//! machine code — activation and propagation are emergent, not modelled.
//!
//! Like the paper's target, the model has two injection domains:
//!
//! * the **integer unit (IU)**: a 7-stage pipeline (fetch, decode, register
//!   access, execute, memory, exception, write-back) including the windowed
//!   register file, ALU adder/logic paths, barrel shifter, multiply/divide
//!   unit, branch unit and special registers;
//! * the **cache memory (CMEM)**: write-through, no-write-allocate,
//!   direct-mapped instruction and data caches (tag, valid and data arrays
//!   all made of nets) plus the bus controller.
//!
//! ## Modelling decisions (vs. the Gaisler VHDL)
//!
//! Instructions traverse all seven stages *sequentially*; pipeline overlap
//! is folded into per-instruction cycle accounting instead of being
//! simulated structurally. For the paper's **permanent** fault models this
//! is behaviour-preserving: the paper itself demonstrates (its Figure 5,
//! "temporal behaviour") that permanent-fault propagation is insensitive to
//! instruction timing/order, and the spatial routing of every value through
//! unit-specific nets — which *is* what determines propagation — is fully
//! modelled.
//!
//! Golden (fault-free) runs are bit-exact with the `sparc-iss` functional
//! emulator: both decode through [`sparc_isa`] and share its datapath
//! helpers, and a cross-crate lockstep test enforces equality of final
//! architectural state and off-core write streams.
//!
//! # Example
//!
//! ```
//! use leon3_model::{Leon3, Leon3Config};
//! use sparc_asm::assemble;
//! use sparc_iss::RunOutcome;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble("_start: mov 21, %o0\n add %o0, %o0, %o0\n halt\n")?;
//! let mut cpu = Leon3::new(Leon3Config::default());
//! cpu.load(&program);
//! assert_eq!(cpu.run(100), RunOutcome::Halted { code: 42 });
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod core;
mod execute;
pub mod graph;
mod nets;

pub use config::{cycles_to_us, Leon3Config, CLOCK_HZ};
pub use core::{Leon3, Snapshot};
pub use nets::NetMap;
