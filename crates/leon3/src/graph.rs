//! The model's declared net graph and its conformance check.
//!
//! [`declared_graph`] states, net by net, where values read from each net
//! can flow — the static connectivity the campaign's pruning and collapsing
//! rest on — plus three annotations the analyses consume:
//!
//! * **sinks**: the off-core bus nets (the lockstep comparison point and
//!   the write port every outcome classification watches) and the per-line
//!   parity nets (the cache safety compare points);
//! * **transient-safe latches**: nets every read of which is preceded, with
//!   no intervening clock tick, by a write in the same instruction's
//!   dataflow — a single transient flip on them is overwritten before it
//!   can ever be read;
//! * **pass-through pairs**: `fe_inst → de_ir` is a pure same-width copy
//!   with a single writer and reader on each side, so stuck-at and
//!   open-line faults on corresponding bits are equivalent.
//!
//! Declarations err on the generous side (operand cross-products, trap
//! entry absorbing any in-flight read): an extra declared edge only makes
//! the analyses *more* conservative, while a missing one could make
//! pruning unsound. Truthfulness is enforced the other way round by
//! [`conformance_missing_edges`]: it replays an instruction mix covering
//! every execution path under the pool's event trace, attributes each
//! write to the reads since the previous write, and reports observed edges
//! the declaration lacks. `repro netcheck --deny graph-mismatch` turns
//! that into a CI gate.

use crate::config::Leon3Config;
use crate::core::Leon3;
use rtl_sim::{NetGraph, NetId};
use sparc_asm::{assemble, Program};

fn bundle(g: &mut NetGraph, sources: &[NetId], targets: &[NetId]) {
    for &s in sources {
        for &t in targets {
            g.edge(s, t);
        }
    }
}

/// Build the declared driver→reader graph of `cpu`'s net population.
pub fn declared_graph(cpu: &Leon3) -> NetGraph {
    let n = cpu.nets();
    let mut g = NetGraph::new(cpu.pool().len());

    let de_fields = [
        n.de_ir,
        n.de_rd,
        n.de_rs1,
        n.de_rs2,
        n.de_useimm,
        n.de_simm,
        n.de_cond,
    ];
    let operands = [n.ra_op1, n.ra_op2];
    let alu_inputs = [
        n.add_a,
        n.add_b,
        n.logic_a,
        n.logic_b,
        n.shift_a,
        n.shift_cnt,
        n.md_a,
        n.md_b,
    ];
    let psr = [n.psr_icc, n.psr_cwp, n.psr_s, n.psr_ps, n.psr_et, n.psr_pil];
    let iu_scalars = [
        n.pc,
        n.npc,
        n.annul,
        n.fe_inst,
        n.de_ir,
        n.de_rd,
        n.de_rs1,
        n.de_rs2,
        n.de_useimm,
        n.de_simm,
        n.de_cond,
        n.ra_op1,
        n.ra_op2,
        n.ra_store_data,
        n.add_a,
        n.add_b,
        n.add_res,
        n.logic_a,
        n.logic_b,
        n.logic_res,
        n.shift_a,
        n.shift_cnt,
        n.shift_res,
        n.md_a,
        n.md_b,
        n.md_res,
        n.md_y,
        n.br_taken,
        n.br_target,
        n.lsu_addr,
        n.lsu_wdata,
        n.lsu_rdata,
        n.lsu_size,
        n.psr_icc,
        n.psr_cwp,
        n.psr_s,
        n.psr_ps,
        n.psr_et,
        n.psr_pil,
        n.wim,
        n.tbr,
        n.xc_tt,
        n.wb_res,
        n.wb_rd,
    ];

    // ---- Fetch / control flow ----
    bundle(&mut g, &[n.npc], &[n.pc]);
    bundle(
        &mut g,
        &[n.br_taken, n.br_target, n.pc, n.npc, n.de_cond, n.psr_icc],
        &[n.pc, n.npc, n.annul],
    );
    bundle(
        &mut g,
        &de_fields,
        &[n.br_taken, n.br_target, n.annul, n.pc, n.npc],
    );
    bundle(&mut g, &[n.psr_icc], &[n.br_taken]);
    bundle(&mut g, &[n.tbr, n.psr_et, n.add_res], &[n.pc, n.npc]);
    // A miss on the store path leaves the hit flag as the last read before
    // the next instruction's PC update.
    bundle(&mut g, &[n.dc_hit, n.ic_hit], &[n.pc, n.npc]);

    // ---- Decode ----
    bundle(&mut g, &[n.de_ir], &de_fields);
    // Ticc decodes its condition after the common fields.
    bundle(
        &mut g,
        &[n.de_rd, n.de_rs1, n.de_rs2, n.de_useimm, n.de_simm],
        &[n.de_cond],
    );
    // The opcode also selects the memory-access size.
    bundle(&mut g, &[n.de_ir], &[n.lsu_size]);

    // ---- Register access (operand buses) ----
    let operand_targets = [n.ra_op1, n.ra_op2, n.ra_store_data];
    bundle(&mut g, &de_fields, &operand_targets);
    bundle(
        &mut g,
        &[n.psr_cwp, n.psr_icc, n.psr_et, n.psr_ps, n.wim, n.md_y],
        &operand_targets,
    );
    for &slot in &n.rf {
        bundle(&mut g, &[slot], &operand_targets);
        bundle(&mut g, &[slot], &[n.lsu_wdata]);
    }

    // ---- Execute: ALU input latches and results ----
    bundle(&mut g, &operands, &alu_inputs);
    bundle(&mut g, &de_fields, &[n.logic_a]); // sethi immediate path
    bundle(&mut g, &[n.add_a, n.add_b, n.psr_icc], &[n.add_res]);
    bundle(&mut g, &[n.logic_a, n.logic_b], &[n.logic_res]);
    bundle(&mut g, &[n.shift_a, n.shift_cnt], &[n.shift_res]);
    bundle(
        &mut g,
        &[n.md_a, n.md_b, n.md_y, n.psr_icc, n.md_res],
        &[n.md_res, n.md_y],
    );
    // Condition codes out of each datapath.
    bundle(
        &mut g,
        &[
            n.add_a,
            n.add_b,
            n.add_res,
            n.logic_res,
            n.md_res,
            n.md_a,
            n.md_b,
            n.md_y,
        ],
        &[n.psr_icc],
    );
    // Special-register writes (WrY/WrPsr/WrWim/WrTbr) off the operand bus.
    bundle(
        &mut g,
        &operands,
        &[
            n.md_y, n.wim, n.tbr, n.psr_icc, n.psr_cwp, n.psr_s, n.psr_ps, n.psr_et, n.psr_pil,
        ],
    );
    bundle(&mut g, &[n.tbr], &[n.tbr]);

    // ---- Branch / jump / window ----
    bundle(&mut g, &[n.br_taken, n.pc], &[n.br_target]);
    bundle(&mut g, &[n.add_res], &[n.br_target]); // jmpl/rett target
    bundle(&mut g, &[n.add_res, n.wim], &[n.psr_cwp]); // save/restore/rett
    bundle(&mut g, &[n.psr_ps], &[n.psr_s]); // rett
    bundle(&mut g, &[n.psr_s], &[n.psr_ps]); // trap entry

    // ---- Memory stage ----
    bundle(&mut g, &[n.add_res], &[n.lsu_addr]);
    bundle(&mut g, &[n.lsu_addr], &[n.lsu_size]);
    bundle(
        &mut g,
        &[n.lsu_size],
        &[n.dc_index, n.ra_store_data, n.bus_addr, n.bus_data],
    );
    bundle(&mut g, &[n.ra_store_data, n.lsu_rdata], &[n.lsu_wdata]);
    bundle(&mut g, &[n.psr_cwp], &[n.lsu_wdata]);
    bundle(
        &mut g,
        &[n.lsu_addr, n.lsu_wdata, n.lsu_rdata],
        &[n.bus_addr, n.bus_data],
    );
    bundle(&mut g, &[n.bus_data], &[n.lsu_rdata]); // timer MMIO read

    // ---- Write-back ----
    bundle(
        &mut g,
        &[
            n.add_res,
            n.logic_res,
            n.shift_res,
            n.md_res,
            n.lsu_rdata,
            n.md_y,
            n.wim,
            n.tbr,
            n.pc,
            n.br_target,
        ],
        &[n.wb_res],
    );
    bundle(&mut g, &psr, &[n.wb_res]); // rd %psr
    bundle(&mut g, &de_fields, &[n.wb_res, n.wb_rd]);
    // A write-back to %g0 skips the register file, leaving the result bus
    // as the last read before the next PC / condition-code update.
    bundle(&mut g, &[n.wb_res, n.wb_rd], &[n.pc, n.npc, n.psr_icc]);
    for &slot in &n.rf {
        bundle(&mut g, &[n.wb_res, n.wb_rd, n.psr_cwp], &[slot]);
        bundle(&mut g, &[n.pc, n.npc], &[slot]); // trap entry saves pc/npc
    }

    // ---- Trap entry ----
    // The first trap-entry write absorbs whatever read was in flight when
    // the exception was raised, so every scalar feeds it.
    bundle(&mut g, &iu_scalars, &[n.psr_et]);
    bundle(
        &mut g,
        &[
            n.ic_hit, n.ic_index, n.dc_hit, n.dc_index, n.bus_addr, n.bus_data,
        ],
        &[n.psr_et],
    );
    bundle(
        &mut g,
        &[
            n.de_ir, n.de_cond, n.lsu_addr, n.lsu_size, n.add_res, n.wim, n.psr_cwp, n.psr_et,
        ],
        &[n.xc_tt],
    );
    bundle(&mut g, &[n.xc_tt], &[n.tbr]);

    // ---- Instruction cache ----
    let iwords = if n.itag.is_empty() {
        0
    } else {
        n.idata.len() / n.itag.len()
    };
    bundle(
        &mut g,
        &[n.pc, n.annul, n.psr_et, n.psr_pil, n.ic_hit],
        &[n.ic_index],
    );
    bundle(&mut g, &[n.pc, n.ic_index], &[n.ic_hit]);
    for (i, (&tag, &valid)) in n.itag.iter().zip(&n.ivalid).enumerate() {
        bundle(&mut g, &[tag, valid], &[n.ic_hit]);
        let line = &n.idata[i * iwords..(i + 1) * iwords];
        bundle(&mut g, line, &[n.ic_hit, n.fe_inst]);
        if let Some(&pnet) = n.iparity.get(i) {
            g.edge(pnet, n.ic_hit);
            bundle(&mut g, &[tag, valid], &[pnet]);
            bundle(&mut g, line, &[pnet]);
            bundle(&mut g, &[n.bus_data, n.pc], &[pnet]);
        }
        bundle(&mut g, &[n.bus_data], line);
        bundle(&mut g, &[n.pc], &[tag, valid]);
    }
    bundle(&mut g, &[n.ic_index, n.ic_hit], &[n.bus_addr]);
    bundle(&mut g, &[n.bus_addr], &[n.bus_data]);
    bundle(&mut g, &[n.ic_index], &[n.fe_inst]);
    g.pass_through(n.fe_inst, n.de_ir);

    // ---- Data cache ----
    let dwords = if n.dtag.is_empty() {
        0
    } else {
        n.ddata.len() / n.dtag.len()
    };
    bundle(
        &mut g,
        &[n.lsu_addr, n.lsu_size, n.bus_addr, n.bus_data, n.dc_hit],
        &[n.dc_index],
    );
    bundle(&mut g, &[n.lsu_addr, n.dc_index], &[n.dc_hit]);
    for (i, (&tag, &valid)) in n.dtag.iter().zip(&n.dvalid).enumerate() {
        bundle(&mut g, &[tag, valid], &[n.dc_hit]);
        let line = &n.ddata[i * dwords..(i + 1) * dwords];
        bundle(&mut g, line, &[n.dc_hit, n.lsu_rdata, n.dc_index]);
        if let Some(&pnet) = n.dparity.get(i) {
            g.edge(pnet, n.dc_hit);
            bundle(&mut g, &[tag, valid], &[pnet]);
            bundle(&mut g, line, &[pnet]);
            bundle(&mut g, &[n.bus_data, n.lsu_addr], &[pnet]);
        }
        bundle(&mut g, &[n.bus_data, n.dc_index], line);
        bundle(&mut g, &[n.lsu_addr], &[tag, valid]);
    }
    bundle(&mut g, &[n.dc_index, n.dc_hit], &[n.bus_addr]);
    bundle(&mut g, &[n.dc_index, n.dc_hit], &[n.lsu_rdata]);

    // ---- Sinks: the off-core write port and the safety compare points ----
    g.sink(n.bus_addr);
    g.sink(n.bus_data);
    for &pnet in n.iparity.iter().chain(&n.dparity) {
        g.sink(pnet);
    }

    // ---- Transient-safe latches ----
    // Each of these is fully written immediately before every read, with no
    // clock tick in between (verified against the execute/cache paths by
    // the campaign's audit mode and the collapsing property tests).
    for net in [
        n.fe_inst,
        n.de_ir,
        n.de_rd,
        n.de_rs1,
        n.de_rs2,
        n.de_useimm,
        n.de_simm,
        n.de_cond,
        n.ra_op1,
        n.ra_op2,
        n.ra_store_data,
        n.add_a,
        n.add_b,
        n.add_res,
        n.logic_a,
        n.logic_b,
        n.logic_res,
        n.shift_a,
        n.shift_cnt,
        n.shift_res,
        n.md_a,
        n.md_b,
        n.md_res,
        n.br_taken,
        n.br_target,
        n.lsu_addr,
        n.lsu_wdata,
        n.lsu_rdata,
        n.lsu_size,
        n.xc_tt,
        n.wb_res,
        n.wb_rd,
        n.ic_hit,
        n.ic_index,
        n.dc_hit,
        n.dc_index,
        n.bus_addr,
        n.bus_data,
    ] {
        g.transient_safe(net);
    }

    g
}

/// The conformance mix: every execution path the model has — all ALU
/// classes, every load/store flavour, taken/untaken/annulled branches,
/// call/jmpl, register windows, special registers, an untaken Ticc and a
/// final trap (which, with no handler installed, double-traps into error
/// mode — exercising trap entry twice).
///
/// # Panics
///
/// Panics if the embedded source fails to assemble (a bug, not a runtime
/// condition).
pub fn conformance_mix() -> Program {
    assemble(
        r#"
        _start:
            set 0x40002000, %l0
            sethi %hi(0x12345400), %l1
            or %l1, %lo(0x12345678), %l1
            add %l1, 5, %l2
            addcc %l2, %l2, %l3
            addx %l3, 1, %l3
            addxcc %l3, %l1, %l3
            subcc %l3, %l2, %l4
            subx %l4, 1, %l4
            subxcc %l4, %l1, %l4
            taddcc %l2, 4, %l5
            tsubcc %l5, 4, %l5
            and %l1, %l2, %o0
            andncc %o0, %l3, %o1
            orcc %o1, 1, %o1
            orn %o1, %l4, %o2
            xorcc %o2, %l1, %o3
            xnor %o3, %o1, %o3
            sll %o3, 3, %o4
            srl %o4, %o1, %o5
            sra %o5, 2, %o5
            wr %g0, %g0, %y
            umul %l2, %l3, %o0
            rd %y, %o1
            smulcc %o2, %o3, %o0
            wr %g0, %g0, %y
            udivcc %l3, 7, %o0
            sdiv %l4, 5, %o1
            mulscc %o0, %o1, %o2
            ! -- memory: every size, both directions --
            st %l1, [%l0]
            ld [%l0], %o0
            stb %l2, [%l0 + 4]
            ldub [%l0 + 4], %o1
            ldsb [%l0 + 4], %o2
            sth %l3, [%l0 + 6]
            lduh [%l0 + 6], %o3
            ldsh [%l0 + 6], %o4
            std %l2, [%l0 + 8]
            ldd [%l0 + 8], %o2
            swap [%l0], %o0
            ldstub [%l0 + 4], %o1
            ! -- control flow --
            cmp %o1, 0
            be,a skipped       ! annulled when taken
             nop
        skipped:
            bne not_taken      ! z=1: falls through, annuls delay slot
             nop
        not_taken:
            subcc %g0, 1, %g0
            bne taken
             nop
            unimp
        taken:
            call subroutine
             nop
            save %sp, -96, %sp
            restore %g0, %g0, %g0
            ! -- special registers --
            rd %psr, %o0
            wr %o0, %g0, %psr
            rd %wim, %o1
            wr %g0, %g0, %wim
            rd %tbr, %o2
            wr %o2, %g0, %tbr
            tn 3               ! untaken trap
            flush %l0
            unimp              ! trap -> vector 0 -> double trap -> error mode
        subroutine:
            jmpl %o7 + 8, %g0
             nop
        "#,
    )
    .expect("conformance mix assembles")
}

/// Run the conformance mix on a fresh model under the event trace and
/// return every observed driver→reader edge the declared graph lacks, as
/// `(driver, reader)` net-name pairs. Empty means the declaration covers
/// the model's real access order.
pub fn conformance_missing_edges(config: Leon3Config) -> Vec<(String, String)> {
    let mut cpu = Leon3::new(config);
    cpu.load(&conformance_mix());
    cpu.enable_event_trace();
    let _ = cpu.run(10_000);
    let events = cpu.take_net_events();
    let graph = declared_graph(&cpu);
    graph
        .missing_edges(&events)
        .into_iter()
        .map(|(from, to)| {
            (
                cpu.pool().meta(from).name.clone(),
                cpu.pool().meta(to).name.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_graph_matches_observed_access_order() {
        let missing = conformance_missing_edges(Leon3Config::default());
        assert!(missing.is_empty(), "undeclared dataflow: {missing:?}");
    }

    #[test]
    fn declared_graph_matches_observed_access_order_with_parity() {
        let config = Leon3Config {
            cmem_parity: true,
            ..Leon3Config::default()
        };
        let missing = conformance_missing_edges(config);
        assert!(missing.is_empty(), "undeclared dataflow: {missing:?}");
    }

    #[test]
    fn no_dead_or_unobservable_nets() {
        let cpu = Leon3::new(Leon3Config::default());
        let g = declared_graph(&cpu);
        let names = |ids: Vec<NetId>| -> Vec<String> {
            ids.into_iter()
                .map(|id| cpu.pool().meta(id).name.clone())
                .collect()
        };
        assert_eq!(names(g.dead_nets()), Vec::<String>::new());
        assert_eq!(names(g.unobservable_nets()), Vec::<String>::new());
    }

    #[test]
    fn fetch_to_decode_is_the_only_equivalence_class() {
        let cpu = Leon3::new(Leon3Config::default());
        let g = declared_graph(&cpu);
        let classes = g.equivalence_classes();
        assert_eq!(
            classes,
            vec![vec![cpu.nets().fe_inst, cpu.nets().de_ir]],
            "exactly the fetch->decode pass-through"
        );
        assert_eq!(g.class_root(cpu.nets().de_ir), cpu.nets().fe_inst);
    }

    #[test]
    fn state_nets_are_not_transient_safe() {
        let cpu = Leon3::new(Leon3Config::default());
        let g = declared_graph(&cpu);
        let n = cpu.nets();
        for state in [
            n.pc, n.npc, n.annul, n.md_y, n.psr_icc, n.wim, n.tbr, n.rf[9],
        ] {
            assert!(!g.is_transient_safe(state));
        }
        for latch in [n.fe_inst, n.add_a, n.lsu_wdata, n.wb_res] {
            assert!(g.is_transient_safe(latch));
        }
        for array in [n.itag[0], n.idata[0], n.dtag[0], n.ddata[0]] {
            assert!(!g.is_transient_safe(array));
        }
    }

    #[test]
    fn parity_nets_are_sinks_when_configured() {
        let config = Leon3Config {
            cmem_parity: true,
            ..Leon3Config::default()
        };
        let cpu = Leon3::new(config);
        let g = declared_graph(&cpu);
        let n = cpu.nets();
        assert!(g.is_sink(n.bus_addr) && g.is_sink(n.bus_data));
        assert!(g.is_sink(n.iparity[0]) && g.is_sink(n.dparity[17]));
        assert!(!g.is_sink(n.pc));
        assert_eq!(g.sink_count(), 2 + n.iparity.len() + n.dparity.len());
    }
}
