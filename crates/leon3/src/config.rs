//! Platform configuration of the modelled microcontroller.

use sparc_iss::CacheSpec;

/// The modelled core clock (a typical automotive Leon3 operating point);
/// used to convert propagation-latency cycles into the microseconds of the
/// paper's Figure 4(b).
pub const CLOCK_HZ: u64 = 80_000_000;

/// Configuration of the RTL model.
///
/// The cache geometries default to the same values as
/// [`sparc_iss::IssConfig`] so hit/miss statistics are comparable across
/// the two simulation levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Leon3Config {
    /// RAM window base address.
    pub ram_base: u32,
    /// RAM window size in bytes.
    pub ram_size: u32,
    /// Record off-core reads in the bus trace (writes are always recorded).
    pub trace_reads: bool,
    /// Instruction-cache geometry.
    pub icache: CacheSpec,
    /// Data-cache geometry.
    pub dcache: CacheSpec,
    /// Re-evaluate every net on every clock cycle, as an event-driven RTL
    /// simulator evaluates its processes. Semantically identical to the
    /// fast mode (asserted by tests) but pays the realistic per-cycle
    /// evaluation cost — used by the simulation-time experiment.
    pub faithful_clocking: bool,
    /// Enable the memory-mapped countdown timer (shared implementation
    /// with the ISS, see [`sparc_iss::Timer`]); off by default.
    pub timer: bool,
    /// Model per-line parity bits on both cache memories. Parity nets are
    /// declared *after* every other net so enabling them never renumbers
    /// existing [`rtl_sim::NetId`]s; the bits are themselves injectable
    /// fault sites. Off by default.
    pub cmem_parity: bool,
}

impl Default for Leon3Config {
    fn default() -> Self {
        Leon3Config {
            ram_base: 0x4000_0000,
            ram_size: 4 << 20,
            trace_reads: false,
            icache: CacheSpec::leon3_icache(),
            dcache: CacheSpec::leon3_dcache(),
            faithful_clocking: false,
            timer: false,
            cmem_parity: false,
        }
    }
}

/// Convert a cycle count to microseconds at [`CLOCK_HZ`].
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 * 1e6 / CLOCK_HZ as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_iss_geometry() {
        let cfg = Leon3Config::default();
        assert_eq!(cfg.icache, CacheSpec::leon3_icache());
        assert_eq!(cfg.dcache, CacheSpec::leon3_dcache());
    }

    #[test]
    fn cycle_conversion() {
        assert!((cycles_to_us(80) - 1.0).abs() < 1e-9);
        assert!((cycles_to_us(8_000_000) - 100_000.0).abs() < 1e-6);
    }
}
