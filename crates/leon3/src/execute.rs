//! Register-access, execute, memory and write-back stages.
//!
//! Every operand and result is routed through the nets of the functional
//! unit that processes it, which is what makes the paper's *spatial
//! utilization* story emergent: an instruction can only activate faults in
//! units its dataflow traverses.

use crate::core::Leon3;
use sparc_isa::{Cond, Icc, Instr, OpClass, Opcode, Operand2, Psr, Reg, TrapType, NWINDOWS};
use sparc_iss::{add_with_flags, addx_with_flags, sub_with_flags, subx_with_flags};

/// How execution of one instruction ended.
pub(crate) enum Flow {
    Advance,
    Jumped,
    Halt(u32),
}

type ExecResult = Result<Flow, TrapType>;

fn tag_overflow(a: u32, b: u32) -> bool {
    (a | b) & 0b11 != 0
}

impl Leon3 {
    /// Effective decoded fields, re-read from the decode-stage nets so
    /// decode faults take effect downstream.
    fn effective_fields(&mut self, instr: &Instr) -> (Reg, Reg, Operand2) {
        self.pool.write(self.nets.de_rd, instr.rd.index() as u32);
        self.pool.write(self.nets.de_rs1, instr.rs1.index() as u32);
        match instr.op2 {
            Operand2::Reg(rs2) => {
                self.pool.write(self.nets.de_useimm, 0);
                self.pool.write(self.nets.de_rs2, rs2.index() as u32);
            }
            Operand2::Imm(imm) => {
                self.pool.write(self.nets.de_useimm, 1);
                self.pool.write(self.nets.de_simm, (imm as u32) & 0x1fff);
            }
        }
        let rd = Reg::new((self.pool.read(self.nets.de_rd) & 31) as u8);
        let rs1 = Reg::new((self.pool.read(self.nets.de_rs1) & 31) as u8);
        let op2 = if self.pool.read(self.nets.de_useimm) == 1 {
            let raw = self.pool.read(self.nets.de_simm);
            // Sign-extend the 13-bit field.
            Operand2::Imm(((raw << 19) as i32) >> 19)
        } else {
            Operand2::Reg(Reg::new((self.pool.read(self.nets.de_rs2) & 31) as u8))
        };
        (rd, rs1, op2)
    }

    /// Register-access stage: operands through the read-port nets.
    fn read_operands(&mut self, rs1: Reg, op2: Operand2) -> (u32, u32) {
        let a = self.rf_read(rs1);
        self.pool.write(self.nets.ra_op1, a);
        let b = match op2 {
            Operand2::Reg(rs2) => self.rf_read(rs2),
            Operand2::Imm(imm) => imm as u32,
        };
        self.pool.write(self.nets.ra_op2, b);
        (
            self.pool.read(self.nets.ra_op1),
            self.pool.read(self.nets.ra_op2),
        )
    }

    /// Address generation through the adder datapath (loads, stores, jmpl,
    /// ticc trap numbers all use the IU adder).
    fn adder(&mut self, a: u32, b: u32) -> u32 {
        self.pool.write(self.nets.add_a, a);
        self.pool.write(self.nets.add_b, b);
        let a = self.pool.read(self.nets.add_a);
        let b = self.pool.read(self.nets.add_b);
        self.pool.write(self.nets.add_res, a.wrapping_add(b));
        self.pool.read(self.nets.add_res)
    }

    pub(crate) fn exec(&mut self, instr: &Instr) -> ExecResult {
        let (rd, rs1, op2) = self.effective_fields(instr);
        match instr.op.class() {
            OpClass::Arith => self.exec_arith(instr.op, rd, rs1, op2),
            OpClass::Logic => self.exec_logic(instr.op, rd, rs1, op2),
            OpClass::Shift => self.exec_shift(instr.op, rd, rs1, op2),
            OpClass::Mul | OpClass::Div => self.exec_muldiv(instr.op, rd, rs1, op2),
            OpClass::Load | OpClass::Store | OpClass::Atomic => {
                self.exec_mem(instr.op, rd, rs1, op2)
            }
            OpClass::Sethi => {
                // The immediate path shares the logic-unit datapath.
                self.pool.write(self.nets.logic_a, instr.imm22);
                let imm = self.pool.read(self.nets.logic_a);
                self.pool.write(self.nets.logic_res, imm << 10);
                let res = self.pool.read(self.nets.logic_res);
                self.writeback(rd, res);
                Ok(Flow::Advance)
            }
            OpClass::Branch => self.exec_branch(instr),
            OpClass::Jump => self.exec_jump(instr, rd, rs1, op2),
            OpClass::Window => self.exec_window(instr.op, rd, rs1, op2),
            OpClass::Special => self.exec_special(instr.op, rd, rs1, op2),
            OpClass::Trap => self.exec_ticc(instr, rs1, op2),
            OpClass::Misc => match instr.op {
                Opcode::Flush => Ok(Flow::Advance),
                _ => Err(TrapType::IllegalInstruction),
            },
        }
    }

    fn exec_arith(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        let (a, b) = self.read_operands(rs1, op2);
        self.pool.write(self.nets.add_a, a);
        self.pool.write(self.nets.add_b, b);
        let a = self.pool.read(self.nets.add_a);
        let b = self.pool.read(self.nets.add_b);
        let icc_in = self.icc();
        let (result, icc) = match op {
            Opcode::Add => (a.wrapping_add(b), None),
            Opcode::Addcc => {
                let (r, v, c) = add_with_flags(a, b);
                (r, Some(Icc::from_result(r, v, c)))
            }
            Opcode::Addx => (a.wrapping_add(b).wrapping_add(u32::from(icc_in.c)), None),
            Opcode::Addxcc => {
                let (r, v, c) = addx_with_flags(a, b, icc_in.c);
                (r, Some(Icc::from_result(r, v, c)))
            }
            Opcode::Sub => (a.wrapping_sub(b), None),
            Opcode::Subcc => {
                let (r, v, c) = sub_with_flags(a, b);
                (r, Some(Icc::from_result(r, v, c)))
            }
            Opcode::Subx => (a.wrapping_sub(b).wrapping_sub(u32::from(icc_in.c)), None),
            Opcode::Subxcc => {
                let (r, v, c) = subx_with_flags(a, b, icc_in.c);
                (r, Some(Icc::from_result(r, v, c)))
            }
            Opcode::Taddcc | Opcode::TaddccTv => {
                let (r, v, c) = add_with_flags(a, b);
                let v = v || tag_overflow(a, b);
                if op == Opcode::TaddccTv && v {
                    return Err(TrapType::TagOverflow);
                }
                (r, Some(Icc::from_result(r, v, c)))
            }
            Opcode::Tsubcc | Opcode::TsubccTv => {
                let (r, v, c) = sub_with_flags(a, b);
                let v = v || tag_overflow(a, b);
                if op == Opcode::TsubccTv && v {
                    return Err(TrapType::TagOverflow);
                }
                (r, Some(Icc::from_result(r, v, c)))
            }
            other => unreachable!("non-arith opcode {other:?}"),
        };
        self.pool.write(self.nets.add_res, result);
        let result = self.pool.read(self.nets.add_res);
        self.writeback(rd, result);
        if let Some(icc) = icc {
            self.set_icc(icc);
        }
        Ok(Flow::Advance)
    }

    fn exec_logic(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        let (a, b) = self.read_operands(rs1, op2);
        self.pool.write(self.nets.logic_a, a);
        self.pool.write(self.nets.logic_b, b);
        let a = self.pool.read(self.nets.logic_a);
        let b = self.pool.read(self.nets.logic_b);
        let result = match op {
            Opcode::And | Opcode::Andcc => a & b,
            Opcode::Andn | Opcode::Andncc => a & !b,
            Opcode::Or | Opcode::Orcc => a | b,
            Opcode::Orn | Opcode::Orncc => a | !b,
            Opcode::Xor | Opcode::Xorcc => a ^ b,
            Opcode::Xnor | Opcode::Xnorcc => !(a ^ b),
            other => unreachable!("non-logic opcode {other:?}"),
        };
        self.pool.write(self.nets.logic_res, result);
        let result = self.pool.read(self.nets.logic_res);
        self.writeback(rd, result);
        if op.sets_icc() {
            self.set_icc(Icc::from_logic(result));
        }
        Ok(Flow::Advance)
    }

    fn exec_shift(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        let (a, b) = self.read_operands(rs1, op2);
        self.pool.write(self.nets.shift_a, a);
        self.pool.write(self.nets.shift_cnt, b & 31);
        let a = self.pool.read(self.nets.shift_a);
        let count = self.pool.read(self.nets.shift_cnt);
        let result = match op {
            Opcode::Sll => a << count,
            Opcode::Srl => a >> count,
            Opcode::Sra => ((a as i32) >> count) as u32,
            other => unreachable!("non-shift opcode {other:?}"),
        };
        self.pool.write(self.nets.shift_res, result);
        let result = self.pool.read(self.nets.shift_res);
        self.writeback(rd, result);
        Ok(Flow::Advance)
    }

    fn exec_muldiv(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        let (a, b) = self.read_operands(rs1, op2);
        self.pool.write(self.nets.md_a, a);
        self.pool.write(self.nets.md_b, b);
        let a = self.pool.read(self.nets.md_a);
        let b = self.pool.read(self.nets.md_b);
        let icc_in = self.icc();
        let y_in = self.pool.read(self.nets.md_y);
        let (result, y_out, icc) = match op {
            Opcode::Umul | Opcode::Umulcc => {
                let product = u64::from(a) * u64::from(b);
                let r = product as u32;
                let icc = (op == Opcode::Umulcc).then(|| Icc::from_logic(r));
                (r, Some((product >> 32) as u32), icc)
            }
            Opcode::Smul | Opcode::Smulcc => {
                let product = i64::from(a as i32) * i64::from(b as i32);
                let r = product as u32;
                let icc = (op == Opcode::Smulcc).then(|| Icc::from_logic(r));
                (r, Some(((product as u64) >> 32) as u32), icc)
            }
            Opcode::Udiv | Opcode::Udivcc => {
                if b == 0 {
                    return Err(TrapType::DivisionByZero);
                }
                let dividend = (u64::from(y_in) << 32) | u64::from(a);
                let quotient = dividend / u64::from(b);
                let (r, overflow) = if quotient > u64::from(u32::MAX) {
                    (u32::MAX, true)
                } else {
                    (quotient as u32, false)
                };
                let icc = (op == Opcode::Udivcc).then(|| Icc::from_result(r, overflow, false));
                (r, None, icc)
            }
            Opcode::Sdiv | Opcode::Sdivcc => {
                if b == 0 {
                    return Err(TrapType::DivisionByZero);
                }
                let dividend = (((u64::from(y_in) << 32) | u64::from(a)) as i64) as i128;
                let divisor = i128::from(b as i32);
                let quotient = dividend / divisor;
                let (r, overflow) = if quotient > i128::from(i32::MAX) {
                    (i32::MAX as u32, true)
                } else if quotient < i128::from(i32::MIN) {
                    (i32::MIN as u32, true)
                } else {
                    (quotient as u32, false)
                };
                let icc = (op == Opcode::Sdivcc).then(|| Icc::from_result(r, overflow, false));
                (r, None, icc)
            }
            Opcode::Mulscc => {
                let shifted = (u32::from(icc_in.n ^ icc_in.v) << 31) | (a >> 1);
                let addend = if y_in & 1 == 1 { b } else { 0 };
                let (r, v, c) = add_with_flags(shifted, addend);
                (
                    r,
                    Some(((a & 1) << 31) | (y_in >> 1)),
                    Some(Icc::from_result(r, v, c)),
                )
            }
            other => unreachable!("non-muldiv opcode {other:?}"),
        };
        self.pool.write(self.nets.md_res, result);
        let result = self.pool.read(self.nets.md_res);
        if let Some(y) = y_out {
            self.pool.write(self.nets.md_y, y);
        }
        self.writeback(rd, result);
        if let Some(icc) = icc {
            self.set_icc(icc);
        }
        Ok(Flow::Advance)
    }

    fn exec_mem(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        let (a, b) = self.read_operands(rs1, op2);
        let addr = self.adder(a, b);
        self.pool.write(self.nets.lsu_addr, addr);
        let addr = self.pool.read(self.nets.lsu_addr);
        // The timer's register window is uncached, word-access-only MMIO.
        if self.config.timer && sparc_iss::Timer::owns(addr) {
            return self.exec_timer(op, rd, addr);
        }
        let size: u8 = match op {
            Opcode::Ldub | Opcode::Ldsb | Opcode::Stb | Opcode::Ldstub => 1,
            Opcode::Lduh | Opcode::Ldsh | Opcode::Sth => 2,
            _ => 4,
        };
        self.pool.write(self.nets.lsu_size, size.trailing_zeros());
        // The effective size comes back off the net, so size-net faults
        // misalign accesses and truncate stores (netcheck found the net
        // write-only before this read existed).
        let size: u8 = 1 << (self.pool.read(self.nets.lsu_size) & 3);
        // Alignment and range checks (exception stage).
        let align = if matches!(op, Opcode::Ldd | Opcode::Std) {
            8
        } else {
            u32::from(size)
        };
        if !addr.is_multiple_of(align) {
            return Err(TrapType::MemAddressNotAligned);
        }
        let extent = if matches!(op, Opcode::Ldd | Opcode::Std) {
            8
        } else {
            u32::from(size)
        };
        if !self.mem.in_range(addr, extent) {
            return Err(TrapType::DataAccess);
        }
        match op {
            Opcode::Ld => {
                let value = self.load_sized(addr, 4, false);
                self.writeback(rd, value);
            }
            Opcode::Ldub => {
                let value = self.load_sized(addr, 1, false);
                self.writeback(rd, value);
            }
            Opcode::Ldsb => {
                let value = self.load_sized(addr, 1, true);
                self.writeback(rd, value);
            }
            Opcode::Lduh => {
                let value = self.load_sized(addr, 2, false);
                self.writeback(rd, value);
            }
            Opcode::Ldsh => {
                let value = self.load_sized(addr, 2, true);
                self.writeback(rd, value);
            }
            Opcode::Ldd => {
                let lo = Reg::new((rd.index() & !1) as u8);
                let hi = Reg::new((rd.index() | 1) as u8);
                let first = self.load_sized(addr, 4, false);
                self.writeback(lo, first);
                let second = self.load_sized(addr + 4, 4, false);
                self.writeback(hi, second);
            }
            Opcode::St | Opcode::Stb | Opcode::Sth => {
                let data = self.rf_read(rd);
                self.pool.write(self.nets.ra_store_data, data);
                self.pool
                    .write(self.nets.lsu_wdata, self.pool.read(self.nets.ra_store_data));
                let data = self.pool.read(self.nets.lsu_wdata);
                self.dcache_store(addr, size, data & size_mask(size));
            }
            Opcode::Std => {
                let lo = Reg::new((rd.index() & !1) as u8);
                let hi = Reg::new((rd.index() | 1) as u8);
                for (i, reg) in [lo, hi].into_iter().enumerate() {
                    let data = self.rf_read(reg);
                    self.pool.write(self.nets.ra_store_data, data);
                    self.pool
                        .write(self.nets.lsu_wdata, self.pool.read(self.nets.ra_store_data));
                    let data = self.pool.read(self.nets.lsu_wdata);
                    self.dcache_store(addr + 4 * i as u32, 4, data);
                }
            }
            Opcode::Ldstub => {
                let old = self.load_sized(addr, 1, false);
                self.dcache_store(addr, 1, 0xff);
                self.writeback(rd, old);
            }
            Opcode::Swap => {
                let old = self.load_sized(addr, 4, false);
                let new = self.rf_read(rd);
                self.pool.write(self.nets.lsu_wdata, new);
                let new = self.pool.read(self.nets.lsu_wdata);
                self.dcache_store(addr, 4, new);
                self.writeback(rd, old);
            }
            other => unreachable!("non-memory opcode {other:?}"),
        }
        Ok(Flow::Advance)
    }

    /// Word-only MMIO access to the timer's register window (uncached:
    /// straight to the bus nets, no cache lookup).
    fn exec_timer(&mut self, op: Opcode, rd: Reg, addr: u32) -> ExecResult {
        if !addr.is_multiple_of(4) {
            return Err(TrapType::MemAddressNotAligned);
        }
        let offset = addr - sparc_iss::TIMER_BASE;
        match op {
            Opcode::Ld => {
                let value = self.timer.read(offset);
                self.pool.write(self.nets.bus_data, value);
                let value = self.pool.read(self.nets.bus_data);
                let at = self.pool.cycle();
                self.trace.push(sparc_iss::BusEvent {
                    at,
                    kind: sparc_iss::BusKind::Read,
                    addr,
                    size: 4,
                    data: value,
                });
                self.pool.write(self.nets.lsu_rdata, value);
                let value = self.pool.read(self.nets.lsu_rdata);
                self.writeback(rd, value);
                Ok(Flow::Advance)
            }
            Opcode::St => {
                let data = self.rf_read(rd);
                self.pool.write(self.nets.lsu_wdata, data);
                self.pool
                    .write(self.nets.bus_data, self.pool.read(self.nets.lsu_wdata));
                let value = self.pool.read(self.nets.bus_data);
                self.timer.write(offset, value);
                let at = self.pool.cycle();
                self.trace.push(sparc_iss::BusEvent {
                    at,
                    kind: sparc_iss::BusKind::Write,
                    addr,
                    size: 4,
                    data: value,
                });
                Ok(Flow::Advance)
            }
            _ => Err(TrapType::DataAccess),
        }
    }

    /// Load through the data cache, extracting the addressed big-endian
    /// lane and routing the result through the LSU read-data net.
    fn load_sized(&mut self, addr: u32, size: u8, sign_extend: bool) -> u32 {
        let word = self.dcache_load_word(addr & !3);
        let offset = addr as usize % 4;
        let raw = match size {
            1 => (word >> ((3 - offset) * 8)) & 0xff,
            2 => (word >> ((2 - offset) * 8)) & 0xffff,
            _ => word,
        };
        let value = if sign_extend {
            match size {
                1 => raw as u8 as i8 as i32 as u32,
                2 => raw as u16 as i16 as i32 as u32,
                _ => raw,
            }
        } else {
            raw
        };
        self.pool.write(self.nets.lsu_rdata, value);
        self.pool.read(self.nets.lsu_rdata)
    }

    fn exec_branch(&mut self, instr: &Instr) -> ExecResult {
        let cond = instr.op.branch_cond().expect("branch class");
        let taken = cond.eval(self.icc());
        self.pool.write(self.nets.br_taken, u32::from(taken));
        let taken = self.pool.read(self.nets.br_taken) == 1;
        let pc = self.pool.read(self.nets.pc);
        let target = pc.wrapping_add((instr.disp as u32).wrapping_mul(4));
        self.pool.write(self.nets.br_target, target);
        let target = self.pool.read(self.nets.br_target);
        if taken {
            if instr.annul && cond == Cond::Always {
                self.pool.write(self.nets.pc, target);
                self.pool.write(self.nets.npc, target.wrapping_add(4));
            } else {
                self.delayed_jump(target);
            }
        } else {
            if instr.annul {
                self.pool.write(self.nets.annul, 1);
            }
            self.advance();
        }
        Ok(Flow::Jumped)
    }

    fn exec_jump(&mut self, instr: &Instr, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        match instr.op {
            Opcode::Call => {
                let pc = self.pool.read(self.nets.pc);
                let target = pc.wrapping_add((instr.disp as u32).wrapping_mul(4));
                self.pool.write(self.nets.br_target, target);
                let target = self.pool.read(self.nets.br_target);
                self.writeback(Reg::O7, pc);
                self.delayed_jump(target);
                Ok(Flow::Jumped)
            }
            Opcode::Jmpl => {
                let (a, b) = self.read_operands(rs1, op2);
                let target = self.adder(a, b);
                self.pool.write(self.nets.br_target, target);
                let target = self.pool.read(self.nets.br_target);
                if !target.is_multiple_of(4) {
                    return Err(TrapType::MemAddressNotAligned);
                }
                let pc = self.pool.read(self.nets.pc);
                self.writeback(rd, pc);
                self.delayed_jump(target);
                Ok(Flow::Jumped)
            }
            Opcode::Rett => {
                if self.pool.read(self.nets.psr_et) == 1 {
                    return Err(TrapType::IllegalInstruction);
                }
                let (a, b) = self.read_operands(rs1, op2);
                let target = self.adder(a, b);
                if !target.is_multiple_of(4) {
                    return Err(TrapType::MemAddressNotAligned);
                }
                let new_cwp = (self.cwp() + 1) % NWINDOWS;
                if self.wim().is_invalid(new_cwp as u8) {
                    return Err(TrapType::WindowUnderflow);
                }
                self.pool.write(self.nets.psr_cwp, new_cwp as u32);
                let ps = self.pool.read(self.nets.psr_ps);
                self.pool.write(self.nets.psr_s, ps);
                self.pool.write(self.nets.psr_et, 1);
                self.delayed_jump(target);
                Ok(Flow::Jumped)
            }
            other => unreachable!("non-jump opcode {other:?}"),
        }
    }

    fn exec_window(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        let new_cwp = match op {
            Opcode::Save => (self.cwp() + NWINDOWS - 1) % NWINDOWS,
            _ => (self.cwp() + 1) % NWINDOWS,
        };
        if self.wim().is_invalid(new_cwp as u8) {
            return Err(match op {
                Opcode::Save => TrapType::WindowOverflow,
                _ => TrapType::WindowUnderflow,
            });
        }
        // Operands read in the old window through the adder; the result
        // lands in the new window.
        let (a, b) = self.read_operands(rs1, op2);
        let result = self.adder(a, b);
        self.pool.write(self.nets.psr_cwp, new_cwp as u32);
        self.writeback(rd, result);
        Ok(Flow::Advance)
    }

    fn exec_special(&mut self, op: Opcode, rd: Reg, rs1: Reg, op2: Operand2) -> ExecResult {
        match op {
            Opcode::RdY => {
                let y = self.pool.read(self.nets.md_y);
                self.writeback(rd, y);
            }
            Opcode::RdAsr => self.writeback(rd, 0),
            Opcode::RdPsr => {
                let psr = self.psr().to_bits();
                self.writeback(rd, psr);
            }
            Opcode::RdWim => {
                let wim = self.pool.read(self.nets.wim);
                self.writeback(rd, wim);
            }
            Opcode::RdTbr => {
                let tbr = self.pool.read(self.nets.tbr);
                self.writeback(rd, tbr);
            }
            Opcode::WrY => {
                let (a, b) = self.read_operands(rs1, op2);
                self.pool.write(self.nets.md_y, a ^ b);
            }
            Opcode::WrAsr => {
                let _ = self.read_operands(rs1, op2);
            }
            Opcode::WrPsr => {
                let (a, b) = self.read_operands(rs1, op2);
                self.set_psr(Psr::from_bits(a ^ b));
            }
            Opcode::WrWim => {
                let (a, b) = self.read_operands(rs1, op2);
                self.pool
                    .write(self.nets.wim, (a ^ b) & ((1 << NWINDOWS) - 1));
            }
            Opcode::WrTbr => {
                let (a, b) = self.read_operands(rs1, op2);
                let old = self.pool.read(self.nets.tbr);
                self.pool
                    .write(self.nets.tbr, ((a ^ b) & 0xffff_f000) | (old & 0xff0));
            }
            other => unreachable!("non-special opcode {other:?}"),
        }
        Ok(Flow::Advance)
    }

    fn exec_ticc(&mut self, instr: &Instr, rs1: Reg, op2: Operand2) -> ExecResult {
        self.pool.write(self.nets.de_cond, instr.cond.to_bits());
        let cond = Cond::from_bits(self.pool.read(self.nets.de_cond));
        if !cond.eval(self.icc()) {
            return Ok(Flow::Advance);
        }
        let (a, b) = self.read_operands(rs1, op2);
        let number = self.adder(a, b) & 0x7f;
        if number == 0 {
            return Ok(Flow::Halt(self.rf_read(Reg::o(0))));
        }
        Err(TrapType::Software(number as u8))
    }
}

fn size_mask(size: u8) -> u32 {
    match size {
        1 => 0xff,
        2 => 0xffff,
        _ => u32::MAX,
    }
}
