//! White-box fault-pathway tests: specific net faults must produce the
//! specific micro-architectural pathologies they correspond to in real
//! hardware. These pin down *why* campaign results look the way they do.

use leon3_model::{Leon3, Leon3Config};
use rtl_sim::{Fault, FaultKind};
use sparc_asm::{assemble, Program};
use sparc_iss::{Exit, RunOutcome};

fn program() -> Program {
    assemble(
        r#"
        _start:
            set 0x40002000, %l0
            mov 1, %o1
            mov 2, %o2
            add %o1, %o2, %o3
            st %o3, [%l0]
            sub %o2, %o1, %o4
            st %o4, [%l0 + 4]
            mov %o3, %o0        ! exit code = 3
            halt
        "#,
    )
    .expect("assembles")
}

fn run_with(fault: Fault) -> (Leon3, RunOutcome) {
    let mut cpu = Leon3::new(Leon3Config::default());
    cpu.load(&program());
    cpu.inject(fault);
    let outcome = cpu.run(10_000);
    (cpu, outcome)
}

fn golden_writes() -> Vec<(u32, u32)> {
    let mut cpu = Leon3::new(Leon3Config::default());
    cpu.load(&program());
    assert!(matches!(cpu.run(10_000), RunOutcome::Halted { .. }));
    cpu.bus_trace().writes().map(|w| (w.addr, w.data)).collect()
}

#[test]
fn adder_fault_corrupts_sums_and_addresses() {
    let cpu = Leon3::new(Leon3Config::default());
    let net = cpu.nets().add_res;
    let (faulty, _) = run_with(Fault {
        net,
        bit: 3,
        kind: FaultKind::StuckAt1,
        from_cycle: 0,
    });
    let writes: Vec<(u32, u32)> = faulty
        .bus_trace()
        .writes()
        .map(|w| (w.addr, w.data))
        .collect();
    // Addresses flow through the adder too (set/st offset computation), so
    // either the data or the address of the first write must differ.
    assert_ne!(writes, golden_writes(), "adder stuck-at had no effect");
}

#[test]
fn wb_rd_fault_redirects_register_writes() {
    // Stuck-at on the write-back destination index makes results land in
    // the wrong architectural register.
    let cpu = Leon3::new(Leon3Config::default());
    let net = cpu.nets().wb_rd;
    let (faulty, outcome) = run_with(Fault {
        net,
        bit: 4,
        kind: FaultKind::StuckAt1,
        from_cycle: 0,
    });
    // rd indices get bit 4 forced: %o1 (9) becomes %i1 (25) etc. The store
    // then reads a never-written register.
    let diverged = faulty
        .bus_trace()
        .writes()
        .map(|w| (w.addr, w.data))
        .collect::<Vec<_>>()
        != golden_writes();
    assert!(
        diverged || !matches!(outcome, RunOutcome::Halted { code: _ }),
        "wb_rd fault had no observable effect"
    );
}

#[test]
fn decode_ir_fault_turns_instructions_illegal() {
    // Forcing a bit of the instruction register eventually produces an
    // undecodable or wrong instruction; with no trap handlers the model
    // must contain the run (error mode or divergence), never panic.
    let cpu = Leon3::new(Leon3Config::default());
    let net = cpu.nets().de_ir;
    for bit in [30, 24, 19, 13] {
        let (faulty, outcome) = run_with(Fault {
            net,
            bit,
            kind: FaultKind::StuckAt1,
            from_cycle: 0,
        });
        match outcome {
            RunOutcome::Halted { .. } => {
                // If it still halts, the write stream tells the story.
                let _ = faulty.bus_trace();
            }
            RunOutcome::ErrorMode { .. } | RunOutcome::InstructionLimit => {}
        }
    }
}

#[test]
fn pc_fault_derails_control_flow() {
    let cpu = Leon3::new(Leon3Config::default());
    let net = cpu.nets().pc;
    let (_, outcome) = run_with(Fault {
        net,
        bit: 4,
        kind: FaultKind::StuckAt1,
        from_cycle: 0,
    });
    assert!(
        !matches!(outcome, RunOutcome::Halted { code: 3 }),
        "PC stuck-at cannot leave the program intact"
    );
}

#[test]
fn icache_valid_stuck_at_one_fakes_hits_on_garbage() {
    // A valid bit stuck at 1 makes an untouched line look resident: the
    // fetch returns the zero-filled array content (an `unimp` pattern),
    // producing an illegal-instruction end or control divergence.
    let mut cpu = Leon3::new(Leon3Config::default());
    let prog = program();
    cpu.load(&prog);
    // Line index of the entry point.
    let line = (prog.entry as usize / cpu.config().icache.line_bytes) % cpu.config().icache.lines;
    let net = cpu.nets().ivalid[line];
    // Also force the tag match by corrupting the tag store? Not needed:
    // valid=1 with tag=0 mismatches the 0x40000000-range tag, so this
    // particular fault is harmless — assert exactly that.
    cpu.inject(Fault {
        net,
        bit: 0,
        kind: FaultKind::StuckAt1,
        from_cycle: 0,
    });
    let outcome = cpu.run(10_000);
    assert!(
        matches!(outcome, RunOutcome::Halted { code: 3 }),
        "{outcome:?}"
    );

    // Now also pin the tag store to the matching tag: the fake hit becomes
    // real and the core fetches zeros -> illegal instruction.
    let mut cpu = Leon3::new(Leon3Config::default());
    cpu.load(&prog);
    let spec = cpu.config().icache;
    let expected_tag = ((prog.entry as usize / spec.line_bytes) / spec.lines) as u32 & 0xf_ffff;
    let valid_net = cpu.nets().ivalid[line];
    let tag_net = cpu.nets().itag[line];
    cpu.inject(Fault {
        net: valid_net,
        bit: 0,
        kind: FaultKind::StuckAt1,
        from_cycle: 0,
    });
    for bit in 0..20 {
        if expected_tag & (1 << bit) != 0 {
            cpu.inject(Fault {
                net: tag_net,
                bit,
                kind: FaultKind::StuckAt1,
                from_cycle: 0,
            });
        }
    }
    let outcome = cpu.run(10_000);
    assert!(
        matches!(
            outcome,
            RunOutcome::ErrorMode { .. } | RunOutcome::InstructionLimit
        ),
        "forced false hit on a zero line must derail execution: {outcome:?}"
    );
}

#[test]
fn dcache_data_fault_needs_a_resident_read_to_matter() {
    // Stuck-at in a dcache data word is invisible until a load hits that
    // word; stores are write-through and don't read the array.
    let prog = assemble(
        r#"
        _start:
            set 0x40002000, %l0
            mov 7, %o1
            st %o1, [%l0]       ! write-through, no array read
            ld [%l0], %o2       ! allocates + reads the line
            st %o2, [%l0 + 4]
            halt
        "#,
    )
    .expect("assembles");
    let reference = Leon3::new(Leon3Config::default());
    let spec = reference.config().dcache;
    let addr = 0x4000_2000u32;
    let line = (addr as usize / spec.line_bytes) % spec.lines;
    let word = (addr as usize % spec.line_bytes) / 4;
    let net = reference.nets().ddata[line * (spec.line_bytes / 4) + word];

    let mut cpu = Leon3::new(Leon3Config::default());
    cpu.load(&prog);
    cpu.inject(Fault {
        net,
        bit: 5,
        kind: FaultKind::StuckAt1,
        from_cycle: 0,
    });
    let outcome = cpu.run(10_000);
    assert!(matches!(outcome, RunOutcome::Halted { .. }));
    let writes: Vec<u32> = cpu.bus_trace().writes().map(|w| w.data).collect();
    // First store is clean (write-through straight to the bus); the second
    // store carries the corrupted loaded value (bit 5 forced).
    assert_eq!(writes[0], 7);
    assert_eq!(writes[1], 7 | (1 << 5));
}

#[test]
fn open_line_on_live_register_freezes_it() {
    let prog = assemble(
        r#"
        _start:
            set 0x40002000, %l0
            mov 5, %o1          ! %o1 = 5
            st %o1, [%l0]
            mov 9, %o1          ! the open line masks this update
            st %o1, [%l0 + 4]
            halt
        "#,
    )
    .expect("assembles");
    let reference = Leon3::new(Leon3Config::default());
    // Physical slot of window-0 %o1.
    let slot = sparc_isa::WindowedRegs::physical_index(0, sparc_isa::Reg::o(1));
    let net = reference.nets().rf[slot];
    let mut cpu = Leon3::new(Leon3Config::default());
    cpu.load(&prog);
    // Inject after the first mov has committed (5 is latched) — freeze
    // every bit.
    for bit in 0..32 {
        cpu.inject(Fault {
            net,
            bit,
            kind: FaultKind::OpenLine,
            from_cycle: 12,
        });
    }
    let outcome = cpu.run(10_000);
    assert!(matches!(outcome, RunOutcome::Halted { .. }), "{outcome:?}");
    let writes: Vec<u32> = cpu.bus_trace().writes().map(|w| w.data).collect();
    assert_eq!(writes[0], 5);
    assert_eq!(
        writes[1], 5,
        "open line must hold the frozen value, got {:?}",
        writes
    );
    assert_eq!(cpu.exit(), Some(Exit::Halted(0)));
}
