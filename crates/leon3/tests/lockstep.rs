//! Golden-run lockstep: the RTL model and the ISS must agree bit-exactly on
//! architectural results and off-core write streams for fault-free runs.
//!
//! This is the precondition of the whole correlation method: any divergence
//! between a faulty RTL run and a golden ISS run must be attributable to
//! the fault, never to simulator disagreement.

use leon3_model::{Leon3, Leon3Config};
use sparc_asm::assemble;
use sparc_iss::{Iss, IssConfig, RunOutcome};

/// Run `src` on both levels and compare outcome, registers-in-window-0,
/// PSR/Y and the off-core write stream.
fn lockstep(src: &str) {
    let program = assemble(src).expect("assembles");
    let mut iss = Iss::new(IssConfig::default());
    iss.load(&program);
    let iss_outcome = iss.run(2_000_000);

    let mut rtl = Leon3::new(Leon3Config::default());
    rtl.load(&program);
    let rtl_outcome = rtl.run(2_000_000);

    assert_eq!(iss_outcome, rtl_outcome, "run outcomes diverge");
    assert!(
        matches!(iss_outcome, RunOutcome::Halted { .. }),
        "golden program must halt, got {iss_outcome:?}"
    );

    let iss_state = iss.state().clone();
    let rtl_state = rtl.architectural_state();
    assert_eq!(iss_state.psr, rtl_state.psr, "PSR diverges");
    assert_eq!(iss_state.y, rtl_state.y, "Y diverges");
    assert_eq!(iss_state.wim, rtl_state.wim, "WIM diverges");
    assert_eq!(iss_state.pc, rtl_state.pc, "PC diverges");
    for slot in 0..136 {
        assert_eq!(
            iss_state.regs.read_physical(slot),
            rtl_state.regs.read_physical(slot),
            "physical register {slot} diverges"
        );
    }

    let iss_writes: Vec<_> = iss.bus_trace().writes().collect();
    let rtl_writes: Vec<_> = rtl.bus_trace().writes().collect();
    assert_eq!(iss_writes.len(), rtl_writes.len(), "write counts diverge");
    for (i, (a, b)) in iss_writes.iter().zip(&rtl_writes).enumerate() {
        assert!(a.same_payload(b), "write {i} diverges: ISS {a} vs RTL {b}");
    }
}

#[test]
fn arithmetic_mix() {
    lockstep(
        r#"
        _start:
            set 0x40010000, %l0
            mov 17, %o0
            mov -5, %o1
            add %o0, %o1, %o2
            st %o2, [%l0]
            subcc %o0, %o1, %o3
            st %o3, [%l0 + 4]
            addxcc %o2, %o3, %o4
            st %o4, [%l0 + 8]
            subxcc %o4, 1, %o5
            st %o5, [%l0 + 12]
            taddcc %o0, 4, %o5
            st %o5, [%l0 + 16]
            tsubcc %o0, 8, %o5
            st %o5, [%l0 + 20]
            halt
        "#,
    );
}

#[test]
fn logic_shift_mix() {
    lockstep(
        r#"
        _start:
            set 0x40010000, %l0
            set 0xa5a5a5a5, %o0
            and %o0, 0xff, %o1
            st %o1, [%l0]
            andn %o0, 0xff, %o1
            st %o1, [%l0+4]
            orcc %o0, 0x3c, %o1
            st %o1, [%l0+8]
            orn %g0, %o0, %o1
            st %o1, [%l0+12]
            xorcc %o0, -1, %o1
            st %o1, [%l0+16]
            xnorcc %o0, 0, %o1
            st %o1, [%l0+20]
            sll %o0, 7, %o1
            st %o1, [%l0+24]
            srl %o0, 13, %o1
            st %o1, [%l0+28]
            sra %o0, 13, %o1
            st %o1, [%l0+32]
            halt
        "#,
    );
}

#[test]
fn mul_div_y_register() {
    lockstep(
        r#"
        _start:
            set 0x40010000, %l0
            set 123456, %o0
            set 98765, %o1
            umul %o0, %o1, %o2
            st %o2, [%l0]
            rd %y, %o3
            st %o3, [%l0+4]
            smulcc %o0, %o1, %o2
            st %o2, [%l0+8]
            mov -7, %o4
            smul %o4, %o1, %o2
            st %o2, [%l0+12]
            rd %y, %o3
            st %o3, [%l0+16]
            wr %g0, 0, %y
            udivcc %o0, 17, %o2
            st %o2, [%l0+20]
            mov -1000, %o5
            mov -1, %o4
            wr %o4, 0, %y
            sdiv %o5, 13, %o2
            st %o2, [%l0+24]
            halt
        "#,
    );
}

#[test]
fn memory_widths_and_atomics() {
    lockstep(
        r#"
        _start:
            set buf, %l0
            set 0x11223344, %o0
            st %o0, [%l0]
            stb %o0, [%l0 + 5]
            sth %o0, [%l0 + 6]
            ldub [%l0 + 1], %o1
            st %o1, [%l0 + 8]
            ldsb [%l0 + 5], %o1
            st %o1, [%l0 + 12]
            lduh [%l0 + 6], %o1
            st %o1, [%l0 + 16]
            ldsh [%l0 + 2], %o1
            st %o1, [%l0 + 20]
            ldd [%l0], %o2
            std %o2, [%l0 + 24]
            set lock, %l1
            ldstub [%l1], %o1
            st %o1, [%l0 + 32]
            mov 77, %o1
            set cell, %l2
            swap [%l2], %o1
            st %o1, [%l0 + 36]
            ld [%l2], %o1
            st %o1, [%l0 + 40]
            halt
            .align 8
        buf:
            .space 64
        lock:
            .byte 0
            .align 4
        cell:
            .word 0xbeef
        "#,
    );
}

#[test]
fn control_flow_and_windows() {
    lockstep(
        r#"
        _start:
            set 0x40010000, %l0
            mov 0, %o0
            mov 6, %o1
        loop:
            call accumulate
             nop
            subcc %o1, 1, %o1
            bne loop
             nop
            st %o0, [%l0]
            ba,a done
            st %g0, [%l0 + 60]   ! annulled, must not execute
        done:
            st %o0, [%l0 + 4]
            halt
        accumulate:
            save %sp, -96, %sp
            add %i0, %i1, %i0
            ret
             restore
        "#,
    );
}

#[test]
fn branch_condition_coverage() {
    // Exercise every conditional branch both taken and not taken.
    let mut body = String::from("_start:\n set 0x40010000, %l0\n mov 0, %l1\n");
    let branches = [
        ("be", "bne"),
        ("bl", "bge"),
        ("ble", "bg"),
        ("bleu", "bgu"),
        ("bcs", "bcc"),
        ("bneg", "bpos"),
        ("bvs", "bvc"),
    ];
    for (i, (a, b)) in branches.iter().enumerate() {
        // cmp 3, 5 then cmp 5, 3: each branch of the pair goes both ways.
        body.push_str(&format!(
            r#"
            cmp %l1, 1
            {a} t{i}a
             nop
            add %l1, 0, %l1
        t{i}a:
            cmp %l1, 0
            {b} t{i}b
             nop
            add %l1, 2, %l1
        t{i}b:
            st %l1, [%l0 + {off}]
        "#,
            a = a,
            b = b,
            i = i,
            off = i * 4,
        ));
    }
    body.push_str(" halt\n");
    lockstep(&body);
}

#[test]
fn sethi_hi_lo_addressing() {
    lockstep(
        r#"
        _start:
            sethi %hi(target), %o0
            or %o0, %lo(target), %o0
            ld [%o0], %o1
            set 0x40010000, %l0
            st %o1, [%l0]
            halt
            .align 4
        target:
            .word 0x5ec0de
        "#,
    );
}

#[test]
fn special_registers() {
    lockstep(
        r#"
        _start:
            set 0x40010000, %l0
            rd %psr, %o0
            and %o0, 0xff, %o1      ! implementation fields masked off
            st %o1, [%l0]
            wr %g0, 0x55, %y
            rd %y, %o2
            st %o2, [%l0+4]
            rd %wim, %o3
            st %o3, [%l0+8]
            rd %tbr, %o4
            st %o4, [%l0+12]
            halt
        "#,
    );
}

#[test]
fn cache_thrash_consistency() {
    // Walk a buffer larger than the 4 KiB data cache twice so lines are
    // evicted and refilled; the write-through protocol must keep memory
    // coherent at both levels.
    lockstep(
        r#"
        _start:
            set buf, %l0
            set 2048, %l1        ! words (8 KiB)
            mov 0, %l2
        fill:
            st %l2, [%l0]
            add %l0, 4, %l0
            subcc %l1, 1, %l1
            bne fill
             add %l2, 3, %l2
            set buf, %l0
            set 2048, %l1
            mov 0, %o0
        sum:
            ld [%l0], %o1
            add %o0, %o1, %o0
            add %l0, 4, %l0
            subcc %l1, 1, %l1
            bne sum
             nop
            set 0x40020000, %l0
            st %o0, [%l0]
            halt
            .align 16
        buf:
            .space 8192
        "#,
    );
}

#[test]
fn deep_recursion_with_window_traps() {
    // Recursion deeper than NWINDOWS forces window overflow/underflow traps
    // through the software spill/fill handlers — both levels must agree.
    lockstep(&format!(
        r#"
        {runtime}
        main:
            set stack_top, %sp
            mov 12, %o0
            call fib
             nop
            set 0x40030000, %l0
            st %o0, [%l0]
            mov %o0, %o0
            halt

        ! fib(n): naive recursive fibonacci
        fib:
            save %sp, -96, %sp
            cmp %i0, 2
            bl base
             nop
            sub %i0, 1, %o0
            call fib
             nop
            mov %o0, %l1
            sub %i0, 2, %o0
            call fib
             nop
            add %o0, %l1, %i0
            ret
             restore
        base:
            mov 1, %i0
            ret
             restore

            .align 8
        stack_bottom:
            .space 4096
        stack_top:
            .space 64              ! save area for the outermost frame
        "#,
        runtime = trap_runtime(),
    ));
}

/// A minimal trap-table runtime with standard window overflow/underflow
/// handlers (the workloads crate carries the canonical copy).
fn trap_runtime() -> &'static str {
    r#"
        .org 0x40000000
    trap_table:
        ba _start
         nop
        .org 0x40000000 + 16 * 5   ! tt = 0x05 window overflow
        ba window_overflow
         nop
        .org 0x40000000 + 16 * 6   ! tt = 0x06 window underflow
        ba window_underflow
         nop

        .org 0x40000400
    _start:
        wr %g0, 2, %wim            ! window 1 invalid
        set trap_table, %g1
        wr %g1, 0, %tbr
        set main, %g1
        jmp %g1
         nop

    window_overflow:
        ! rotate WIM right by one
        mov %wim, %l3
        srl %l3, 1, %l4
        sll %l3, 7, %l5
        or %l4, %l5, %l3
        and %l3, 0xff, %l3
        wr %g0, 0, %wim
        save
        std %l0, [%sp + 0]
        std %l2, [%sp + 8]
        std %l4, [%sp + 16]
        std %l6, [%sp + 24]
        std %i0, [%sp + 32]
        std %i2, [%sp + 40]
        std %i4, [%sp + 48]
        std %i6, [%sp + 56]
        restore
        wr %l3, 0, %wim
        jmp %l1
         rett %l2

    window_underflow:
        ! rotate WIM left by one
        mov %wim, %l3
        sll %l3, 1, %l4
        srl %l3, 7, %l5
        or %l4, %l5, %l3
        and %l3, 0xff, %l3
        wr %g0, 0, %wim
        restore
        restore
        ldd [%sp + 0], %l0
        ldd [%sp + 8], %l2
        ldd [%sp + 16], %l4
        ldd [%sp + 24], %l6
        ldd [%sp + 32], %i0
        ldd [%sp + 40], %i2
        ldd [%sp + 48], %i4
        ldd [%sp + 56], %i6
        save
        save
        wr %l3, 0, %wim
        jmp %l1
         rett %l2
    "#
}
