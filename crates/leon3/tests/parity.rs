//! CMEM parity integration: the per-line parity bits must be silent on
//! fault-free runs, cost zero cycles, and latch a detection when a fault
//! corrupts the protected state — without ever altering the run itself
//! (parity detects, it does not correct).

use leon3_model::{Leon3, Leon3Config};
use rtl_sim::{Fault, FaultKind, NetId};
use sparc_asm::{assemble, Program};
use sparc_iss::RunOutcome;

fn parity_config() -> Leon3Config {
    Leon3Config {
        cmem_parity: true,
        ..Leon3Config::default()
    }
}

/// A store/load loop: every iteration refills, reads and re-dirties data
/// cache lines, and the loop body itself exercises instruction cache
/// lookups — both parity domains see traffic.
fn program() -> Program {
    assemble(
        r#"
        _start:
            set 0x40001000, %l0
            mov 5, %l1
            mov 0, %o0
        loop:
            st %o0, [%l0]
            ld [%l0], %o2
            add %o0, %o2, %o0
            subcc %l1, 1, %l1
            bne loop
             nop
            halt
        "#,
    )
    .expect("assembles")
}

fn run_golden(config: &Leon3Config) -> Leon3 {
    let mut cpu = Leon3::new(config.clone());
    cpu.load(&program());
    let outcome = cpu.run(2_000_000);
    assert!(matches!(outcome, RunOutcome::Halted { .. }), "{outcome:?}");
    cpu
}

#[test]
fn golden_run_never_latches_parity() {
    let cpu = run_golden(&parity_config());
    assert_eq!(cpu.parity_detected_at(), None);
}

#[test]
fn parity_is_cycle_and_write_neutral() {
    let plain = run_golden(&Leon3Config::default());
    let checked = run_golden(&parity_config());
    assert_eq!(plain.cycles(), checked.cycles(), "parity must cost nothing");
    let plain_writes: Vec<_> = plain.bus_trace().writes().collect();
    let checked_writes: Vec<_> = checked.bus_trace().writes().collect();
    assert_eq!(plain_writes.len(), checked_writes.len());
    for (a, b) in plain_writes.iter().zip(&checked_writes) {
        assert!(a.same_payload(b), "{a} vs {b}");
    }
}

/// Inject `kind` on bit 0 of each net in turn until a run latches a
/// parity event; return that run.
fn first_latch(nets: &[NetId], kind: FaultKind) -> Option<Leon3> {
    for &net in nets {
        let mut cpu = Leon3::new(parity_config());
        cpu.load(&program());
        cpu.inject(Fault {
            net,
            bit: 0,
            kind,
            from_cycle: 0,
        });
        let outcome = cpu.run(2_000_000);
        assert!(matches!(outcome, RunOutcome::Halted { .. }), "{outcome:?}");
        if cpu.parity_detected_at().is_some() {
            return Some(cpu);
        }
    }
    None
}

#[test]
fn injected_parity_bit_fault_latches_without_changing_the_run() {
    let golden = run_golden(&parity_config());
    let golden_writes: Vec<_> = golden.bus_trace().writes().collect();

    // A parity line stuck at the wrong polarity mismatches the recomputed
    // value on the next lookup of a valid line. The correct stored parity
    // depends on the line's contents, so one of the two stuck polarities
    // must disagree on some exercised line.
    let nets = Leon3::new(parity_config()).nets().dparity.clone();
    assert!(!nets.is_empty(), "parity nets must be declared");
    let faulty = first_latch(&nets, FaultKind::StuckAt1)
        .or_else(|| first_latch(&nets, FaultKind::StuckAt0))
        .expect("some data-cache parity fault must be detected");

    let at = faulty.parity_detected_at().expect("latched");
    assert!(at <= faulty.cycles(), "detection lies within the run");

    // Parity is observe-only: the corrupted bit protects nothing in the
    // data path, so the run itself is unchanged.
    let faulty_writes: Vec<_> = faulty.bus_trace().writes().collect();
    assert_eq!(golden_writes.len(), faulty_writes.len());
    for (a, b) in golden_writes.iter().zip(&faulty_writes) {
        assert!(a.same_payload(b), "{a} vs {b}");
    }
}

#[test]
fn instruction_cache_parity_is_injectable_too() {
    let nets = Leon3::new(parity_config()).nets().iparity.clone();
    assert!(!nets.is_empty(), "parity nets must be declared");
    let faulty = first_latch(&nets, FaultKind::StuckAt1)
        .or_else(|| first_latch(&nets, FaultKind::StuckAt0))
        .expect("some instruction-cache parity fault must be detected");
    assert!(faulty.parity_detected_at().is_some());
}

#[test]
fn parity_nets_are_absent_when_disabled() {
    let cpu = Leon3::new(Leon3Config::default());
    assert!(cpu.nets().iparity.is_empty());
    assert!(cpu.nets().dparity.is_empty());
    assert_eq!(cpu.parity_detected_at(), None);
}
