//! Fleet end-to-end tests: a real coordinator and real runners on
//! loopback, including the kill-recovery acceptance test.

use fault_inject::{AttackTarget, InjectionInstant, Target};
use rtl_sim::FaultKind;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use verifd::{client, CampaignSpec, Coordinator, CoordinatorConfig, Runner, RunnerConfig};
use workloads::Benchmark;

fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    spec.sample = Some((8, 3));
    spec.injection = InjectionInstant::Fraction(0.25);
    spec
}

/// A targeted intermittent campaign: the time-varying schedule plus the
/// attack-surface restriction both ride the spec wire form, so a fleet
/// shard of this spec must reconstruct the exact duty-cycle assertion
/// windows the unsharded run sees.
fn time_varying_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    spec.kinds = vec![
        FaultKind::IntermittentStuck {
            level: true,
            period: 400,
            duty: 100,
            phase: 0,
        },
        FaultKind::TransientBurst {
            flips: 3,
            spacing: 80,
        },
    ];
    spec.targets = Some(vec![
        AttackTarget::BranchCondition,
        AttackTarget::StatusRegister,
    ]);
    spec.sample = Some((8, 5));
    spec.injection = InjectionInstant::Fraction(0.3);
    spec
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verifd-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A coordinator tuned for tests: short leases, fast retries.
fn fast_config(dir: &std::path::Path) -> CoordinatorConfig {
    CoordinatorConfig {
        lease_ttl_ms: 250,
        heartbeat_ms: 50,
        max_attempts: 5,
        backoff_base_ms: 10,
        backoff_cap_ms: 50,
        poll_ms: 25,
        store_path: dir.join("store"),
        drain_path: Some(dir.join("drain.jsonl")),
        ..CoordinatorConfig::default()
    }
}

fn runner_config(addr: &str, dir: &std::path::Path, name: &str) -> RunnerConfig {
    RunnerConfig {
        coordinator: addr.to_string(),
        name: name.to_string(),
        job_threads: 2,
        workdir: dir.join(name),
        chaos: None,
        hold_ms: 0,
    }
}

fn stat(addr: &str, key: &str) -> u64 {
    client::stats(addr)
        .expect("stats")
        .get_u64(key)
        .unwrap_or_else(|| panic!("missing stat `{key}`"))
}

fn wait_for_stat(addr: &str, key: &str, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while stat(addr, key) != want {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {key}={want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn killed_runner_recovers_bit_identically() {
    let dir = tempdir("kill");
    let coordinator = Coordinator::start(fast_config(&dir)).expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let base = small_spec();

    let submitted = client::fleet_submit(&addr, &base, 2).expect("submit fleet");
    assert_eq!(submitted.status, "queued");
    assert_eq!(submitted.cached, 0);

    // Runner A takes the first lease (shard 0, FIFO) and holds it
    // without simulating — the window in which we kill it.
    let holder = Runner::start(RunnerConfig {
        hold_ms: 120_000,
        ..runner_config(&addr, &dir, "holder")
    })
    .expect("start holder");
    wait_for_stat(&addr, "leases_active", 1);

    // Runner B does the real work.
    let worker = Runner::start(runner_config(&addr, &dir, "worker")).expect("start worker");
    holder.kill();

    // The campaign completes despite the death: B finishes shard 1,
    // the lease on shard 0 expires, B picks it up on retry.
    let status = client::fleet_wait(&addr, submitted.id).expect("wait");
    assert_eq!(status.status, "done");
    assert_eq!((status.done, status.total), (2, 2));
    assert!(status.missing.is_empty());
    let merged = status.campaign.expect("done campaign carries the merge");

    // Bit-identical to the unsharded single-process run: records,
    // stats, ledger — everything.
    let local = base.to_campaign().try_run(2).expect("local run");
    assert_eq!(merged.result, local);
    assert_eq!(merged.fingerprint, base.fingerprint());
    // Byte-level too: the canonical wire form is byte-stable.
    let local_wire = fault_inject::wire::ShardResult {
        fingerprint: base.fingerprint(),
        index: 0,
        count: 1,
        result: local.clone(),
    };
    assert_eq!(merged.to_json(), local_wire.to_json());

    // /stats accounts for the retried lease, and the store holds no
    // duplicate simulated shard.
    assert!(
        stat(&addr, "leases_expired") >= 1,
        "the kill expired a lease"
    );
    assert!(
        stat(&addr, "leases_retried") >= 1,
        "the shard was re-queued"
    );
    assert_eq!(
        stat(&addr, "store_dedup_hits"),
        0,
        "no shard simulated twice"
    );
    // 2 shards + the memoized merge.
    assert_eq!(stat(&addr, "store_puts"), 3);
    assert_eq!(stat(&addr, "shards_done"), 2);

    worker.stop();
    coordinator.shutdown().expect("shutdown");

    // A fresh coordinator over the same store serves the whole campaign
    // from disk: zero new leases, all shards prefilled.
    let revived = Coordinator::start(fast_config(&dir)).expect("restart coordinator");
    let addr = revived.addr().to_string();
    let resubmitted = client::fleet_submit(&addr, &base, 2).expect("resubmit");
    assert_eq!(resubmitted.status, "done");
    assert_eq!(resubmitted.cached, 2);
    let status = client::fleet_wait(&addr, resubmitted.id).expect("cached wait");
    assert_eq!(status.campaign.expect("merged").result, local);
    assert_eq!(stat(&addr, "leases_granted"), 0);
    revived.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn intermittent_targeted_campaign_survives_a_mid_shard_kill_bit_identically() {
    // The time-varying acceptance property at fleet scope: an
    // intermittent + burst spec with attack targets, sharded across two
    // runners with one killed mid-shard, merges bit-identical to the
    // unsharded single-process run. The shard that dies is re-leased and
    // re-run from its journal grant — any drift in how a restored shard
    // reconstructs the duty-cycle schedule or flip train would change a
    // merged byte here.
    let dir = tempdir("tv-kill");
    let coordinator = Coordinator::start(fast_config(&dir)).expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let base = time_varying_spec();

    let submitted = client::fleet_submit(&addr, &base, 2).expect("submit fleet");
    assert_eq!(submitted.status, "queued");

    // Runner A takes shard 0 and holds without simulating — the kill
    // window; runner B does the real work, including the retried shard.
    let holder = Runner::start(RunnerConfig {
        hold_ms: 120_000,
        ..runner_config(&addr, &dir, "holder")
    })
    .expect("start holder");
    wait_for_stat(&addr, "leases_active", 1);
    let worker = Runner::start(runner_config(&addr, &dir, "worker")).expect("start worker");
    holder.kill();

    let status = client::fleet_wait(&addr, submitted.id).expect("wait");
    assert_eq!(status.status, "done");
    assert_eq!((status.done, status.total), (2, 2));
    let merged = status.campaign.expect("done campaign carries the merge");

    let local = base.to_campaign().try_run(2).expect("local run");
    assert_eq!(merged.result, local);
    assert_eq!(merged.fingerprint, base.fingerprint());
    // Byte-level: the canonical wire form of the merge equals the local
    // run's, so no reported byte moved under the kill.
    let local_wire = fault_inject::wire::ShardResult {
        fingerprint: base.fingerprint(),
        index: 0,
        count: 1,
        result: local.clone(),
    };
    assert_eq!(merged.to_json(), local_wire.to_json());
    // The equivalence is not vacuous: both time-varying kinds appear in
    // the merged records, and the kill really did expire a lease.
    let kinds: Vec<FaultKind> = merged.result.records().iter().map(|r| r.kind).collect();
    assert!(kinds
        .iter()
        .any(|k| matches!(k, FaultKind::IntermittentStuck { .. })));
    assert!(kinds
        .iter()
        .any(|k| matches!(k, FaultKind::TransientBurst { .. })));
    assert!(
        stat(&addr, "leases_expired") >= 1,
        "the kill expired a lease"
    );
    assert!(
        stat(&addr, "leases_retried") >= 1,
        "the shard was re-queued"
    );

    worker.stop();
    coordinator.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn uploaded_partial_journal_resumes_without_resimulating_finished_jobs() {
    let dir = tempdir("resume");
    // Long TTL: this test drives the runner protocol by hand, without
    // heartbeats.
    let coordinator = Coordinator::start(CoordinatorConfig {
        lease_ttl_ms: 60_000,
        ..fast_config(&dir)
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let base = small_spec();

    let submitted = client::fleet_submit(&addr, &base, 1).expect("submit fleet");
    let me = client::fleet_register(&addr, "manual", 2).expect("register");

    // First lease holder: runs the shard journaled, then "dies" —
    // reports failure with a mid-line-truncated journal, exactly what a
    // kill leaves on disk.
    let grant = match client::fleet_lease(&addr, me.runner_id).expect("lease") {
        fault_inject::wire::fleet::LeaseReply::Grant(grant) => grant,
        other => panic!("expected a grant, got {other:?}"),
    };
    assert!(grant.journal.is_none(), "first attempt starts fresh");
    let leased_spec = CampaignSpec::from_obj(&grant.spec).expect("granted spec parses");
    assert_eq!(leased_spec.shard, Some((0, 1)));
    let journal_path = dir.join("manual.journal");
    let full = leased_spec
        .to_campaign()
        .run_journaled(2, &journal_path)
        .expect("journaled run");
    let text = std::fs::read_to_string(&journal_path).expect("journal text");
    let header_end = text.find('\n').expect("header line") + 1;
    let cut = header_end + (text.len() - header_end) / 2;
    client::fleet_fail(
        &addr,
        me.runner_id,
        grant.lease_id,
        "simulated death",
        Some(&text[..cut]),
    )
    .expect("fail upload");

    // Second holder: the grant carries the partial journal; resuming it
    // re-runs only the missing jobs. (The first failure put the shard
    // behind a short backoff, so poll for the grant.)
    let retry = loop {
        match client::fleet_lease(&addr, me.runner_id).expect("re-lease") {
            fault_inject::wire::fleet::LeaseReply::Grant(grant) => break grant,
            fault_inject::wire::fleet::LeaseReply::NoWork { retry_ms, .. } => {
                std::thread::sleep(Duration::from_millis(retry_ms.clamp(10, 100)));
            }
        }
    };
    assert_eq!(retry.attempt, 2);
    let uploaded = retry.journal.as_deref().expect("retry carries the journal");
    std::fs::write(&journal_path, uploaded).expect("write journal");
    let resumed = leased_spec
        .to_campaign()
        .resume(2, &journal_path)
        .expect("resume");
    let recovered = resumed.stats().resumed;
    assert!(recovered > 0, "the resume recovered journaled jobs");
    let ack = client::fleet_complete(
        &addr,
        &fault_inject::wire::fleet::Complete {
            runner_id: me.runner_id,
            lease_id: retry.lease_id,
            shard: fault_inject::wire::ShardResult {
                fingerprint: base.fingerprint(),
                index: 0,
                count: 1,
                result: resumed,
            },
        },
    )
    .expect("complete");
    assert!(ack.ok);

    // The accepted result is bit-identical to the uninterrupted run —
    // the coordinator normalized the recovery counter out of the stats
    // and surfaces it in /stats instead.
    let status = client::fleet_wait(&addr, submitted.id).expect("wait");
    assert_eq!(status.status, "done");
    let stored = status.campaign.expect("merged");
    assert_eq!(stored.result, full);
    assert_eq!(stored.result.stats().resumed, 0);
    assert_eq!(stat(&addr, "jobs_recovered_total"), recovered as u64);

    coordinator.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn full_queue_says_503_with_retry_after() {
    let dir = tempdir("busy");
    let coordinator = Coordinator::start(CoordinatorConfig {
        queue_depth: 1,
        retry_after_s: 7,
        ..fast_config(&dir)
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let spec = small_spec();

    // Four shards cannot fit a one-slot queue: refused immediately,
    // with honest retry advice — not accepted-then-stalled.
    let json = spec.to_json();
    let body = format!("{},\"shards\":4}}", &json[..json.len() - 1]);
    let refused = client::request_full(&addr, "POST", "/fleet", &body).expect("request");
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("7"));
    assert!(refused.body.contains("queue full"));

    // One shard fits.
    let accepted = client::fleet_submit(&addr, &spec, 1).expect("submit");
    assert_eq!(accepted.status, "queued");
    // Now the queue is full: a different spec is refused too.
    let mut other = spec.clone();
    other.sample = Some((8, 4));
    match client::fleet_submit(&addr, &other, 1) {
        Err(verifd::ClientError::Http { status: 503, .. }) => {}
        other => panic!("expected 503, got {other:?}"),
    }
    assert_eq!(stat(&addr, "rejected_busy"), 2);
    assert_eq!(stat(&addr, "queue_depth"), 1);

    coordinator.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn coordinator_drain_file_resubmits_on_startup() {
    let dir = tempdir("drain");
    let config = fast_config(&dir);
    let coordinator = Coordinator::start(config.clone()).expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let base = small_spec();

    // No runners: the submission sits queued; shutdown drains it.
    client::fleet_submit(&addr, &base, 2).expect("submit");
    let drained = coordinator.shutdown().expect("shutdown");
    assert_eq!(drained, 1, "one incomplete campaign drained");
    let drain_file = dir.join("drain.jsonl");
    assert!(drain_file.exists(), "drain journal written");

    // Startup re-enqueues it automatically — no manual resubmission —
    // and a runner then completes it.
    let revived = Coordinator::start(config).expect("restart coordinator");
    let addr = revived.addr().to_string();
    assert!(!drain_file.exists(), "drain journal consumed");
    assert_eq!(stat(&addr, "drain_resubmitted"), 1);
    let resubmitted = client::fleet_submit(&addr, &base, 2).expect("idempotent resubmit");
    let runner = Runner::start(runner_config(&addr, &dir, "r")).expect("start runner");
    let status = client::fleet_wait(&addr, resubmitted.id).expect("wait");
    assert_eq!(status.status, "done");
    let local = base.to_campaign().try_run(2).expect("local run");
    assert_eq!(status.campaign.expect("merged").result, local);

    runner.stop();
    revived.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_drain_file_resubmits_on_startup() {
    use verifd::{Server, ServerConfig};
    let dir = tempdir("server-drain");
    let drain = dir.join("drain.jsonl");
    // Zero workers: everything queues; shutdown drains it all.
    let server = Server::start(ServerConfig {
        workers: 0,
        drain_path: Some(drain.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.addr().to_string();
    let mut specs = Vec::new();
    for seed in [11, 12] {
        let mut spec = small_spec();
        spec.sample = Some((8, seed));
        client::submit(&addr, &spec).expect("submit");
        specs.push(spec);
    }
    assert_eq!(server.shutdown().expect("shutdown"), 2);

    // The restart picks the drained specs up and runs them without any
    // client involvement.
    let server = Server::start(ServerConfig {
        workers: 1,
        drain_path: Some(drain.clone()),
        ..ServerConfig::default()
    })
    .expect("rebind");
    let addr = server.addr().to_string();
    assert!(!drain.exists(), "drain journal consumed");
    assert_eq!(stat(&addr, "drain_resubmitted"), 2);
    wait_for_stat(&addr, "completed", 2);
    // Resubmitting one of them hits the cache the recovered jobs filled.
    let reply = client::submit(&addr, &specs[0]).expect("resubmit");
    assert!(reply.cached, "recovered job populated the cache");
    let result = client::wait(&addr, reply.id).expect("recovered job result");
    let local = specs[0].to_campaign().try_run(1).expect("local");
    assert_eq!(result.result, local);
    server.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_shard_poisons_and_the_campaign_degrades() {
    let dir = tempdir("poison");
    let coordinator = Coordinator::start(CoordinatorConfig {
        max_attempts: 1,
        ..fast_config(&dir)
    })
    .expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let base = small_spec();

    let submitted = client::fleet_submit(&addr, &base, 2).expect("submit");
    // The holder takes shard 0 and dies; with a one-attempt budget the
    // expiry poisons the shard instead of re-queuing it.
    let holder = Runner::start(RunnerConfig {
        hold_ms: 120_000,
        ..runner_config(&addr, &dir, "holder")
    })
    .expect("start holder");
    wait_for_stat(&addr, "leases_active", 1);
    holder.kill();
    let worker = Runner::start(runner_config(&addr, &dir, "worker")).expect("start worker");

    // The campaign terminates *degraded* — it does not hang, and it
    // says exactly what is missing.
    let status = client::fleet_wait(&addr, submitted.id).expect("wait");
    assert_eq!(status.status, "degraded");
    assert_eq!(status.missing, vec![0]);
    assert_eq!((status.done, status.total), (1, 2));
    assert!(status.campaign.is_none(), "no merge without every shard");
    assert_eq!(stat(&addr, "shards_poisoned"), 1);

    // The shard that did complete is still bit-identical to its local
    // counterpart — degradation never means wrong.
    let shard1 = client::fleet_shard(&addr, submitted.id, 1).expect("stored shard");
    let mut sharded = base.clone();
    sharded.shard = Some((1, 2));
    let local = sharded.to_campaign().try_run(2).expect("local shard run");
    assert_eq!(shard1.result, local);

    worker.stop();
    coordinator.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn progress_watch_streams_chunks_until_terminal() {
    let dir = tempdir("watch");
    let coordinator = Coordinator::start(fast_config(&dir)).expect("bind coordinator");
    let addr = coordinator.addr().to_string();
    let base = small_spec();

    let submitted = client::fleet_submit(&addr, &base, 2).expect("submit");
    let runner = Runner::start(runner_config(&addr, &dir, "r")).expect("start runner");
    let mut lines = Vec::new();
    let status = client::fleet_watch(&addr, submitted.id, &mut |line| {
        lines.push(line.to_string());
    })
    .expect("watch");
    assert_eq!(status.status, "done");
    // The stream emitted monotone progress lines before the final
    // status line.
    assert!(lines.len() >= 2, "progress then final: {lines:?}");
    let mut last_done = 0;
    for line in &lines[..lines.len() - 1] {
        let v = fault_inject::wire::Json::parse(line).expect("progress line parses");
        let done = v.get_u64("done").expect("done");
        assert!(done >= last_done, "monotone progress: {lines:?}");
        last_done = done;
        assert_eq!(v.get_u64("total"), Some(2));
    }
    assert_eq!(last_done, 2);

    // An unknown id is a clean 404, not a hung stream.
    match client::fleet_watch(&addr, 999, &mut |_| {}) {
        Err(verifd::ClientError::Http { status: 404, .. }) => {}
        other => panic!("expected 404, got {other:?}"),
    }

    runner.stop();
    coordinator.shutdown().expect("shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
