//! End-to-end smoke tests: a real `verifd` on loopback, driven through
//! the real client.

use fault_inject::{CorrelationSpec, InjectionInstant, PredictRequest, Target};
use rtl_sim::FaultKind;
use verifd::{client, CampaignSpec, Server, ServerConfig};
use workloads::Benchmark;

fn small_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    spec.sample = Some((8, 3));
    spec.injection = InjectionInstant::Fraction(0.25);
    spec
}

fn start(workers: usize, drain: Option<std::path::PathBuf>) -> (Server, String) {
    let server = Server::start(ServerConfig {
        workers,
        drain_path: drain,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    (server, addr)
}

#[test]
fn resubmitted_spec_is_served_from_cache_without_simulating() {
    let (server, addr) = start(1, None);
    let spec = small_spec();

    let first = client::submit(&addr, &spec).expect("submit");
    assert!(!first.cached);
    // The service answers /healthz while the campaign runs: the accept
    // thread never blocks on a simulation.
    assert!(!client::healthz(&addr).expect("healthz during run"));
    let first_result = client::wait(&addr, first.id).expect("first run");

    let cycles_after_first = client::stats(&addr)
        .expect("stats")
        .get_u64("cycles_simulated_total")
        .expect("counter");
    assert!(cycles_after_first > 0, "the first run simulated something");

    let second = client::submit(&addr, &spec).expect("resubmit");
    assert!(second.cached, "identical spec must hit the cache");
    assert_eq!(second.status, "done");
    assert_eq!(second.id, first.id);
    let second_result = client::wait(&addr, second.id).expect("cached fetch");

    // Bit-identical: the canonical wire form is byte-stable.
    assert_eq!(second_result.to_json(), first_result.to_json());

    // Zero simulated cycles for the hit, and the counters agree.
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(
        stats.get_u64("cycles_simulated_total"),
        Some(cycles_after_first),
        "a cache hit must not simulate a cycle"
    );
    assert_eq!(stats.get_u64("cache_hits"), Some(1));
    assert_eq!(stats.get_u64("cache_misses"), Some(1));

    server.shutdown().expect("shutdown");
}

#[test]
fn sharded_submissions_merge_to_the_unsharded_result() {
    let (server, addr) = start(2, None);
    let base = small_spec();

    let ids: Vec<u64> = (0..2)
        .map(|index| {
            let mut shard = base.clone();
            shard.shard = Some((index, 2));
            client::submit(&addr, &shard).expect("submit shard").id
        })
        .collect();
    for &id in &ids {
        client::wait(&addr, id).expect("shard run");
    }
    let merged = client::merge(&addr, &ids).expect("merge");

    // The merged shards equal the unsharded campaign bit-for-bit,
    // records and stats both.
    let local = base.to_campaign().try_run(2).expect("local run");
    assert_eq!(merged.result, local);
    assert_eq!(merged.fingerprint, base.fingerprint());

    // A shard of a *different* campaign is refused with a structured 409.
    let mut foreign = base.clone();
    foreign.benchmark = Benchmark::Tblook;
    foreign.shard = Some((0, 2));
    let foreign_id = client::submit(&addr, &foreign).expect("submit foreign").id;
    client::wait(&addr, foreign_id).expect("foreign run");
    match client::merge(&addr, &[foreign_id, ids[1]]) {
        Err(verifd::ClientError::Http { status: 409, body }) => {
            assert!(
                body.contains("fingerprint"),
                "names the mismatched field: {body}"
            );
        }
        other => panic!("expected a 409 refusal, got {other:?}"),
    }

    server.shutdown().expect("shutdown");
}

#[test]
fn transient_campaigns_share_one_golden_run() {
    let (server, addr) = start(1, None);

    // A transient sweep instant: flips at 40% of the golden run, with a
    // stride grid thickening the checkpoint pool.
    let mut transient = small_spec();
    transient.kinds = vec![FaultKind::TransientFlip];
    transient.injection = InjectionInstant::Fraction(0.4);
    transient.checkpoint_stride = Some(10_000);

    let first = client::submit(&addr, &transient).expect("submit");
    let first_result = client::wait(&addr, first.id).expect("transient run");
    // The service result matches a local run of the same spec bit-for-bit.
    let local = transient.to_campaign().try_run(1).expect("local run");
    assert_eq!(first_result.result, local);
    assert_eq!(first_result.result.stats().full_reexecutions, 0);
    assert!(first_result.result.stats().checkpoints_taken > 0);

    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stats.get_u64("golden_cache_misses"), Some(1));
    assert_eq!(stats.get_u64("golden_cache_hits"), Some(0));

    // A different instant on the same workload re-uses the cached golden
    // run instead of re-executing it.
    let mut second = transient.clone();
    second.injection = InjectionInstant::Fraction(0.7);
    let reply = client::submit(&addr, &second).expect("submit");
    assert!(!reply.cached, "different instant is a different campaign");
    client::wait(&addr, reply.id).expect("second run");

    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stats.get_u64("golden_cache_hits"), Some(1));
    assert_eq!(stats.get_u64("golden_cache_misses"), Some(1));
    assert_eq!(stats.get_u64("golden_cache_entries"), Some(1));

    // A parity-armed spec changes the golden classification config and
    // must not share the cached run.
    let mut parity = transient.clone();
    parity.safety.parity = true;
    let reply = client::submit(&addr, &parity).expect("submit");
    client::wait(&addr, reply.id).expect("parity run");
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stats.get_u64("golden_cache_misses"), Some(2));
    assert_eq!(stats.get_u64("golden_cache_entries"), Some(2));

    server.shutdown().expect("shutdown");
}

#[test]
fn correlation_sweep_fits_a_model_and_predictions_cost_nothing() {
    let (server, addr) = start(2, None);

    // A tiny two-cell sweep: the synthetic benchmarks have cheap golden
    // runs and distinct diversities, enough for a well-defined fit.
    let mut sweep = CorrelationSpec::new();
    sweep.benchmarks = vec![Benchmark::Membench, Benchmark::Intbench];
    sweep.sample = Some((6, 0xc0ffee));

    let reply = client::correlate(&addr, &sweep).expect("correlate");
    assert!(!reply.cached);
    let report = client::wait_report(&addr, reply.id).expect("fitted report");
    assert_eq!(report.fingerprint, sweep.fingerprint());
    assert!(report.best_domain().model.r2.is_finite());
    // The report matches a local run of the same sweep bit for bit.
    let local = sweep.run_report(2).expect("local sweep");
    assert_eq!(report.to_json(), local.to_json());

    let stats = client::stats(&addr).expect("stats");
    let cycles_after_sweep = stats.get_u64("cycles_simulated_total").expect("counter");
    assert!(cycles_after_sweep > 0);
    assert_eq!(stats.get_u64("models_cached"), Some(1));

    // Predictions — by histogram and by swept label — answer from the
    // cached model without simulating a cycle.
    let by_histogram = PredictRequest::from_histogram(vec![
        ("add".to_string(), 500),
        ("bne".to_string(), 40),
        ("ld".to_string(), 80),
        ("st".to_string(), 60),
    ]);
    let p = client::predict(&addr, &by_histogram).expect("predict");
    assert!((0.0..=1.0).contains(&p.pf), "Pf = {}", p.pf);
    assert_eq!(p.diversity, 4);
    assert_eq!(p.fingerprint, sweep.fingerprint());

    let by_label = client::predict(&addr, &PredictRequest::from_benchmark("intbench"))
        .expect("predict by label");
    assert!((0.0..=1.0).contains(&by_label.pf));
    assert!(by_label.diversity > 0, "diversity comes from the sweep");

    // Resubmitting the identical sweep is a cache hit.
    let again = client::correlate(&addr, &sweep).expect("resubmit");
    assert!(again.cached);
    assert_eq!(again.id, reply.id);

    let stats = client::stats(&addr).expect("stats");
    assert_eq!(
        stats.get_u64("cycles_simulated_total"),
        Some(cycles_after_sweep),
        "predictions and cache hits must not simulate"
    );
    assert_eq!(stats.get_u64("predictions"), Some(2));

    // An unknown label and an unknown model are clean 404s.
    match client::predict(&addr, &PredictRequest::from_benchmark("puwmod")) {
        Err(verifd::ClientError::Http { status: 404, .. }) => {}
        other => panic!("expected 404 for unswept label, got {other:?}"),
    }
    let mut foreign = PredictRequest::from_benchmark("intbench");
    foreign.fingerprint = Some("corr-0000000000000000".to_string());
    match client::predict(&addr, &foreign) {
        Err(verifd::ClientError::Http { status: 404, .. }) => {}
        other => panic!("expected 404 for unknown model, got {other:?}"),
    }

    server.shutdown().expect("shutdown");
}

#[test]
fn golden_store_deduplicates_across_different_specs() {
    let (server, addr) = start(1, None);

    // A campaign over membench, then a correlation sweep whose membench
    // cell generates the identical program image: the sweep must reuse
    // the campaign's golden capture (and vice versa for intbench).
    let mut campaign = CampaignSpec::new(Benchmark::Membench, Target::IntegerUnit);
    campaign.kinds = vec![FaultKind::StuckAt1];
    campaign.sample = Some((4, 9));
    let reply = client::submit(&addr, &campaign).expect("submit");
    client::wait(&addr, reply.id).expect("campaign run");

    let stats = client::stats(&addr).expect("stats");
    assert_eq!(stats.get_u64("golden_cache_misses"), Some(1));
    assert_eq!(stats.get_u64("golden_store_hits"), Some(0));

    // A different seed: a different campaign spec (different config
    // fingerprint) over the same workload image (same workload hash).
    let mut sweep = CorrelationSpec::new();
    sweep.benchmarks = vec![Benchmark::Membench, Benchmark::Intbench];
    sweep.sample = Some((4, 10));
    let reply = client::correlate(&addr, &sweep).expect("correlate");
    client::wait_report(&addr, reply.id).expect("report");

    let stats = client::stats(&addr).expect("stats");
    // The membench cell hit the campaign's capture — a cross-spec store
    // hit; only intbench needed a fresh one.
    assert_eq!(stats.get_u64("golden_cache_misses"), Some(2));
    assert!(stats.get_u64("golden_store_hits").expect("counter") >= 1);
    assert_eq!(stats.get_u64("golden_cache_entries"), Some(2));

    server.shutdown().expect("shutdown");
}

#[test]
fn sharded_correlation_merges_into_a_served_model() {
    let (server, addr) = start(2, None);
    let mut sweep = CorrelationSpec::new();
    sweep.benchmarks = vec![Benchmark::Membench, Benchmark::Intbench];
    sweep.sample = Some((6, 0xc0ffee));

    let ids: Vec<u64> = (0..2)
        .map(|index| {
            let mut shard = sweep.clone();
            shard.shard = Some((index, 2));
            client::correlate(&addr, &shard)
                .expect("correlate shard")
                .id
        })
        .collect();
    for &id in &ids {
        // Shards finish as partials (no report of their own).
        loop {
            let (status, body) =
                client::request(&addr, "GET", &format!("/campaign/{id}"), "").expect("poll");
            assert_eq!(status, 200);
            if body.contains("\"status\":\"done\"") {
                assert!(body.contains("\"shard\":"), "partial carries its shard");
                break;
            }
            assert!(!body.contains("\"status\":\"failed\""), "{body}");
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
    }
    let body = format!(
        "{{\"ids\":[{}]}}",
        ids.iter()
            .map(u64::to_string)
            .collect::<Vec<String>>()
            .join(",")
    );
    let (status, merged) = client::request(&addr, "POST", "/merge", &body).expect("merge");
    assert_eq!(status, 200, "{merged}");
    // Bit-identical to the local unsharded sweep, and immediately
    // servable: the merge registered the fitted model.
    let local = sweep.run_report(2).expect("local sweep");
    assert_eq!(merged, local.to_json());
    let p = client::predict(&addr, &PredictRequest::from_benchmark("membench"))
        .expect("predict after merge");
    assert_eq!(p.fingerprint, sweep.fingerprint());

    server.shutdown().expect("shutdown");
}

#[test]
fn graceful_shutdown_journals_the_queued_specs() {
    let dir = std::env::temp_dir().join(format!("verifd-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let drain = dir.join("drain.jsonl");
    // Zero workers: everything queues, nothing runs — the drain must
    // capture all of it.
    let (server, addr) = start(0, Some(drain.clone()));

    let mut specs = Vec::new();
    for seed in [1, 2, 3] {
        let mut spec = small_spec();
        spec.sample = Some((8, seed));
        let reply = client::submit(&addr, &spec).expect("submit");
        assert_eq!(reply.status, "queued");
        specs.push(spec);
    }

    let drained = server.shutdown().expect("shutdown");
    assert_eq!(drained, 3);

    let journal = std::fs::read_to_string(&drain).expect("drain file");
    let recovered: Vec<CampaignSpec> = journal
        .lines()
        .map(|line| CampaignSpec::parse(line).expect("drained spec parses"))
        .collect();
    assert_eq!(recovered, specs, "the drain journal preserves the queue");

    // A drained spec resubmits cleanly to a fresh server: the round trip
    // loses nothing the campaign engine needs.
    assert_eq!(recovered[0].to_json(), specs[0].to_json());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_submissions_and_unknown_routes_are_refused() {
    let (server, addr) = start(0, None);

    match client::request(&addr, "POST", "/campaign", "{\"benchmark\":\"rspeed\"}") {
        Ok((400, body)) => assert!(body.contains("target"), "{body}"),
        other => panic!("expected 400, got {other:?}"),
    }
    match client::request(&addr, "GET", "/nope", "") {
        Ok((404, _)) => {}
        other => panic!("expected 404, got {other:?}"),
    }
    match client::request(&addr, "DELETE", "/campaign", "") {
        Ok((405, _)) => {}
        other => panic!("expected 405, got {other:?}"),
    }
    match client::request(&addr, "GET", "/campaign/999", "") {
        Ok((404, _)) => {}
        other => panic!("expected 404 for unknown id, got {other:?}"),
    }

    server.shutdown().expect("shutdown");
}
