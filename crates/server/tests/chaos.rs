//! Chaos schedules never produce wrong results.
//!
//! Two chaos-armed runners work a sharded campaign while their injector
//! randomly crashes leases mid-shard (uploading truncated journals),
//! stalls them past the TTL, or abandons them outright. The property
//! under test, proptest-style over several seeds: every chaos schedule
//! ends in a *terminal* campaign whose completed shards are bit-identical
//! to their local single-process counterparts — chaos may cost retries
//! or, at worst, poisoned shards (a **degraded** campaign), but it can
//! never change a byte of a result that is reported.

use fault_inject::{InjectionInstant, Target};
use rtl_sim::FaultKind;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use verifd::{client, CampaignSpec, Coordinator, CoordinatorConfig, Runner, RunnerConfig};
use workloads::Benchmark;

const SHARDS: u32 = 3;

fn chaos_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    spec.kinds = vec![FaultKind::StuckAt1, FaultKind::StuckAt0];
    spec.sample = Some((6, 3));
    spec.injection = InjectionInstant::Fraction(0.25);
    spec
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("verifd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Wait for the campaign to go terminal, with a hard timeout — a chaos
/// schedule that hangs the fleet is itself a failure.
fn wait_terminal(addr: &str, id: u64) -> verifd::FleetStatus {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = client::fleet_status(addr, id).expect("status");
        if status.status == "done" || status.status == "degraded" {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "campaign not terminal before the deadline (status {})",
            status.status
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn intermittent_chaos_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
    spec.kinds = vec![
        FaultKind::IntermittentStuck {
            level: true,
            period: 400,
            duty: 100,
            phase: 0,
        },
        FaultKind::TransientBurst {
            flips: 3,
            spacing: 80,
        },
    ];
    spec.sample = Some((5, 11));
    spec.injection = InjectionInstant::Fraction(0.3);
    spec
}

/// The time-varying chaos property: crashes, stalls and truncated-journal
/// uploads mid-shard may never change a reported byte of an intermittent
/// campaign. A re-leased shard resumes from its partial journal, so this
/// is exactly where a restore that mis-reconstructed a duty-cycle window
/// or a flip train would surface as divergence.
#[test]
fn no_chaos_schedule_changes_an_intermittent_byte() {
    run_chaos_schedules(&intermittent_chaos_spec(), &[23u64]);
}

#[test]
fn no_chaos_schedule_produces_wrong_results() {
    run_chaos_schedules(&chaos_spec(), &[7u64, 19, 42]);
}

fn run_chaos_schedules(base: &CampaignSpec, seeds: &[u64]) {
    // The ground truth each stored shard must match, computed once.
    let local_shards: Vec<_> = (0..SHARDS)
        .map(|index| {
            let mut sharded = base.clone();
            sharded.shard = Some((index, SHARDS));
            sharded.to_campaign().try_run(2).expect("local shard run")
        })
        .collect();
    let local_full = base.to_campaign().try_run(2).expect("local full run");

    for &seed in seeds {
        let dir = tempdir(&format!("seed{seed}"));
        let coordinator = Coordinator::start(CoordinatorConfig {
            lease_ttl_ms: 300,
            heartbeat_ms: 50,
            max_attempts: 6,
            backoff_base_ms: 10,
            backoff_cap_ms: 50,
            poll_ms: 25,
            store_path: dir.join("store"),
            drain_path: None,
            ..CoordinatorConfig::default()
        })
        .expect("bind coordinator");
        let addr = coordinator.addr().to_string();
        let submitted = client::fleet_submit(&addr, base, SHARDS).expect("submit");

        let runners: Vec<Runner> = (0..2)
            .map(|i| {
                Runner::start(RunnerConfig {
                    coordinator: addr.clone(),
                    name: format!("chaos-{seed}-{i}"),
                    job_threads: 2,
                    workdir: dir.join(format!("runner-{i}")),
                    chaos: Some(seed.wrapping_add(i)),
                    hold_ms: 0,
                })
                .expect("start chaos runner")
            })
            .collect();

        let status = wait_terminal(&addr, submitted.id);
        // Terminal, never hung; every reported shard is bit-identical
        // to its single-process counterpart.
        for index in 0..SHARDS {
            if status.missing.contains(&index) {
                continue;
            }
            let stored = client::fleet_shard(&addr, submitted.id, index).expect("stored shard");
            assert_eq!(
                stored.result, local_shards[index as usize],
                "seed {seed}: shard {index} diverged under chaos"
            );
            assert_eq!(
                stored.result.stats().resumed,
                0,
                "recovery counter normalized"
            );
        }
        if status.status == "done" {
            let merged = status.campaign.as_ref().expect("merged result");
            assert_eq!(
                merged.result, local_full,
                "seed {seed}: merged campaign diverged under chaos"
            );
        } else {
            assert!(
                !status.missing.is_empty(),
                "degraded campaigns name their missing shards"
            );
        }

        for runner in runners {
            runner.stop();
        }
        coordinator.shutdown().expect("shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
