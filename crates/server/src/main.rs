//! The `verifd` binary: the campaign service and the fleet roles.
//!
//! - `verifd [flags]` — the single-process service; blocks until a
//!   `POST /shutdown` stops it.
//! - `verifd coordinator [flags]` — the fleet coordinator (lease table,
//!   retry/backoff, persistent shard store).
//! - `verifd runner [flags]` — a fleet runner; works for a coordinator
//!   until the fleet drains.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use verifd::{Coordinator, CoordinatorConfig, Runner, RunnerConfig, Server, ServerConfig};

const USAGE: &str = "usage: verifd [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                     [--job-threads N] [--drain PATH]
       verifd coordinator [--addr HOST:PORT] [--queue-depth N] [--lease-ttl-ms N] \
                     [--heartbeat-ms N] [--max-attempts N] [--backoff-ms N] \
                     [--backoff-cap-ms N] [--store PATH] [--drain PATH]
       verifd runner [--addr HOST:PORT] [--name NAME] [--job-threads N] \
                     [--workdir PATH] [--chaos SEED]";

/// Default bind for the fleet coordinator — one port above the plain
/// service — and the default coordinator a runner works for.
const DEFAULT_FLEET_ADDR: &str = "127.0.0.1:4613";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4612".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs a positive integer".to_string())?;
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|_| "--job-threads needs a positive integer".to_string())?;
            }
            "--drain" => config.drain_path = Some(PathBuf::from(value("--drain")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if config.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".to_string());
    }
    if config.job_threads == 0 {
        return Err("--job-threads must be at least 1".to_string());
    }
    Ok(config)
}

fn parse_coordinator_args(args: &[String]) -> Result<CoordinatorConfig, String> {
    let mut config = CoordinatorConfig {
        addr: DEFAULT_FLEET_ADDR.to_string(),
        ..CoordinatorConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        let parse_ms = |name: &str, raw: String| -> Result<u64, String> {
            raw.parse()
                .map_err(|_| format!("{name} needs an integer, got `{raw}`\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs a positive integer".to_string())?;
            }
            "--lease-ttl-ms" => {
                config.lease_ttl_ms = parse_ms("--lease-ttl-ms", value("--lease-ttl-ms")?)?;
            }
            "--heartbeat-ms" => {
                config.heartbeat_ms = parse_ms("--heartbeat-ms", value("--heartbeat-ms")?)?;
            }
            "--max-attempts" => {
                config.max_attempts = parse_ms("--max-attempts", value("--max-attempts")?)?;
            }
            "--backoff-ms" => {
                config.backoff_base_ms = parse_ms("--backoff-ms", value("--backoff-ms")?)?;
            }
            "--backoff-cap-ms" => {
                config.backoff_cap_ms = parse_ms("--backoff-cap-ms", value("--backoff-cap-ms")?)?;
            }
            "--store" => config.store_path = PathBuf::from(value("--store")?),
            "--drain" => config.drain_path = Some(PathBuf::from(value("--drain")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown coordinator flag `{other}`\n{USAGE}")),
        }
    }
    if config.queue_depth == 0 || config.max_attempts == 0 || config.lease_ttl_ms == 0 {
        return Err(
            "--queue-depth, --max-attempts and --lease-ttl-ms must be at least 1".to_string(),
        );
    }
    Ok(config)
}

fn parse_runner_args(args: &[String]) -> Result<RunnerConfig, String> {
    let mut config = RunnerConfig {
        coordinator: DEFAULT_FLEET_ADDR.to_string(),
        ..RunnerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.coordinator = value("--addr")?,
            "--name" => config.name = value("--name")?,
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|_| "--job-threads needs a positive integer".to_string())?;
            }
            "--workdir" => config.workdir = PathBuf::from(value("--workdir")?),
            "--chaos" => {
                config.chaos = Some(
                    value("--chaos")?
                        .parse()
                        .map_err(|_| "--chaos needs an integer seed".to_string())?,
                );
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown runner flag `{other}`\n{USAGE}")),
        }
    }
    if config.job_threads == 0 {
        return Err("--job-threads must be at least 1".to_string());
    }
    Ok(config)
}

fn run_server(args: &[String]) -> Result<(), String> {
    let config = parse_args(args)?;
    let server = Server::start(config).map_err(|e| format!("verifd: cannot start: {e}"))?;
    println!("verifd listening on {}", server.addr());
    server.join();
    Ok(())
}

fn run_coordinator(args: &[String]) -> Result<(), String> {
    let config = parse_coordinator_args(args)?;
    let coordinator =
        Coordinator::start(config).map_err(|e| format!("verifd: cannot start coordinator: {e}"))?;
    println!("verifd coordinator listening on {}", coordinator.addr());
    coordinator.join();
    Ok(())
}

fn run_runner(args: &[String]) -> Result<(), String> {
    let config = parse_runner_args(args)?;
    let coordinator = config.coordinator.clone();
    let runner = Runner::start(config).map_err(|e| format!("verifd: cannot start runner: {e}"))?;
    println!(
        "verifd runner {} working for {coordinator}",
        runner.runner_id()
    );
    runner.join();
    println!("verifd runner: fleet drained, exiting");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("coordinator") => run_coordinator(&args[1..]),
        Some("runner") => run_runner(&args[1..]),
        _ => run_server(&args),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
