//! The `verifd` binary: parse flags, start the service, block until a
//! `POST /shutdown` stops it.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use verifd::{Server, ServerConfig};

const USAGE: &str = "usage: verifd [--addr HOST:PORT] [--workers N] [--queue-depth N] \
                     [--job-threads N] [--drain PATH]";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4612".to_string(),
        ..ServerConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth needs a positive integer".to_string())?;
            }
            "--job-threads" => {
                config.job_threads = value("--job-threads")?
                    .parse()
                    .map_err(|_| "--job-threads needs a positive integer".to_string())?;
            }
            "--drain" => config.drain_path = Some(PathBuf::from(value("--drain")?)),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if config.queue_depth == 0 {
        return Err("--queue-depth must be at least 1".to_string());
    }
    if config.job_threads == 0 {
        return Err("--job-threads must be at least 1".to_string());
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("verifd: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("verifd listening on {}", server.addr());
    server.join();
    ExitCode::SUCCESS
}
