//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! One request per connection (`Connection: close`), bodies sized by
//! `Content-Length`, no keep-alive. The one extension beyond that is
//! server-to-client `Transfer-Encoding: chunked`, which the coordinator
//! uses to stream campaign progress lines as shards land. That subset is
//! all the campaign service needs, and it keeps the crate std-only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server accepts (a merge of many shard ids is
/// tiny; campaign specs are smaller still).
pub const MAX_BODY: usize = 1 << 26;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request path (query strings are not split off; the service
    /// does not use them).
    pub path: String,
    /// The body, empty when no `Content-Length` was sent.
    pub body: String,
}

/// Read one request from the stream.
///
/// # Errors
///
/// Fails on I/O errors, a malformed request line, a non-numeric or
/// oversized `Content-Length`, or a body that is not UTF-8.
pub fn read_request(stream: &TcpStream) -> std::io::Result<Request> {
    let bad = |reason: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no path"))?;
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        body: String::new(),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(bad("body too large"));
                }
            }
        }
    }
    if content_length == 0 {
        return Ok(request);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        body: String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?,
        ..request
    })
}

/// The reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one JSON response and flush it. The connection is closed by the
/// caller dropping the stream.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, &[], body)
}

/// [`write_response`] with extra response headers (each a `(name, value)`
/// pair, e.g. `("retry-after", "2")` on a 503).
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {}\r\n", reason(status));
    for (name, value) in headers {
        let _ = std::fmt::Write::write_fmt(&mut head, format_args!("{name}: {value}\r\n"));
    }
    let _ = std::fmt::Write::write_fmt(
        &mut head,
        format_args!(
            "content-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            body.len()
        ),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Start a chunked response: status line plus
/// `Transfer-Encoding: chunked` headers, no body yet. Follow with any
/// number of [`write_chunk`] calls and one [`finish_chunks`].
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_chunked_head(stream: &mut TcpStream, status: u16) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         transfer-encoding: chunked\r\nconnection: close\r\n\r\n",
        reason(status),
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

/// Write one chunk of a chunked response and flush it so the client sees
/// it immediately. Empty data is skipped (a zero-length chunk would
/// terminate the stream).
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_chunk(stream: &mut TcpStream, data: &str) -> std::io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    stream.write_all(format!("{:x}\r\n", data.len()).as_bytes())?;
    stream.write_all(data.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

/// Terminate a chunked response (the zero-length chunk).
///
/// # Errors
///
/// Fails on I/O errors.
pub fn finish_chunks(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Write one request onto a client stream and flush it.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: verifd\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// One parsed response: status, lower-cased headers, full body (chunked
/// bodies arrive reassembled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// All response headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (chunked transfer decoded).
    pub body: String,
}

impl Response {
    /// Look up a header by (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read one response off a client stream, returning `(status, body)`.
///
/// # Errors
///
/// Fails on I/O errors or a malformed status line / `Content-Length`.
pub fn read_response(stream: &TcpStream) -> std::io::Result<(u16, String)> {
    let response = read_response_streaming(stream, &mut |_| {})?;
    Ok((response.status, response.body))
}

/// Read one full response off a client stream, headers included.
///
/// # Errors
///
/// As [`read_response`].
pub fn read_response_full(stream: &TcpStream) -> std::io::Result<Response> {
    read_response_streaming(stream, &mut |_| {})
}

/// Read one response, invoking `on_chunk` with each transfer chunk as it
/// arrives (for fixed-length and read-to-close bodies, `on_chunk` fires
/// once with the whole body). The returned [`Response`] still carries the
/// reassembled body.
///
/// # Errors
///
/// As [`read_response`], plus malformed chunk framing.
pub fn read_response_streaming(
    stream: &TcpStream,
    on_chunk: &mut dyn FnMut(&str),
) -> std::io::Result<Response> {
    let bad = |reason: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
    let utf8 = |buf: Vec<u8>| String::from_utf8(buf).map_err(|_| bad("body is not UTF-8"));
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
            }
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            }
            headers.push((name, value));
        }
    }
    let body = if chunked {
        let mut body = String::new();
        loop {
            let mut size_line = String::new();
            if reader.read_line(&mut size_line)? == 0 {
                return Err(bad("connection closed inside chunk framing"));
            }
            let size =
                usize::from_str_radix(size_line.trim(), 16).map_err(|_| bad("bad chunk size"))?;
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk)?;
            if &chunk[size..] != b"\r\n" {
                return Err(bad("chunk missing terminator"));
            }
            chunk.truncate(size);
            if size == 0 {
                break;
            }
            let chunk = utf8(chunk)?;
            on_chunk(&chunk);
            body.push_str(&chunk);
        }
        body
    } else {
        let buf = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader.read_exact(&mut buf)?;
                buf
            }
            // No length: the server closes the connection after the body.
            None => {
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        };
        let body = utf8(buf)?;
        if !body.is_empty() {
            on_chunk(&body);
        }
        body
    };
    Ok(Response {
        status,
        headers,
        body,
    })
}
