//! A deliberately small HTTP/1.1 layer over `std::net::TcpStream`.
//!
//! One request per connection (`Connection: close`), bodies sized by
//! `Content-Length` only, no chunked encoding, no keep-alive. That subset
//! is all the campaign service needs, and it keeps the crate std-only.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body the server accepts (a merge of many shard ids is
/// tiny; campaign specs are smaller still).
pub const MAX_BODY: usize = 1 << 26;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The method verb (`GET`, `POST`, …), as sent.
    pub method: String,
    /// The request path (query strings are not split off; the service
    /// does not use them).
    pub path: String,
    /// The body, empty when no `Content-Length` was sent.
    pub body: String,
}

/// Read one request from the stream.
///
/// # Errors
///
/// Fails on I/O errors, a malformed request line, a non-numeric or
/// oversized `Content-Length`, or a body that is not UTF-8.
pub fn read_request(stream: &TcpStream) -> std::io::Result<Request> {
    let bad = |reason: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no path"))?;
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        body: String::new(),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad("bad content-length"))?;
                if content_length > MAX_BODY {
                    return Err(bad("body too large"));
                }
            }
        }
    }
    if content_length == 0 {
        return Ok(request);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        body: String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?,
        ..request
    })
}

/// The reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one JSON response and flush it. The connection is closed by the
/// caller dropping the stream.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Write one request onto a client stream and flush it.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: verifd\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Read one response off a client stream, returning `(status, body)`.
///
/// # Errors
///
/// Fails on I/O errors or a malformed status line / `Content-Length`.
pub fn read_response(stream: &TcpStream) -> std::io::Result<(u16, String)> {
    let bad = |reason: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(bad("connection closed inside headers"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad content-length"))?,
                );
            }
        }
    }
    let body = match content_length {
        Some(n) => {
            let mut buf = vec![0u8; n];
            reader.read_exact(&mut buf)?;
            buf
        }
        // No length: the server closes the connection after the body.
        None => {
            let mut buf = Vec::new();
            reader.read_to_end(&mut buf)?;
            buf
        }
    };
    Ok((
        status,
        String::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?,
    ))
}
