//! The persistent content-addressed shard result store.
//!
//! One file per completed shard, named by the campaign's public
//! fingerprint plus the shard geometry and deadline — exactly the
//! components of [`crate::spec::CampaignSpec::cache_key`]. Identity is
//! the *address*: a shard simulated anywhere in the fleet lands at the
//! same path, so a second campaign over the same spec (same fingerprint)
//! is served from disk without simulating a cycle, and a duplicate
//! upload is detected as a dedup hit instead of a second write.
//!
//! Writes are atomic (temp file + rename in the same directory), so a
//! coordinator killed mid-write never leaves a torn result; a torn temp
//! file is invisible to reads and overwritten by the retry.

use fault_inject::wire::ShardResult;
use std::path::{Path, PathBuf};

/// The store: a directory of canonical `ShardResult` JSON files.
pub struct ResultStore {
    dir: PathBuf,
    /// Files written by this process (dedup hits excluded).
    puts: u64,
    /// Writes skipped because the address already held a result.
    dedup_hits: u64,
}

impl ResultStore {
    /// Open (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: &Path) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        Ok(ResultStore {
            dir: dir.to_path_buf(),
            puts: 0,
            dedup_hits: 0,
        })
    }

    /// The address of one shard result. The deadline is part of the
    /// address for the same reason it is part of the cache key: it can
    /// change the bytes of the result without changing the fingerprint.
    fn path(&self, fingerprint: &str, index: u32, count: u32, deadline_ms: Option<u64>) -> PathBuf {
        let deadline = match deadline_ms {
            Some(ms) => format!("d{ms}"),
            None => "dnone".to_string(),
        };
        self.dir
            .join(format!("{fingerprint}.{index}of{count}.{deadline}.json"))
    }

    /// Store one shard result. Returns `false` (and writes nothing) when
    /// the address already holds a result — the dedup hit the acceptance
    /// criteria count.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors writing the temp file or renaming it.
    pub fn put(&mut self, shard: &ShardResult, deadline_ms: Option<u64>) -> std::io::Result<bool> {
        let path = self.path(&shard.fingerprint, shard.index, shard.count, deadline_ms);
        if path.exists() {
            self.dedup_hits += 1;
            return Ok(false);
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, shard.to_json())?;
        std::fs::rename(&tmp, &path)?;
        self.puts += 1;
        Ok(true)
    }

    /// Fetch one shard result, `None` when absent. A present-but-corrupt
    /// file is also `None` — the caller re-simulates and the next put
    /// refuses to overwrite it, so corruption is surfaced by the dedup
    /// counter staying suspiciously high rather than by wrong bytes.
    pub fn get(
        &self,
        fingerprint: &str,
        index: u32,
        count: u32,
        deadline_ms: Option<u64>,
    ) -> Option<ShardResult> {
        let path = self.path(fingerprint, index, count, deadline_ms);
        let text = std::fs::read_to_string(path).ok()?;
        ShardResult::parse(&text).ok()
    }

    /// Files written by this process.
    pub fn puts(&self) -> u64 {
        self.puts
    }

    /// Writes skipped because the result already existed.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits
    }

    /// How many results the directory holds (any writer).
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn len(&self) -> std::io::Result<u64> {
        let mut n = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.path().extension().is_some_and(|ext| ext == "json") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the directory holds no results.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be read.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fault_inject::{CampaignResult, CampaignStats};

    fn shard(fingerprint: &str, index: u32, count: u32, cycles: u64) -> ShardResult {
        let stats = CampaignStats {
            cycles_simulated: cycles,
            ..CampaignStats::default()
        };
        ShardResult {
            fingerprint: fingerprint.to_string(),
            index,
            count,
            result: CampaignResult::with_stats(Vec::new(), stats),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("verifd-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips_and_dedups() {
        let dir = tempdir("roundtrip");
        let mut store = ResultStore::open(&dir).unwrap();
        assert!(store.is_empty().unwrap());
        let a = shard("aa-bb", 0, 2, 100);
        assert!(store.put(&a, None).unwrap());
        // Same address again: dedup hit, no second write.
        assert!(!store.put(&a, None).unwrap());
        assert_eq!((store.puts(), store.dedup_hits()), (1, 1));
        assert_eq!(store.get("aa-bb", 0, 2, None), Some(a.clone()));
        // Geometry and deadline are part of the address.
        assert_eq!(store.get("aa-bb", 1, 2, None), None);
        assert_eq!(store.get("aa-bb", 0, 2, Some(5)), None);
        assert!(store.put(&shard("aa-bb", 1, 2, 50), None).unwrap());
        assert!(store.put(&a, Some(5)).unwrap());
        assert_eq!(store.len().unwrap(), 3);
        // A fresh handle sees the persisted results (and dedups them).
        let mut reopened = ResultStore::open(&dir).unwrap();
        assert_eq!(reopened.get("aa-bb", 0, 2, None), Some(a.clone()));
        assert!(!reopened.put(&a, None).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_read_as_absent() {
        let dir = tempdir("corrupt");
        let store = ResultStore::open(&dir).unwrap();
        std::fs::write(dir.join("xx.0of1.dnone.json"), "not json").unwrap();
        assert_eq!(store.get("xx", 0, 1, None), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
