//! A small blocking client for the service, used by the `repro` CLI's
//! `submit`, `merge` and `fleet` verbs, by the fleet runner's protocol
//! side, and by the smoke tests.

use crate::coordinator::FleetStatus;
use crate::http::{
    read_response, read_response_full, read_response_streaming, write_request, Response,
};
use crate::spec::CampaignSpec;
use fault_inject::wire::fleet::{
    Ack, Complete, Fail, Heartbeat, LeaseReply, LeaseRequest, Register, Registered,
};
use fault_inject::wire::{Json, ShardResult};
use fault_inject::{CorrelationReport, CorrelationSpec, PredictRequest, Prediction};
use std::fmt;
use std::net::TcpStream;
use std::time::Duration;

/// What can go wrong talking to the service.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or broke mid-exchange.
    Io(std::io::Error),
    /// The service answered with a non-200 status.
    Http {
        /// The HTTP status code.
        status: u16,
        /// The response body (usually `{"error":…}`).
        body: String,
    },
    /// The service answered 200 with a body the client cannot parse.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Http { status, body } => {
                let detail = Json::parse(body)
                    .ok()
                    .and_then(|v| v.get_str("error").map(str::to_string))
                    .unwrap_or_else(|| body.clone());
                write!(f, "server said {status}: {detail}")
            }
            ClientError::Protocol(reason) => write!(f, "bad server reply: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The reply to a campaign submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReply {
    /// The job id to poll (or the cached job's id).
    pub id: u64,
    /// Whether the result was served from the cache.
    pub cached: bool,
    /// `"queued"`, or `"done"` on a cache hit.
    pub status: String,
}

/// The reply to a status poll.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReply {
    /// `"queued"`, `"running"`, `"done"`, `"failed"` or `"drained"`.
    pub status: String,
    /// The failure reason when `status == "failed"`.
    pub error: Option<String>,
    /// The result when `status == "done"`.
    pub result: Option<ShardResult>,
}

/// Issue one request and return `(status, body)` without interpreting
/// the status.
///
/// # Errors
///
/// Fails on connection or protocol-framing errors.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_request(&mut stream, method, path, body)?;
    Ok(read_response(&stream)?)
}

fn expect_200(addr: &str, method: &str, path: &str, body: &str) -> Result<Json, ClientError> {
    let (status, body) = request(addr, method, path, body)?;
    if status != 200 {
        return Err(ClientError::Http { status, body });
    }
    Json::parse(&body).map_err(ClientError::Protocol)
}

/// Submit a campaign spec.
///
/// # Errors
///
/// Fails on I/O errors, a refused spec (400), or a draining/full
/// server (503).
pub fn submit(addr: &str, spec: &CampaignSpec) -> Result<SubmitReply, ClientError> {
    let v = expect_200(addr, "POST", "/campaign", &spec.to_json())?;
    Ok(SubmitReply {
        id: v
            .get_u64("id")
            .ok_or_else(|| ClientError::Protocol("submit reply missing `id`".to_string()))?,
        cached: v.get_bool("cached").unwrap_or(false),
        status: v.get_str("status").unwrap_or("queued").to_string(),
    })
}

/// Poll one job's status.
///
/// # Errors
///
/// Fails on I/O errors or an unknown id (404).
pub fn status(addr: &str, id: u64) -> Result<StatusReply, ClientError> {
    let v = expect_200(addr, "GET", &format!("/campaign/{id}"), "")?;
    let result = match v.get("campaign") {
        Some(obj) => Some(ShardResult::from_obj(obj).map_err(ClientError::Protocol)?),
        None => None,
    };
    Ok(StatusReply {
        status: v
            .get_str("status")
            .ok_or_else(|| ClientError::Protocol("status reply missing `status`".to_string()))?
            .to_string(),
        error: v.get_str("error").map(str::to_string),
        result,
    })
}

/// Poll until a job is `done`, returning its result.
///
/// # Errors
///
/// Fails on I/O errors, or with [`ClientError::Protocol`] when the job
/// ends `failed` or `drained`.
pub fn wait(addr: &str, id: u64) -> Result<ShardResult, ClientError> {
    loop {
        let reply = status(addr, id)?;
        match reply.status.as_str() {
            "done" => {
                return reply
                    .result
                    .ok_or_else(|| ClientError::Protocol("done job carries no result".to_string()))
            }
            "failed" => {
                return Err(ClientError::Protocol(format!(
                    "campaign failed: {}",
                    reply.error.as_deref().unwrap_or("unknown reason")
                )))
            }
            "drained" => {
                return Err(ClientError::Protocol(
                    "campaign was drained before running".to_string(),
                ))
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Ask the service to merge completed shard jobs into one result.
///
/// # Errors
///
/// Fails on I/O errors, unknown/unfinished ids (400/404), or refused
/// fingerprint/geometry mismatches (409).
pub fn merge(addr: &str, ids: &[u64]) -> Result<ShardResult, ClientError> {
    let body = format!(
        "{{\"ids\":[{}]}}",
        ids.iter()
            .map(u64::to_string)
            .collect::<Vec<String>>()
            .join(",")
    );
    let v = expect_200(addr, "POST", "/merge", &body)?;
    ShardResult::from_obj(&v).map_err(ClientError::Protocol)
}

/// Submit a correlation sweep.
///
/// # Errors
///
/// Fails on I/O errors, a refused spec (400), or a draining/full
/// server (503).
pub fn correlate(addr: &str, spec: &CorrelationSpec) -> Result<SubmitReply, ClientError> {
    let v = expect_200(addr, "POST", "/correlate", &spec.to_json())?;
    Ok(SubmitReply {
        id: v
            .get_u64("id")
            .ok_or_else(|| ClientError::Protocol("correlate reply missing `id`".to_string()))?,
        cached: v.get_bool("cached").unwrap_or(false),
        status: v.get_str("status").unwrap_or("queued").to_string(),
    })
}

/// Poll until a correlation sweep is `done`, returning its fitted report.
///
/// # Errors
///
/// Fails on I/O errors, a failed or drained job, or a job that is not an
/// unsharded correlation sweep.
pub fn wait_report(addr: &str, id: u64) -> Result<CorrelationReport, ClientError> {
    loop {
        let v = expect_200(addr, "GET", &format!("/campaign/{id}"), "")?;
        match v.get_str("status").unwrap_or_default() {
            "done" => {
                let report = v.get("report").ok_or_else(|| {
                    ClientError::Protocol("done job carries no report".to_string())
                })?;
                return CorrelationReport::from_obj(report).map_err(ClientError::Protocol);
            }
            "failed" => {
                return Err(ClientError::Protocol(format!(
                    "correlation sweep failed: {}",
                    v.get_str("error").unwrap_or("unknown reason")
                )))
            }
            "drained" => {
                return Err(ClientError::Protocol(
                    "correlation sweep was drained before running".to_string(),
                ))
            }
            _ => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Ask the service for a prediction from its cached fitted model. The
/// service never simulates to answer this.
///
/// # Errors
///
/// Fails on I/O errors, a malformed request (400), or a service with no
/// applicable model (404).
pub fn predict(addr: &str, request: &PredictRequest) -> Result<Prediction, ClientError> {
    let v = expect_200(addr, "POST", "/predict", &request.to_json())?;
    Prediction::from_obj(&v).map_err(ClientError::Protocol)
}

/// Check the service is alive; returns `true` when it is draining.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn healthz(addr: &str) -> Result<bool, ClientError> {
    let v = expect_200(addr, "GET", "/healthz", "")?;
    Ok(v.get_bool("draining").unwrap_or(false))
}

/// Fetch the raw `/stats` object.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn stats(addr: &str) -> Result<Json, ClientError> {
    expect_200(addr, "GET", "/stats", "")
}

/// Ask the service to shut down gracefully; returns how many queued
/// jobs it drained.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn shutdown(addr: &str) -> Result<u64, ClientError> {
    let v = expect_200(addr, "POST", "/shutdown", "")?;
    Ok(v.get_u64("drained").unwrap_or(0))
}

/// Issue one request and return the full [`Response`] (status, headers,
/// body) without interpreting the status — the way to read `Retry-After`
/// off a 503.
///
/// # Errors
///
/// Fails on connection or protocol-framing errors.
pub fn request_full(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<Response, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_request(&mut stream, method, path, body)?;
    Ok(read_response_full(&stream)?)
}

/// The reply to a fleet campaign submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSubmitReply {
    /// The fleet campaign id to poll.
    pub id: u64,
    /// `"queued"`, or terminal right away when every shard was already
    /// in the store.
    pub status: String,
    /// How many shards were served from the store at submission.
    pub cached: u64,
}

/// Submit a campaign to the coordinator, cut into `shards` shards.
///
/// # Errors
///
/// Fails on I/O errors, a refused spec (400), or a full/draining
/// coordinator (503 — see [`request_full`] for its `Retry-After`).
pub fn fleet_submit(
    addr: &str,
    spec: &CampaignSpec,
    shards: u32,
) -> Result<FleetSubmitReply, ClientError> {
    let json = spec.to_json();
    let body = format!("{},\"shards\":{shards}}}", &json[..json.len() - 1]);
    let v = expect_200(addr, "POST", "/fleet", &body)?;
    Ok(FleetSubmitReply {
        id: v
            .get_u64("id")
            .ok_or_else(|| ClientError::Protocol("fleet reply missing `id`".to_string()))?,
        status: v.get_str("status").unwrap_or("queued").to_string(),
        cached: v.get_u64("cached").unwrap_or(0),
    })
}

/// Poll one fleet campaign's progress.
///
/// # Errors
///
/// Fails on I/O errors or an unknown id (404).
pub fn fleet_status(addr: &str, id: u64) -> Result<FleetStatus, ClientError> {
    let v = expect_200(addr, "GET", &format!("/campaign/{id}"), "")?;
    FleetStatus::from_obj(&v).map_err(ClientError::Protocol)
}

/// Poll until a fleet campaign is terminal (`done` or `degraded`).
///
/// # Errors
///
/// Fails on I/O errors or an unknown id.
pub fn fleet_wait(addr: &str, id: u64) -> Result<FleetStatus, ClientError> {
    loop {
        let status = fleet_status(addr, id)?;
        if status.status != "running" && status.status != "queued" {
            return Ok(status);
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Watch one fleet campaign over the chunked progress stream, invoking
/// `on_line` with each progress line as the coordinator emits it, until
/// the campaign is terminal. Returns the final status (the stream's last
/// line).
///
/// # Errors
///
/// Fails on I/O errors, an unknown id (404), or a malformed final line.
pub fn fleet_watch(
    addr: &str,
    id: u64,
    on_line: &mut dyn FnMut(&str),
) -> Result<FleetStatus, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    write_request(&mut stream, "GET", &format!("/campaign/{id}?watch"), "")?;
    let mut pending = String::new();
    let mut lines: Vec<String> = Vec::new();
    let response = read_response_streaming(&stream, &mut |chunk| {
        pending.push_str(chunk);
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim_end().to_string();
            if !line.is_empty() {
                on_line(&line);
                lines.push(line);
            }
        }
    })?;
    if response.status != 200 {
        return Err(ClientError::Http {
            status: response.status,
            body: response.body,
        });
    }
    let last = lines
        .last()
        .ok_or_else(|| ClientError::Protocol("empty progress stream".to_string()))?;
    let v = Json::parse(last).map_err(ClientError::Protocol)?;
    FleetStatus::from_obj(&v).map_err(ClientError::Protocol)
}

/// Fetch one completed shard's stored result.
///
/// # Errors
///
/// Fails on I/O errors or a shard that is not complete (404).
pub fn fleet_shard(addr: &str, id: u64, shard: u32) -> Result<ShardResult, ClientError> {
    let v = expect_200(addr, "GET", &format!("/campaign/{id}/shard/{shard}"), "")?;
    ShardResult::from_obj(&v).map_err(ClientError::Protocol)
}

/// Register a runner with the coordinator.
///
/// # Errors
///
/// Fails on I/O errors or a refused registration.
pub fn fleet_register(addr: &str, name: &str, threads: usize) -> Result<Registered, ClientError> {
    let body = Register {
        name: name.to_string(),
        threads: threads as u64,
    }
    .to_json();
    let v = expect_200(addr, "POST", "/register", &body)?;
    Registered::from_obj(&v).map_err(ClientError::Protocol)
}

/// Ask the coordinator for a shard lease.
///
/// # Errors
///
/// Fails on I/O errors or an unknown runner id (400).
pub fn fleet_lease(addr: &str, runner_id: u64) -> Result<LeaseReply, ClientError> {
    let body = LeaseRequest { runner_id }.to_json();
    let v = expect_200(addr, "POST", "/lease", &body)?;
    LeaseReply::from_obj(&v).map_err(ClientError::Protocol)
}

/// Renew a lease. `ok:false` in the [`Ack`] means the lease is gone.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn fleet_heartbeat(addr: &str, runner_id: u64, lease_id: u64) -> Result<Ack, ClientError> {
    let body = Heartbeat {
        runner_id,
        lease_id,
    }
    .to_json();
    let v = expect_200(addr, "POST", "/heartbeat", &body)?;
    Ack::from_obj(&v).map_err(ClientError::Protocol)
}

/// Upload a completed shard under its lease.
///
/// # Errors
///
/// Fails on I/O errors or a rejected upload (400).
pub fn fleet_complete(addr: &str, complete: &Complete) -> Result<Ack, ClientError> {
    let v = expect_200(addr, "POST", "/complete", &complete.to_json())?;
    Ack::from_obj(&v).map_err(ClientError::Protocol)
}

/// Report a failed lease, optionally uploading the partial journal.
///
/// # Errors
///
/// Fails on I/O errors.
pub fn fleet_fail(
    addr: &str,
    runner_id: u64,
    lease_id: u64,
    error: &str,
    journal: Option<&str>,
) -> Result<Ack, ClientError> {
    let body = Fail {
        runner_id,
        lease_id,
        error: error.to_string(),
        journal: journal.map(str::to_string),
    }
    .to_json();
    let v = expect_200(addr, "POST", "/fail", &body)?;
    Ack::from_obj(&v).map_err(ClientError::Protocol)
}
