//! `verifd` — the campaign service.
//!
//! Every capability of the workspace so far runs as a one-shot CLI
//! process: each invocation re-derives the golden run and re-simulates
//! campaigns other callers already paid for. `verifd` turns the campaign
//! engine into a resident service:
//!
//! * a **request layer** ([`http`]) — hand-rolled HTTP/1.1 over
//!   `std::net::TcpListener`, speaking the journal's hand-rolled JSON
//!   dialect ([`fault_inject::wire`]); no registry dependencies;
//! * a **scheduler** ([`service`]) — a bounded FIFO queue feeding a fixed
//!   worker pool, each worker running `Campaign::try_run` with the
//!   engine's own panic isolation, plus graceful shutdown that finishes
//!   in-flight jobs and journals the queued rest to a drain file;
//! * a **result cache** — keyed by [`fault_inject::Campaign::fingerprint`]
//!   (plus shard coordinates and the deadline, which the fingerprint
//!   deliberately excludes), so a repeated spec returns the bit-identical
//!   [`fault_inject::CampaignResult`] without simulating a cycle;
//! * **sharding** — a [`spec::CampaignSpec`] may carry `shard i/n`,
//!   partitioning the job list deterministically across processes, and
//!   the `/merge` endpoint recombines shard results bit-for-bit via
//!   [`fault_inject::merge_shards`].
//!
//! On top of the single-process service sits the **fleet** — horizontal
//! scale with the same bit-identical guarantees:
//!
//! * a **coordinator** ([`coordinator`]) — accepts fleet submissions
//!   (`POST /fleet` cuts one spec into `n` shards), leases shards to
//!   registered runners under wall-clock TTLs, re-queues expired or
//!   failed leases with capped exponential backoff, poisons a shard
//!   after `max_attempts` leases (the campaign then completes
//!   **degraded**, naming its missing shards), answers `503` +
//!   `Retry-After` when the queue is full, streams chunked progress on
//!   `GET /campaign/{id}?watch`, and drains incomplete campaigns to a
//!   file on shutdown that the next startup re-enqueues;
//! * a pure **lease table** ([`lease`]) — the queued → leased →
//!   retrying → done | poisoned state machine, driven by an injected
//!   clock so every transition is unit-testable without I/O;
//! * a **runner** ([`runner`]) — registers, leases, heartbeats, and
//!   executes shards with a local write-ahead journal; on failure it
//!   uploads the partial journal so the shard's next lease resumes
//!   instead of re-simulating, and a `--chaos` seed arms a
//!   deterministic lease-fault injector (crash/stall/vanish) for tests;
//! * a persistent **shard store** ([`store`]) — one file per
//!   `fingerprint + shard geometry + deadline`, deduplicating completed
//!   shards fleet-wide and surviving coordinator restarts.
//!
//! The `repro` CLI gains `serve`, `submit`, `merge` and `fleet` verbs
//! built on [`client`]; the `verifd` binary grows `coordinator` and
//! `runner` modes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod http;
pub mod lease;
pub mod runner;
pub mod service;
pub mod spec;
pub mod store;

pub use client::{ClientError, StatusReply, SubmitReply};
pub use coordinator::{Coordinator, CoordinatorConfig, FleetStatus};
pub use lease::{LeaseCounters, LeasePolicy, LeaseSnapshot, LeaseTable, ShardKey};
pub use runner::{Runner, RunnerConfig};
pub use service::{Server, ServerConfig};
pub use spec::CampaignSpec;
pub use store::ResultStore;
