//! `verifd` — the campaign service.
//!
//! Every capability of the workspace so far runs as a one-shot CLI
//! process: each invocation re-derives the golden run and re-simulates
//! campaigns other callers already paid for. `verifd` turns the campaign
//! engine into a resident service:
//!
//! * a **request layer** ([`http`]) — hand-rolled HTTP/1.1 over
//!   `std::net::TcpListener`, speaking the journal's hand-rolled JSON
//!   dialect ([`fault_inject::wire`]); no registry dependencies;
//! * a **scheduler** ([`service`]) — a bounded FIFO queue feeding a fixed
//!   worker pool, each worker running `Campaign::try_run` with the
//!   engine's own panic isolation, plus graceful shutdown that finishes
//!   in-flight jobs and journals the queued rest to a drain file;
//! * a **result cache** — keyed by [`fault_inject::Campaign::fingerprint`]
//!   (plus shard coordinates and the deadline, which the fingerprint
//!   deliberately excludes), so a repeated spec returns the bit-identical
//!   [`fault_inject::CampaignResult`] without simulating a cycle;
//! * **sharding** — a [`spec::CampaignSpec`] may carry `shard i/n`,
//!   partitioning the job list deterministically across processes, and
//!   the `/merge` endpoint recombines shard results bit-for-bit via
//!   [`fault_inject::merge_shards`].
//!
//! The `repro` CLI gains `serve`, `submit` and `merge` verbs built on
//! [`client`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod service;
pub mod spec;

pub use client::{ClientError, StatusReply, SubmitReply};
pub use service::{Server, ServerConfig};
pub use spec::CampaignSpec;
