//! The resident campaign service: bounded queue, fixed worker pool,
//! fingerprint-keyed result cache, graceful drain.
//!
//! Concurrency model: one accept thread handles HTTP requests serially —
//! every route is a queue/cache/table operation under one mutex, never a
//! simulation, so `/healthz` answers while every worker is busy. The
//! workers block on a condvar and run campaigns; each completed result
//! is published into the job table and the cache under the same mutex.

use crate::http::{read_request, write_response_with, Request};
use crate::spec::CampaignSpec;
use fault_inject::wire::{escape_json, merge_shards, Json, ShardResult};
use fault_inject::PreparedWorkload;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Campaign worker threads. Zero is accepted (accept-only mode:
    /// everything queues until drained) — useful for tests and staging.
    pub workers: usize,
    /// Queue depth bound; submissions beyond it are refused with 503.
    pub queue_depth: usize,
    /// Threads each worker hands to `Campaign::try_run` (campaigns are
    /// deterministic in this, so it is a pure throughput knob).
    pub job_threads: usize,
    /// Where a graceful shutdown journals the still-queued specs (one
    /// canonical spec JSON per line). `None` disables the drain journal.
    pub drain_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            job_threads: 4,
            drain_path: None,
        }
    }
}

/// A job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Done,
    Failed,
    Drained,
}

impl Status {
    fn name(self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Done => "done",
            Status::Failed => "failed",
            Status::Drained => "drained",
        }
    }
}

struct JobState {
    spec: CampaignSpec,
    status: Status,
    error: Option<String>,
    result: Option<ShardResult>,
}

/// The `Retry-After` value (seconds) sent with every 503, so a refused
/// client knows when the queue is worth trying again.
pub const RETRY_AFTER_S: u64 = 2;

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    drained: u64,
    drain_resubmitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    golden_cache_hits: u64,
    golden_cache_misses: u64,
    cycles_simulated_total: u64,
    statically_pruned_total: u64,
    collapsed_classes_total: u64,
}

struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
    /// `CampaignSpec::cache_key` of every completed spec → the job id
    /// holding its result.
    cache: HashMap<String, u64>,
    next_id: u64,
    busy: usize,
    draining: bool,
    counters: Counters,
}

struct Shared {
    inner: Mutex<Inner>,
    /// One golden run per (workload, platform config), shared read-only
    /// across campaigns: a sweep over kinds, instants or checkpoint
    /// strides of one benchmark captures its golden trajectory once.
    /// Separate from `inner` so a capture in flight never blocks routes.
    golden: Mutex<HashMap<String, Arc<PreparedWorkload>>>,
    work: Condvar,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Workers panic-isolate campaigns and every update is
        // whole-record, so recovery from a poisoned lock is safe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Stop accepting, journal the still-queued specs to the drain file,
    /// and wake every worker so the pool can exit once in-flight jobs
    /// finish. Returns how many queued jobs were drained.
    fn begin_shutdown(&self) -> std::io::Result<usize> {
        let drained: Vec<(u64, CampaignSpec)> = {
            let mut inner = self.lock();
            inner.draining = true;
            let ids: Vec<u64> = inner.queue.drain(..).collect();
            ids.iter()
                .map(|&id| {
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.status = Status::Drained;
                    (id, job.spec.clone())
                })
                .collect()
        };
        if let (Some(path), false) = (&self.config.drain_path, drained.is_empty()) {
            let mut file = std::fs::File::create(path)?;
            for (_, spec) in &drained {
                writeln!(file, "{}", spec.to_json())?;
            }
            file.flush()?;
        }
        let mut inner = self.lock();
        inner.counters.drained += drained.len() as u64;
        drop(inner);
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.notify_all();
        Ok(drained.len())
    }
}

/// A running service. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or hit `POST /shutdown`) for a graceful stop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and the worker pool, and return.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                cache: HashMap::new(),
                next_id: 1,
                busy: 0,
                draining: false,
                counters: Counters::default(),
            }),
            golden: Mutex::new(HashMap::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config,
        });
        resubmit_drained(&shared);
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: refuse new work, journal the queued specs to
    /// the drain file, let in-flight jobs finish, join every thread.
    /// Returns how many queued jobs were drained.
    ///
    /// # Errors
    ///
    /// Fails if the drain journal cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a worker panicked (nothing in
    /// either is expected to — campaigns are panic-isolated).
    pub fn shutdown(mut self) -> std::io::Result<usize> {
        let drained = self.shared.begin_shutdown()?;
        // The accept thread may be blocked in accept(); one throwaway
        // connection gets it to its shutdown check.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
        Ok(drained)
    }

    /// Block until the service stops (via `POST /shutdown`).
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a worker panicked.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
    }
}

/// Re-enqueue specs journaled by the previous process's graceful
/// shutdown, then remove the file (a later shutdown rewrites it). Runs
/// before the worker pool starts, so resubmitted jobs are ordinary
/// queued jobs by the time anything can observe them.
fn resubmit_drained(shared: &Shared) {
    let Some(path) = &shared.config.drain_path else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut inner = shared.lock();
    for line in text.lines().filter(|line| !line.trim().is_empty()) {
        let Ok(spec) = CampaignSpec::parse(line) else {
            continue;
        };
        if inner.cache.contains_key(&spec.cache_key()) {
            continue;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.counters.submitted += 1;
        inner.counters.drain_resubmitted += 1;
        inner.jobs.insert(
            id,
            JobState {
                spec,
                status: Status::Queued,
                error: None,
                result: None,
            },
        );
        inner.queue.push_back(id);
    }
    drop(inner);
    let _ = std::fs::remove_file(path);
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        // Requests are handled inline: every route is a table operation,
        // so the accept thread never waits on a simulation.
        let (status, body) = match read_request(&stream) {
            Ok(request) => route(shared, &request),
            Err(e) => (
                400,
                format!("{{\"error\":{}}}", escape_json(&e.to_string())),
            ),
        };
        // Every refusal is honest about when to try again.
        let retry_after = RETRY_AFTER_S.to_string();
        let headers: &[(&str, &str)] = if status == 503 {
            &[("retry-after", retry_after.as_str())]
        } else {
            &[]
        };
        let _ = write_response_with(&mut stream, status, headers, &body);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec) = {
            let mut inner = shared.lock();
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.status = Status::Running;
                    let spec = job.spec.clone();
                    inner.busy += 1;
                    break (id, spec);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                inner = shared
                    .work
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = run_spec(&spec, shared.config.job_threads, shared);
        let mut inner = shared.lock();
        inner.busy -= 1;
        match outcome {
            Ok(shard) => {
                inner.counters.completed += 1;
                inner.counters.cycles_simulated_total += shard.result.stats().cycles_simulated;
                inner.counters.statically_pruned_total +=
                    shard.result.stats().statically_pruned as u64;
                inner.counters.collapsed_classes_total +=
                    shard.result.stats().collapsed_classes as u64;
                inner.cache.insert(spec.cache_key(), id);
                let job = inner.jobs.get_mut(&id).expect("running job exists");
                job.status = Status::Done;
                job.result = Some(shard);
            }
            Err(error) => {
                inner.counters.failed += 1;
                let job = inner.jobs.get_mut(&id).expect("running job exists");
                job.status = Status::Failed;
                job.error = Some(error);
            }
        }
    }
}

/// Run one spec with an extra panic net around the whole campaign (the
/// engine already panic-isolates each job; this catches golden-run
/// panics, which are workload bugs, so a bad spec cannot take a worker
/// down with it). The golden run comes from the service's prepared
/// cache when a previous campaign over the same workload and platform
/// configuration already captured it — the result is byte-identical to
/// an uncached run.
fn run_spec(
    spec: &CampaignSpec,
    job_threads: usize,
    shared: &Shared,
) -> Result<ShardResult, String> {
    let spec = spec.clone();
    let run = catch_unwind(AssertUnwindSafe(move || {
        let campaign = spec.to_campaign();
        let fingerprint = campaign.fingerprint();
        let (index, count) = spec.shard.unwrap_or((0, 1));
        // The key is exactly the spec fields that reach the golden run:
        // the workload image (benchmark; the service always runs default
        // params) and the classification config (parity is its only
        // spec-controlled field).
        let golden_key = format!("{}|parity={}", spec.benchmark.name(), spec.safety.parity);
        let cached = shared
            .golden
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&golden_key)
            .cloned();
        let prepared = match cached {
            Some(p) => {
                shared.lock().counters.golden_cache_hits += 1;
                p
            }
            None => {
                let p = Arc::new(campaign.prepare().map_err(|e| e.to_string())?);
                shared
                    .golden
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .insert(golden_key, Arc::clone(&p));
                shared.lock().counters.golden_cache_misses += 1;
                p
            }
        };
        campaign
            .try_run_prepared(job_threads, &prepared)
            .map(|result| ShardResult {
                fingerprint,
                index,
                count,
                result,
            })
            .map_err(|e| e.to_string())
    }));
    match run {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("campaign panicked: {message}"))
        }
    }
}

fn route(shared: &Shared, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let inner = shared.lock();
            (
                200,
                format!("{{\"ok\":true,\"draining\":{}}}", inner.draining),
            )
        }
        ("GET", "/stats") => (200, stats_json(shared)),
        ("POST", "/campaign") => submit(shared, &request.body),
        ("GET", path) if path.starts_with("/campaign/") => {
            match path["/campaign/".len()..].parse::<u64>() {
                Ok(id) => job_status(shared, id),
                Err(_) => (400, err_json("campaign ids are integers")),
            }
        }
        ("POST", "/merge") => merge(shared, &request.body),
        ("POST", "/shutdown") => match shared.begin_shutdown() {
            Ok(drained) => (200, format!("{{\"ok\":true,\"drained\":{drained}}}")),
            Err(e) => (503, err_json(&format!("drain journal failed: {e}"))),
        },
        ("GET" | "POST", _) => (404, err_json("no such endpoint")),
        _ => (405, err_json("method not allowed")),
    }
}

fn err_json(message: &str) -> String {
    format!("{{\"error\":{}}}", escape_json(message))
}

fn stats_json(shared: &Shared) -> String {
    let golden_entries = shared
        .golden
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .len();
    let inner = shared.lock();
    let c = &inner.counters;
    let workers = shared.config.workers;
    let utilization = if workers == 0 {
        0.0
    } else {
        inner.busy as f64 / workers as f64
    };
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"queue_depth\":{},\"queue_capacity\":{},\"workers\":{workers},\
         \"busy\":{},\"utilization\":{utilization},\"submitted\":{},\
         \"completed\":{},\"failed\":{},\"drained\":{},\"drain_resubmitted\":{},\
         \"cache_entries\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"golden_cache_entries\":{},\
         \"golden_cache_hits\":{},\"golden_cache_misses\":{},\
         \"cycles_simulated_total\":{},\"statically_pruned\":{},\
         \"collapsed_classes\":{},\"draining\":{}}}",
        inner.queue.len(),
        shared.config.queue_depth,
        inner.busy,
        c.submitted,
        c.completed,
        c.failed,
        c.drained,
        c.drain_resubmitted,
        inner.cache.len(),
        c.cache_hits,
        c.cache_misses,
        golden_entries,
        c.golden_cache_hits,
        c.golden_cache_misses,
        c.cycles_simulated_total,
        c.statically_pruned_total,
        c.collapsed_classes_total,
        inner.draining,
    );
    s
}

fn submit(shared: &Shared, body: &str) -> (u16, String) {
    let spec = match CampaignSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return (400, err_json(&e)),
    };
    // Validate the shard coordinates up front so a bad spec fails the
    // submission, not the worker.
    if let Some((index, count)) = spec.shard {
        if count == 0 || index >= count {
            return (
                400,
                err_json(&format!("shard {index}/{count} out of range")),
            );
        }
    }
    let key = spec.cache_key();
    let mut inner = shared.lock();
    if inner.draining {
        return (503, err_json("server is draining"));
    }
    if let Some(&id) = inner.cache.get(&key) {
        // Served from the cache: bit-identical result, zero simulated
        // cycles.
        inner.counters.cache_hits += 1;
        return (
            200,
            format!("{{\"id\":{id},\"status\":\"done\",\"cached\":true}}"),
        );
    }
    if inner.queue.len() >= shared.config.queue_depth {
        return (503, err_json("queue full"));
    }
    inner.counters.cache_misses += 1;
    inner.counters.submitted += 1;
    let id = inner.next_id;
    inner.next_id += 1;
    inner.jobs.insert(
        id,
        JobState {
            spec,
            status: Status::Queued,
            error: None,
            result: None,
        },
    );
    inner.queue.push_back(id);
    drop(inner);
    shared.work.notify_one();
    (
        200,
        format!("{{\"id\":{id},\"status\":\"queued\",\"cached\":false}}"),
    )
}

fn job_status(shared: &Shared, id: u64) -> (u16, String) {
    let inner = shared.lock();
    let Some(job) = inner.jobs.get(&id) else {
        return (404, err_json("no such campaign"));
    };
    let mut s = format!("{{\"id\":{id},\"status\":\"{}\"", job.status.name());
    if let Some(error) = &job.error {
        let _ = write!(s, ",\"error\":{}", escape_json(error));
    }
    if let Some(result) = &job.result {
        let _ = write!(s, ",\"campaign\":{}", result.to_json());
    }
    s.push('}');
    (200, s)
}

fn merge(shared: &Shared, body: &str) -> (u16, String) {
    let ids: Vec<u64> = match Json::parse(body) {
        Ok(v) => match v.get_array("ids") {
            Some(items) => match items.iter().map(Json::as_u64).collect::<Option<Vec<u64>>>() {
                Some(ids) => ids,
                None => return (400, err_json("`ids` items must be integers")),
            },
            None => return (400, err_json("missing `ids`")),
        },
        Err(e) => return (400, err_json(&e)),
    };
    let shards: Result<Vec<ShardResult>, (u16, String)> = {
        let inner = shared.lock();
        ids.iter()
            .map(|id| {
                let job = inner
                    .jobs
                    .get(id)
                    .ok_or_else(|| (404, err_json(&format!("no such campaign {id}"))))?;
                job.result.clone().ok_or_else(|| {
                    (
                        400,
                        err_json(&format!("campaign {id} is {}", job.status.name())),
                    )
                })
            })
            .collect()
    };
    let shards = match shards {
        Ok(shards) => shards,
        Err(reply) => return reply,
    };
    match merge_shards(shards) {
        Ok(merged) => (200, merged.to_json()),
        // Refusals reuse the journal's header-mismatch semantics; they
        // are conflicts between the supplied shards, not bad syntax.
        Err(e) => (
            409,
            format!(
                "{{\"error\":{},\"kind\":{}}}",
                escape_json(&e.to_string()),
                escape_json(mismatch_kind(&e)),
            ),
        ),
    }
}

fn mismatch_kind(e: &fault_inject::JournalError) -> &'static str {
    match e {
        fault_inject::JournalError::HeaderMismatch { field, .. } => field,
        _ => "malformed",
    }
}
