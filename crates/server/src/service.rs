//! The resident campaign service: bounded queue, fixed worker pool,
//! fingerprint-keyed result cache, graceful drain.
//!
//! Concurrency model: one accept thread handles HTTP requests serially —
//! every route is a queue/cache/table operation under one mutex, never a
//! simulation, so `/healthz` answers while every worker is busy. The
//! workers block on a condvar and run campaigns; each completed result
//! is published into the job table and the cache under the same mutex.

use crate::http::{read_request, write_response_with, Request};
use crate::spec::CampaignSpec;
use fault_inject::wire::{escape_json, merge_shards, Json, ShardResult};
use fault_inject::{
    merge_correlation_shards, CorrelationReport, CorrelationShard, CorrelationSpec, PredictRequest,
    Prediction, PreparedWorkload,
};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::addr`]).
    pub addr: String,
    /// Campaign worker threads. Zero is accepted (accept-only mode:
    /// everything queues until drained) — useful for tests and staging.
    pub workers: usize,
    /// Queue depth bound; submissions beyond it are refused with 503.
    pub queue_depth: usize,
    /// Threads each worker hands to `Campaign::try_run` (campaigns are
    /// deterministic in this, so it is a pure throughput knob).
    pub job_threads: usize,
    /// Where a graceful shutdown journals the still-queued specs (one
    /// canonical spec JSON per line). `None` disables the drain journal.
    pub drain_path: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            job_threads: 4,
            drain_path: None,
        }
    }
}

/// A job's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Queued,
    Running,
    Done,
    Failed,
    Drained,
}

impl Status {
    fn name(self) -> &'static str {
        match self {
            Status::Queued => "queued",
            Status::Running => "running",
            Status::Done => "done",
            Status::Failed => "failed",
            Status::Drained => "drained",
        }
    }
}

/// What a queued job names: one campaign shard, or one correlation
/// sweep (itself possibly one shard of a fleet-split sweep).
#[derive(Clone)]
enum JobSpec {
    Campaign(CampaignSpec),
    Correlation(CorrelationSpec),
}

impl JobSpec {
    fn cache_key(&self) -> String {
        match self {
            JobSpec::Campaign(spec) => spec.cache_key(),
            JobSpec::Correlation(spec) => spec.cache_key(),
        }
    }

    fn to_json(&self) -> String {
        match self {
            JobSpec::Campaign(spec) => spec.to_json(),
            JobSpec::Correlation(spec) => spec.to_json(),
        }
    }
}

/// What a completed job holds: a campaign shard, a fitted correlation
/// report (unsharded sweep), or one shard of a sweep awaiting `/merge`.
#[derive(Clone)]
enum JobOutput {
    Shard(ShardResult),
    Report(CorrelationReport),
    Partial(CorrelationShard),
}

struct JobState {
    spec: JobSpec,
    status: Status,
    error: Option<String>,
    result: Option<JobOutput>,
}

/// The `Retry-After` value (seconds) sent with every 503, so a refused
/// client knows when the queue is worth trying again.
pub const RETRY_AFTER_S: u64 = 2;

#[derive(Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    failed: u64,
    drained: u64,
    drain_resubmitted: u64,
    cache_hits: u64,
    cache_misses: u64,
    golden_cache_hits: u64,
    golden_cache_misses: u64,
    /// Golden-cache hits where the stored capture came from a *different*
    /// campaign spec — the workload-hash dedup paying off across specs.
    golden_store_hits: u64,
    predictions: u64,
    cycles_simulated_total: u64,
    statically_pruned_total: u64,
    collapsed_classes_total: u64,
}

struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobState>,
    /// `CampaignSpec::cache_key` of every completed spec → the job id
    /// holding its result.
    cache: HashMap<String, u64>,
    /// Fitted correlation models by sweep fingerprint, ready to answer
    /// `/predict` with zero simulated cycles.
    models: HashMap<String, CorrelationReport>,
    /// The fingerprint of the most recently fitted model (`/predict`'s
    /// default when the request names none).
    latest_model: Option<String>,
    next_id: u64,
    busy: usize,
    draining: bool,
    counters: Counters,
}

struct Shared {
    inner: Mutex<Inner>,
    /// One golden run per (workload hash, platform config), shared
    /// read-only across campaigns: any two specs whose programs hash the
    /// same — a kind sweep of one benchmark, a correlation cell, a
    /// resubmitted drain — reuse one capture. Keyed by the workload-hash
    /// half of the campaign fingerprint, so the dedup works across
    /// *different* campaign specs; the value remembers the full
    /// fingerprint that populated it, so cross-spec hits are countable.
    /// Separate from `inner` so a capture in flight never blocks routes.
    golden: Mutex<HashMap<String, (Arc<PreparedWorkload>, String)>>,
    work: Condvar,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Workers panic-isolate campaigns and every update is
        // whole-record, so recovery from a poisoned lock is safe.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Stop accepting, journal the still-queued specs to the drain file,
    /// and wake every worker so the pool can exit once in-flight jobs
    /// finish. Returns how many queued jobs were drained.
    fn begin_shutdown(&self) -> std::io::Result<usize> {
        let drained: Vec<(u64, JobSpec)> = {
            let mut inner = self.lock();
            inner.draining = true;
            let ids: Vec<u64> = inner.queue.drain(..).collect();
            ids.iter()
                .map(|&id| {
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.status = Status::Drained;
                    (id, job.spec.clone())
                })
                .collect()
        };
        if let (Some(path), false) = (&self.config.drain_path, drained.is_empty()) {
            let mut file = std::fs::File::create(path)?;
            for (_, spec) in &drained {
                writeln!(file, "{}", spec.to_json())?;
            }
            file.flush()?;
        }
        let mut inner = self.lock();
        inner.counters.drained += drained.len() as u64;
        drop(inner);
        self.shutdown.store(true, Ordering::SeqCst);
        self.work.notify_all();
        Ok(drained.len())
    }
}

/// A running service. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] (or hit `POST /shutdown`) for a graceful stop.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the accept thread and the worker pool, and return.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                cache: HashMap::new(),
                models: HashMap::new(),
                latest_model: None,
                next_id: 1,
                busy: 0,
                draining: false,
                counters: Counters::default(),
            }),
            golden: Mutex::new(HashMap::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config,
        });
        resubmit_drained(&shared);
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            addr,
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: refuse new work, journal the queued specs to
    /// the drain file, let in-flight jobs finish, join every thread.
    /// Returns how many queued jobs were drained.
    ///
    /// # Errors
    ///
    /// Fails if the drain journal cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a worker panicked (nothing in
    /// either is expected to — campaigns are panic-isolated).
    pub fn shutdown(mut self) -> std::io::Result<usize> {
        let drained = self.shared.begin_shutdown()?;
        // The accept thread may be blocked in accept(); one throwaway
        // connection gets it to its shutdown check.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
        Ok(drained)
    }

    /// Block until the service stops (via `POST /shutdown`).
    ///
    /// # Panics
    ///
    /// Panics if the accept thread or a worker panicked.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("worker thread");
        }
    }
}

/// Re-enqueue specs journaled by the previous process's graceful
/// shutdown, then remove the file (a later shutdown rewrites it). Runs
/// before the worker pool starts, so resubmitted jobs are ordinary
/// queued jobs by the time anything can observe them.
fn resubmit_drained(shared: &Shared) {
    let Some(path) = &shared.config.drain_path else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut inner = shared.lock();
    for line in text.lines().filter(|line| !line.trim().is_empty()) {
        // A correlation spec is the only drained shape with a
        // `benchmarks` list; everything else is a campaign spec.
        let Ok(parsed) = Json::parse(line) else {
            continue;
        };
        let spec = if parsed.get("benchmarks").is_some() {
            match CorrelationSpec::from_obj(&parsed) {
                Ok(spec) => JobSpec::Correlation(spec),
                Err(_) => continue,
            }
        } else {
            match CampaignSpec::from_obj(&parsed) {
                Ok(spec) => JobSpec::Campaign(spec),
                Err(_) => continue,
            }
        };
        if inner.cache.contains_key(&spec.cache_key()) {
            continue;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.counters.submitted += 1;
        inner.counters.drain_resubmitted += 1;
        inner.jobs.insert(
            id,
            JobState {
                spec,
                status: Status::Queued,
                error: None,
                result: None,
            },
        );
        inner.queue.push_back(id);
    }
    drop(inner);
    let _ = std::fs::remove_file(path);
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        // Requests are handled inline: every route is a table operation,
        // so the accept thread never waits on a simulation.
        let (status, body) = match read_request(&stream) {
            Ok(request) => route(shared, &request),
            Err(e) => (
                400,
                format!("{{\"error\":{}}}", escape_json(&e.to_string())),
            ),
        };
        // Every refusal is honest about when to try again.
        let retry_after = RETRY_AFTER_S.to_string();
        let headers: &[(&str, &str)] = if status == 503 {
            &[("retry-after", retry_after.as_str())]
        } else {
            &[]
        };
        let _ = write_response_with(&mut stream, status, headers, &body);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (id, spec) = {
            let mut inner = shared.lock();
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.status = Status::Running;
                    let spec = job.spec.clone();
                    inner.busy += 1;
                    break (id, spec);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                inner = shared
                    .work
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let outcome = match &spec {
            JobSpec::Campaign(spec) => {
                run_spec(spec, shared.config.job_threads, shared).map(|shard| {
                    let totals = results_totals(std::slice::from_ref(&shard));
                    (JobOutput::Shard(shard), totals)
                })
            }
            JobSpec::Correlation(spec) => run_correlation(spec, shared.config.job_threads, shared),
        };
        let mut inner = shared.lock();
        inner.busy -= 1;
        match outcome {
            Ok((output, (cycles, pruned, collapsed))) => {
                inner.counters.completed += 1;
                inner.counters.cycles_simulated_total += cycles;
                inner.counters.statically_pruned_total += pruned;
                inner.counters.collapsed_classes_total += collapsed;
                inner.cache.insert(spec.cache_key(), id);
                if let JobOutput::Report(report) = &output {
                    // A freshly fitted sweep becomes the predictor's
                    // model — `/predict` answers from here on without
                    // simulating a cycle.
                    inner
                        .models
                        .insert(report.fingerprint.clone(), report.clone());
                    inner.latest_model = Some(report.fingerprint.clone());
                }
                let job = inner.jobs.get_mut(&id).expect("running job exists");
                job.status = Status::Done;
                job.result = Some(output);
            }
            Err(error) => {
                inner.counters.failed += 1;
                let job = inner.jobs.get_mut(&id).expect("running job exists");
                job.status = Status::Failed;
                job.error = Some(error);
            }
        }
    }
}

/// The counter contributions of a batch of shard results: simulated
/// cycles, statically pruned jobs, collapsed equivalence classes.
fn results_totals(results: &[ShardResult]) -> (u64, u64, u64) {
    results.iter().fold((0, 0, 0), |(c, p, k), shard| {
        let stats = shard.result.stats();
        (
            c + stats.cycles_simulated,
            p + stats.statically_pruned as u64,
            k + stats.collapsed_classes as u64,
        )
    })
}

/// Run one spec with an extra panic net around the whole campaign (the
/// engine already panic-isolates each job; this catches golden-run
/// panics, which are workload bugs, so a bad spec cannot take a worker
/// down with it). The golden run comes from the service's prepared
/// cache when a previous campaign over the same workload and platform
/// configuration already captured it — the result is byte-identical to
/// an uncached run.
fn run_spec(
    spec: &CampaignSpec,
    job_threads: usize,
    shared: &Shared,
) -> Result<ShardResult, String> {
    let spec = spec.clone();
    let run = catch_unwind(AssertUnwindSafe(move || {
        let campaign = spec.to_campaign();
        let fingerprint = campaign.fingerprint();
        let (index, count) = spec.shard.unwrap_or((0, 1));
        let prepared = prepare_golden(&campaign, &fingerprint, spec.safety.parity, shared)?;
        campaign
            .try_run_prepared(job_threads, &prepared)
            .map(|result| ShardResult {
                fingerprint,
                index,
                count,
                result,
            })
            .map_err(|e| e.to_string())
    }));
    unwrap_run(run, "campaign")
}

/// Fetch or capture a golden run for one campaign. The cache key is
/// exactly the inputs that reach the capture: the **workload hash** (the
/// first half of the campaign fingerprint — so any two specs generating
/// the same program image share one capture, whatever else differs) and
/// the classification config (parity is its only spec-controlled field).
fn prepare_golden(
    campaign: &fault_inject::Campaign,
    fingerprint: &str,
    parity: bool,
    shared: &Shared,
) -> Result<Arc<PreparedWorkload>, String> {
    let workload_hash = fingerprint.split('-').next().unwrap_or(fingerprint);
    let golden_key = format!("{workload_hash}|parity={parity}");
    let cached = shared
        .golden
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&golden_key)
        .cloned();
    match cached {
        Some((p, captured_by)) => {
            let mut inner = shared.lock();
            inner.counters.golden_cache_hits += 1;
            if captured_by != fingerprint {
                inner.counters.golden_store_hits += 1;
            }
            Ok(p)
        }
        None => {
            let p = Arc::new(campaign.prepare().map_err(|e| e.to_string())?);
            shared
                .golden
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(golden_key, (Arc::clone(&p), fingerprint.to_string()));
            shared.lock().counters.golden_cache_misses += 1;
            Ok(p)
        }
    }
}

/// Run one correlation sweep: measure every cell on the ISS, run every
/// cell × domain campaign through the shared golden store, and — when
/// the spec is unsharded — merge and fit in-process. A sharded spec
/// parks its slice as a [`JobOutput::Partial`] for a later `/merge`.
fn run_correlation(
    spec: &CorrelationSpec,
    job_threads: usize,
    shared: &Shared,
) -> Result<(JobOutput, (u64, u64, u64)), String> {
    let spec = spec.clone();
    let run = catch_unwind(AssertUnwindSafe(move || {
        let (index, count) = spec.shard.unwrap_or((0, 1));
        let cells: Vec<_> = spec.cells();
        let measurements: Vec<_> = cells
            .iter()
            .map(fault_inject::CorrelationCell::measure)
            .collect();
        let mut results = Vec::new();
        for cell in &cells {
            for &target in &spec.targets {
                let campaign = spec.campaign(cell, target);
                let fingerprint = campaign.fingerprint();
                // Correlation campaigns run no safety mechanisms, so
                // parity is always off in the golden key — and a plain
                // `/campaign` over the same workload shares the capture.
                let prepared = prepare_golden(&campaign, &fingerprint, false, shared)?;
                let result = campaign
                    .try_run_prepared(job_threads, &prepared)
                    .map_err(|e| e.to_string())?;
                results.push(ShardResult {
                    fingerprint,
                    index,
                    count,
                    result,
                });
            }
        }
        let totals = results_totals(&results);
        let mut clean = spec.clone();
        clean.shard = None;
        let shard = CorrelationShard {
            spec: clean,
            index,
            count,
            cells: measurements,
            results,
        };
        if count == 1 {
            let report = merge_correlation_shards(vec![shard])?;
            Ok((JobOutput::Report(report), totals))
        } else {
            Ok((JobOutput::Partial(shard), totals))
        }
    }));
    unwrap_run(run, "correlation sweep")
}

/// Turn a `catch_unwind` result into the job outcome, stringifying a
/// panic payload (a workload bug must not take a worker down).
fn unwrap_run<T>(run: std::thread::Result<Result<T, String>>, what: &str) -> Result<T, String> {
    match run {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("{what} panicked: {message}"))
        }
    }
}

fn route(shared: &Shared, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let inner = shared.lock();
            (
                200,
                format!("{{\"ok\":true,\"draining\":{}}}", inner.draining),
            )
        }
        ("GET", "/stats") => (200, stats_json(shared)),
        ("POST", "/campaign") => submit(shared, &request.body),
        ("GET", path) if path.starts_with("/campaign/") => {
            match path["/campaign/".len()..].parse::<u64>() {
                Ok(id) => job_status(shared, id),
                Err(_) => (400, err_json("campaign ids are integers")),
            }
        }
        ("POST", "/correlate") => submit_correlation(shared, &request.body),
        ("POST", "/predict") => predict(shared, &request.body),
        ("POST", "/merge") => merge(shared, &request.body),
        ("POST", "/shutdown") => match shared.begin_shutdown() {
            Ok(drained) => (200, format!("{{\"ok\":true,\"drained\":{drained}}}")),
            Err(e) => (503, err_json(&format!("drain journal failed: {e}"))),
        },
        ("GET" | "POST", _) => (404, err_json("no such endpoint")),
        _ => (405, err_json("method not allowed")),
    }
}

fn err_json(message: &str) -> String {
    format!("{{\"error\":{}}}", escape_json(message))
}

fn stats_json(shared: &Shared) -> String {
    let golden_entries = shared
        .golden
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .len();
    let inner = shared.lock();
    let c = &inner.counters;
    let workers = shared.config.workers;
    let utilization = if workers == 0 {
        0.0
    } else {
        inner.busy as f64 / workers as f64
    };
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "{{\"queue_depth\":{},\"queue_capacity\":{},\"workers\":{workers},\
         \"busy\":{},\"utilization\":{utilization},\"submitted\":{},\
         \"completed\":{},\"failed\":{},\"drained\":{},\"drain_resubmitted\":{},\
         \"cache_entries\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"golden_cache_entries\":{},\
         \"golden_cache_hits\":{},\"golden_cache_misses\":{},\
         \"golden_store_hits\":{},\
         \"cycles_simulated_total\":{},\"statically_pruned\":{},\
         \"collapsed_classes\":{},\"models_cached\":{},\"predictions\":{},\
         \"draining\":{}}}",
        inner.queue.len(),
        shared.config.queue_depth,
        inner.busy,
        c.submitted,
        c.completed,
        c.failed,
        c.drained,
        c.drain_resubmitted,
        inner.cache.len(),
        c.cache_hits,
        c.cache_misses,
        golden_entries,
        c.golden_cache_hits,
        c.golden_cache_misses,
        c.golden_store_hits,
        c.cycles_simulated_total,
        c.statically_pruned_total,
        c.collapsed_classes_total,
        inner.models.len(),
        c.predictions,
        inner.draining,
    );
    s
}

fn submit(shared: &Shared, body: &str) -> (u16, String) {
    let spec = match CampaignSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return (400, err_json(&e)),
    };
    if let Err(reply) = check_shard(spec.shard) {
        return reply;
    }
    enqueue(shared, JobSpec::Campaign(spec))
}

/// `POST /correlate`: run (or attach to) a correlation sweep. An
/// unsharded spec produces a fitted report; a sharded one produces a
/// partial for `/merge`. Resubmitting a completed spec is a cache hit —
/// zero simulated cycles.
fn submit_correlation(shared: &Shared, body: &str) -> (u16, String) {
    let spec = match CorrelationSpec::parse(body) {
        Ok(spec) => spec,
        Err(e) => return (400, err_json(&e)),
    };
    if let Err(reply) = check_shard(spec.shard) {
        return reply;
    }
    enqueue(shared, JobSpec::Correlation(spec))
}

/// Validate shard coordinates up front so a bad spec fails the
/// submission, not the worker.
fn check_shard(shard: Option<(u32, u32)>) -> Result<(), (u16, String)> {
    if let Some((index, count)) = shard {
        if count == 0 || index >= count {
            return Err((
                400,
                err_json(&format!("shard {index}/{count} out of range")),
            ));
        }
    }
    Ok(())
}

fn enqueue(shared: &Shared, spec: JobSpec) -> (u16, String) {
    let key = spec.cache_key();
    let mut inner = shared.lock();
    if inner.draining {
        return (503, err_json("server is draining"));
    }
    if let Some(&id) = inner.cache.get(&key) {
        // Served from the cache: bit-identical result, zero simulated
        // cycles.
        inner.counters.cache_hits += 1;
        return (
            200,
            format!("{{\"id\":{id},\"status\":\"done\",\"cached\":true}}"),
        );
    }
    if inner.queue.len() >= shared.config.queue_depth {
        return (503, err_json("queue full"));
    }
    inner.counters.cache_misses += 1;
    inner.counters.submitted += 1;
    let id = inner.next_id;
    inner.next_id += 1;
    inner.jobs.insert(
        id,
        JobState {
            spec,
            status: Status::Queued,
            error: None,
            result: None,
        },
    );
    inner.queue.push_back(id);
    drop(inner);
    shared.work.notify_one();
    (
        200,
        format!("{{\"id\":{id},\"status\":\"queued\",\"cached\":false}}"),
    )
}

/// `POST /predict`: evaluate a cached fitted model — an opcode histogram
/// or a swept benchmark label in, predicted `Pf` with its residual band
/// out. This route never simulates: histogram requests are arithmetic on
/// the fitted coefficients, label requests read the diversity the sweep
/// already measured.
fn predict(shared: &Shared, body: &str) -> (u16, String) {
    let request = match PredictRequest::parse(body) {
        Ok(request) => request,
        Err(e) => return (400, err_json(&e)),
    };
    let mut inner = shared.lock();
    let fingerprint = match &request.fingerprint {
        Some(fp) => fp.clone(),
        None => match &inner.latest_model {
            Some(fp) => fp.clone(),
            None => return (404, err_json("no fitted model; run /correlate first")),
        },
    };
    let Some(report) = inner.models.get(&fingerprint) else {
        return (404, err_json(&format!("no model for sweep {fingerprint}")));
    };
    let Some(domain) = report.domain(request.target, request.kind) else {
        return (404, err_json("the model was not fitted for that domain"));
    };
    let diversity = match request.diversity() {
        Some(d) => d,
        None => {
            let label = request.benchmark.as_deref().unwrap_or_default();
            match report.cells.iter().find(|cell| cell.label == label) {
                Some(cell) => cell.diversity,
                None => {
                    return (
                        404,
                        err_json(&format!("`{label}` was not part of the sweep")),
                    )
                }
            }
        }
    };
    let prediction = Prediction::evaluate(&fingerprint, domain, diversity);
    inner.counters.predictions += 1;
    (200, prediction.to_json())
}

fn job_status(shared: &Shared, id: u64) -> (u16, String) {
    let inner = shared.lock();
    let Some(job) = inner.jobs.get(&id) else {
        return (404, err_json("no such campaign"));
    };
    let mut s = format!("{{\"id\":{id},\"status\":\"{}\"", job.status.name());
    if let Some(error) = &job.error {
        let _ = write!(s, ",\"error\":{}", escape_json(error));
    }
    match &job.result {
        Some(JobOutput::Shard(result)) => {
            let _ = write!(s, ",\"campaign\":{}", result.to_json());
        }
        Some(JobOutput::Report(report)) => {
            let _ = write!(s, ",\"report\":{}", report.to_json());
        }
        Some(JobOutput::Partial(shard)) => {
            let _ = write!(s, ",\"shard\":{}", shard.to_json());
        }
        None => {}
    }
    s.push('}');
    (200, s)
}

fn merge(shared: &Shared, body: &str) -> (u16, String) {
    let ids: Vec<u64> = match Json::parse(body) {
        Ok(v) => match v.get_array("ids") {
            Some(items) => match items.iter().map(Json::as_u64).collect::<Option<Vec<u64>>>() {
                Some(ids) => ids,
                None => return (400, err_json("`ids` items must be integers")),
            },
            None => return (400, err_json("missing `ids`")),
        },
        Err(e) => return (400, err_json(&e)),
    };
    let outputs: Result<Vec<JobOutput>, (u16, String)> = {
        let inner = shared.lock();
        ids.iter()
            .map(|id| {
                let job = inner
                    .jobs
                    .get(id)
                    .ok_or_else(|| (404, err_json(&format!("no such campaign {id}"))))?;
                job.result.clone().ok_or_else(|| {
                    (
                        400,
                        err_json(&format!("campaign {id} is {}", job.status.name())),
                    )
                })
            })
            .collect()
    };
    let outputs = match outputs {
        Ok(outputs) => outputs,
        Err(reply) => return reply,
    };
    // Every id is a campaign shard, or every id is a correlation
    // partial — the two merges are different algebras.
    if outputs.iter().all(|o| matches!(o, JobOutput::Partial(_))) && !outputs.is_empty() {
        let shards: Vec<CorrelationShard> = outputs
            .into_iter()
            .map(|o| match o {
                JobOutput::Partial(shard) => shard,
                _ => unreachable!("checked above"),
            })
            .collect();
        return match merge_correlation_shards(shards) {
            Ok(report) => {
                // The merged fit is a model like any other: register it
                // so `/predict` can serve it.
                let mut inner = shared.lock();
                inner
                    .models
                    .insert(report.fingerprint.clone(), report.clone());
                inner.latest_model = Some(report.fingerprint.clone());
                (200, report.to_json())
            }
            Err(e) => (
                409,
                format!("{{\"error\":{},\"kind\":\"correlation\"}}", escape_json(&e)),
            ),
        };
    }
    let shards: Result<Vec<ShardResult>, (u16, String)> = outputs
        .into_iter()
        .map(|o| match o {
            JobOutput::Shard(shard) => Ok(shard),
            _ => Err((
                400,
                err_json("cannot merge campaign shards with correlation jobs"),
            )),
        })
        .collect();
    let shards = match shards {
        Ok(shards) => shards,
        Err(reply) => return reply,
    };
    match merge_shards(shards) {
        Ok(merged) => (200, merged.to_json()),
        // Refusals reuse the journal's header-mismatch semantics; they
        // are conflicts between the supplied shards, not bad syntax.
        Err(e) => (
            409,
            format!(
                "{{\"error\":{},\"kind\":{}}}",
                escape_json(&e.to_string()),
                escape_json(mismatch_kind(&e)),
            ),
        ),
    }
}

fn mismatch_kind(e: &fault_inject::JournalError) -> &'static str {
    match e {
        fault_inject::JournalError::HeaderMismatch { field, .. } => field,
        _ => "malformed",
    }
}
