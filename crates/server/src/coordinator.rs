//! The fleet coordinator: owns the shard queue and the lease table,
//! never simulates a cycle itself.
//!
//! A fleet submission (`POST /fleet`: a campaign spec plus `"shards":n`)
//! is cut into `n` shard slots. Runners register (`POST /register`) and
//! pull shard leases (`POST /lease`); a lease is wall-clock bounded and
//! renewed by heartbeat, so a runner that dies — cleanly or not — gives
//! its shard back within one TTL, with capped retry + exponential
//! backoff ([`crate::lease`]). Completed shards land in a persistent
//! content-addressed store ([`crate::store`]), which also serves as the
//! fleet-wide dedup: a shard simulated once is never simulated again,
//! across campaigns and across coordinator restarts.
//!
//! Honesty properties:
//!
//! * over capacity → `503` with `Retry-After`, never accept-then-stall;
//! * a shard that burns `max_attempts` leases is poisoned and the
//!   campaign completes **degraded**, reporting exactly which shards are
//!   missing instead of hanging;
//! * an accepted shard's `resumed` counter is normalized to zero (the
//!   recovery count moves to `/stats` as `jobs_recovered_total`), so a
//!   campaign that survived runner deaths is bit-identical to one that
//!   never saw a fault;
//! * graceful shutdown drains incomplete campaigns to the drain file,
//!   and startup re-enqueues them automatically — already-done shards
//!   are served from the store, so a drained campaign resumes where the
//!   fleet left off.

use crate::http::{
    finish_chunks, read_request, write_chunk, write_chunked_head, write_response,
    write_response_with, Request,
};
use crate::lease::{LeasePolicy, LeaseTable, ShardKey};
use crate::spec::CampaignSpec;
use crate::store::ResultStore;
use fault_inject::wire::fleet::{
    Ack, Complete, Fail, Heartbeat, LeaseGrant, LeaseReply, LeaseRequest, Register, Registered,
};
use fault_inject::wire::{escape_json, merge_shards, Json, ShardResult};
use fault_inject::{journal, CampaignResult};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Bind address; port 0 picks a free port (see [`Coordinator::addr`]).
    pub addr: String,
    /// Bound on queued shard slots across all campaigns; a submission
    /// that would exceed it is refused with `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Lease TTL in milliseconds.
    pub lease_ttl_ms: u64,
    /// Heartbeat interval handed to runners (and the `NoWork` retry
    /// hint). Should be a few times smaller than the TTL.
    pub heartbeat_ms: u64,
    /// Leases a shard may consume before it is poisoned.
    pub max_attempts: u64,
    /// First re-queue backoff in milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// The `Retry-After` value (seconds) sent with `503`.
    pub retry_after_s: u64,
    /// How often the reaper thread expires dead leases, and how often a
    /// streaming progress watch polls, in milliseconds.
    pub poll_ms: u64,
    /// The content-addressed shard result store directory.
    pub store_path: PathBuf,
    /// Where graceful shutdown journals incomplete campaigns (one fleet
    /// submission body per line), re-enqueued automatically on the next
    /// startup. `None` disables both.
    pub drain_path: Option<PathBuf>,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_depth: 256,
            lease_ttl_ms: 10_000,
            heartbeat_ms: 2_000,
            max_attempts: 3,
            backoff_base_ms: 250,
            backoff_cap_ms: 5_000,
            retry_after_s: 2,
            poll_ms: 100,
            store_path: PathBuf::from("verifd-store"),
            drain_path: None,
        }
    }
}

impl CoordinatorConfig {
    fn policy(&self) -> LeasePolicy {
        LeasePolicy {
            ttl_ms: self.lease_ttl_ms,
            max_attempts: self.max_attempts,
            backoff_base_ms: self.backoff_base_ms,
            backoff_cap_ms: self.backoff_cap_ms,
        }
    }
}

/// One fleet campaign's bookkeeping.
struct FleetCampaign {
    /// The base spec, shard coordinates cleared.
    spec: CampaignSpec,
    /// The shard geometry.
    shards: u32,
    /// The campaign's public fingerprint (shared by all shards).
    fingerprint: String,
    /// Shards that were already in the store at submission (never
    /// entered the lease table).
    prefilled: u32,
}

struct RunnerInfo {
    name: String,
    threads: u64,
}

#[derive(Default)]
struct FleetCounters {
    submitted: u64,
    rejected_busy: u64,
    /// Jobs recovered from uploaded partial journals (the `resumed`
    /// counts normalized out of accepted shard results).
    jobs_recovered_total: u64,
    /// Campaigns re-enqueued from the drain file at startup.
    drain_resubmitted: u64,
    /// Shard uploads rejected because their lease was no longer live.
    stale_uploads: u64,
}

struct Inner {
    campaigns: HashMap<u64, FleetCampaign>,
    table: LeaseTable,
    store: ResultStore,
    runners: HashMap<u64, RunnerInfo>,
    next_campaign: u64,
    next_runner: u64,
    draining: bool,
    counters: FleetCounters,
}

struct Shared {
    inner: Mutex<Inner>,
    shutdown: AtomicBool,
    epoch: Instant,
    config: CoordinatorConfig,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Milliseconds since the coordinator started — the lease table's
    /// clock.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// One campaign's externally visible progress, as served by
/// `GET /campaign/{id}` (and parsed back by the fleet client).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStatus {
    /// The campaign id.
    pub id: u64,
    /// `"running"`, `"done"` or `"degraded"`.
    pub status: String,
    /// Shards finished (store-prefilled ones included).
    pub done: u32,
    /// The shard geometry.
    pub total: u32,
    /// Poisoned shard indices (non-empty exactly when degraded).
    pub missing: Vec<u32>,
    /// The merged unsharded result, present when `status == "done"`.
    pub campaign: Option<ShardResult>,
}

impl FleetStatus {
    /// Parse from an already-parsed status object.
    ///
    /// # Errors
    ///
    /// Fails with a human-readable reason on a missing or mistyped field.
    pub fn from_obj(v: &Json) -> Result<FleetStatus, String> {
        let missing = match v.get_array("missing") {
            None => Vec::new(),
            Some(items) => items
                .iter()
                .map(|item| {
                    item.as_u64()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or("`missing` items must be shard indices")
                })
                .collect::<Result<Vec<u32>, &str>>()?,
        };
        Ok(FleetStatus {
            id: v.get_u64("id").ok_or("missing `id`")?,
            status: v.get_str("status").ok_or("missing `status`")?.to_string(),
            done: v
                .get_u64("done")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("missing `done`")?,
            total: v
                .get_u64("total")
                .and_then(|n| u32::try_from(n).ok())
                .ok_or("missing `total`")?,
            missing,
            campaign: match v.get("campaign") {
                Some(obj) => Some(ShardResult::from_obj(obj)?),
                None => None,
            },
        })
    }
}

/// A running coordinator. Dropping the handle does **not** stop it; call
/// [`Coordinator::shutdown`] (or hit `POST /shutdown`) for a graceful
/// stop.
pub struct Coordinator {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Bind, re-enqueue any drained campaigns from the drain file, spawn
    /// the accept and reaper threads, and return.
    ///
    /// # Errors
    ///
    /// Fails if the address cannot be bound or the store directory
    /// cannot be created.
    pub fn start(config: CoordinatorConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let store = ResultStore::open(&config.store_path)?;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                campaigns: HashMap::new(),
                table: LeaseTable::new(config.policy()),
                store,
                runners: HashMap::new(),
                next_campaign: 1,
                next_runner: 1,
                draining: false,
                counters: FleetCounters::default(),
            }),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            config,
        });
        resubmit_drained(&shared);
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reaper_loop(&shared))
        };
        Ok(Coordinator {
            addr,
            shared,
            accept: Some(accept),
            reaper: Some(reaper),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop granting leases, journal incomplete
    /// campaigns to the drain file, join every thread. Returns how many
    /// campaigns were drained.
    ///
    /// # Errors
    ///
    /// Fails if the drain journal cannot be written.
    ///
    /// # Panics
    ///
    /// Panics if the accept or reaper thread panicked (nothing in either
    /// is expected to).
    pub fn shutdown(mut self) -> std::io::Result<usize> {
        let drained = begin_shutdown(&self.shared)?;
        // The accept thread may be blocked in accept(); one throwaway
        // connection gets it to its shutdown check.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        if let Some(reaper) = self.reaper.take() {
            reaper.join().expect("reaper thread");
        }
        Ok(drained)
    }

    /// Block until the coordinator stops (via `POST /shutdown`).
    ///
    /// # Panics
    ///
    /// Panics if the accept or reaper thread panicked.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread");
        }
        if let Some(reaper) = self.reaper.take() {
            reaper.join().expect("reaper thread");
        }
    }
}

/// Re-enqueue fleet submissions journaled by the previous process's
/// graceful shutdown, then remove the file (its content now lives in
/// the lease table; a later shutdown rewrites it).
fn resubmit_drained(shared: &Arc<Shared>) {
    let Some(path) = &shared.config.drain_path else {
        return;
    };
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let mut resubmitted = 0;
    for line in text.lines().filter(|line| !line.trim().is_empty()) {
        if submit_fleet(shared, line).0 == 200 {
            resubmitted += 1;
        }
    }
    shared.lock().counters.drain_resubmitted += resubmitted;
    let _ = std::fs::remove_file(path);
}

/// Stop granting leases, journal every incomplete campaign to the drain
/// file, release the accept/reaper threads. Returns the campaigns
/// drained.
fn begin_shutdown(shared: &Shared) -> std::io::Result<usize> {
    let drained: Vec<String> = {
        let mut inner = shared.lock();
        inner.draining = true;
        let keys = inner.table.drain();
        let ids: std::collections::HashSet<u64> = keys.iter().map(|k| k.campaign).collect();
        let mut lines: Vec<(u64, String)> = ids
            .iter()
            .filter_map(|id| {
                let campaign = inner.campaigns.get(id)?;
                Some((*id, fleet_body(&campaign.spec, campaign.shards)))
            })
            .collect();
        lines.sort_unstable();
        lines.into_iter().map(|(_, line)| line).collect()
    };
    if let (Some(path), false) = (&shared.config.drain_path, drained.is_empty()) {
        let mut file = std::fs::File::create(path)?;
        for line in &drained {
            writeln!(file, "{line}")?;
        }
        file.flush()?;
    }
    shared.shutdown.store(true, Ordering::SeqCst);
    Ok(drained.len())
}

/// The fleet submission body for a spec + geometry (also the drain-file
/// line format).
fn fleet_body(spec: &CampaignSpec, shards: u32) -> String {
    let json = spec.to_json();
    format!("{},\"shards\":{shards}}}", &json[..json.len() - 1])
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok((mut stream, _)) = listener.accept() else {
            continue;
        };
        let request = match read_request(&stream) {
            Ok(request) => request,
            Err(e) => {
                let body = err_json(&e.to_string());
                let _ = write_response(&mut stream, 400, &body);
                continue;
            }
        };
        // A progress watch streams until the campaign is terminal; it
        // gets its own thread so the accept loop stays responsive.
        if let Some(id) = watch_request(&request) {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || stream_progress(&shared, &mut stream, id));
            continue;
        }
        let (status, headers, body) = route(shared, &request);
        let header_refs: Vec<(&str, &str)> = headers
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_str()))
            .collect();
        let _ = write_response_with(&mut stream, status, &header_refs, &body);
    }
}

fn reaper_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(shared.config.poll_ms));
        let now = shared.now_ms();
        shared.lock().table.reap(now);
    }
}

/// `GET /campaign/{id}?watch` → the id to stream.
fn watch_request(request: &Request) -> Option<u64> {
    let path = request.path.strip_prefix("/campaign/")?;
    let id = path.strip_suffix("?watch")?;
    if request.method == "GET" {
        id.parse().ok()
    } else {
        None
    }
}

/// Stream progress lines (one JSON object per chunk) until the campaign
/// is terminal, then a final status line.
fn stream_progress(shared: &Shared, stream: &mut TcpStream, id: u64) {
    if !shared.lock().campaigns.contains_key(&id) {
        let _ = write_response(stream, 404, &err_json("no such campaign"));
        return;
    }
    if write_chunked_head(stream, 200).is_err() {
        return;
    }
    let mut last = String::new();
    loop {
        let (progress, terminal) = {
            let inner = shared.lock();
            let Some(campaign) = inner.campaigns.get(&id) else {
                return;
            };
            let (done, poisoned, _) = inner.table.campaign_progress(id);
            let done = done + campaign.prefilled;
            let terminal = done + poisoned == campaign.shards;
            (
                format!(
                    "{{\"done\":{done},\"poisoned\":{poisoned},\"total\":{}}}\n",
                    campaign.shards
                ),
                terminal,
            )
        };
        if progress != last {
            if write_chunk(stream, &progress).is_err() {
                return;
            }
            last = progress;
        }
        if terminal {
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        std::thread::sleep(Duration::from_millis(shared.config.poll_ms));
    }
    let (_, _, final_status) = campaign_status(shared, id);
    let _ = write_chunk(stream, &format!("{final_status}\n"));
    let _ = finish_chunks(stream);
}

type Reply = (u16, Vec<(String, String)>, String);

fn plain(status: u16, body: String) -> Reply {
    (status, Vec::new(), body)
}

fn err_json(message: &str) -> String {
    format!("{{\"error\":{}}}", escape_json(message))
}

fn route(shared: &Arc<Shared>, request: &Request) -> Reply {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let draining = shared.lock().draining;
            plain(200, format!("{{\"ok\":true,\"draining\":{draining}}}"))
        }
        ("GET", "/stats") => plain(200, stats_json(shared)),
        ("POST", "/fleet") => {
            let (status, headers, body) = submit_fleet(shared, &request.body);
            (status, headers, body)
        }
        ("GET", path) if path.starts_with("/campaign/") => {
            let rest = &path["/campaign/".len()..];
            if let Some((id, shard)) = rest.split_once("/shard/") {
                match (id.parse::<u64>(), shard.parse::<u32>()) {
                    (Ok(id), Ok(shard)) => shard_status(shared, id, shard),
                    _ => plain(400, err_json("campaign and shard ids are integers")),
                }
            } else {
                match rest.parse::<u64>() {
                    Ok(id) => campaign_status(shared, id),
                    Err(_) => plain(400, err_json("campaign ids are integers")),
                }
            }
        }
        ("POST", "/register") => register(shared, &request.body),
        ("POST", "/lease") => lease(shared, &request.body),
        ("POST", "/heartbeat") => heartbeat(shared, &request.body),
        ("POST", "/complete") => complete(shared, &request.body),
        ("POST", "/fail") => fail(shared, &request.body),
        ("POST", "/shutdown") => match begin_shutdown(shared) {
            Ok(drained) => plain(200, format!("{{\"ok\":true,\"drained\":{drained}}}")),
            Err(e) => plain(503, err_json(&format!("drain journal failed: {e}"))),
        },
        ("GET" | "POST", _) => plain(404, err_json("no such endpoint")),
        _ => plain(405, err_json("method not allowed")),
    }
}

fn stats_json(shared: &Shared) -> String {
    let inner = shared.lock();
    let counters = inner.table.counters();
    let snapshot = inner.table.snapshot();
    let c = &inner.counters;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"queue_depth\":{},\"queue_capacity\":{},\"campaigns\":{},\
         \"runners\":{},\"submitted\":{},\"rejected_busy\":{},\
         \"leases_active\":{},\"leases_granted\":{},\"leases_expired\":{},\
         \"leases_failed\":{},\"leases_retried\":{},\"shards_done\":{},\
         \"shards_poisoned\":{},\"stale_uploads\":{},\
         \"jobs_recovered_total\":{},\"drain_resubmitted\":{},\
         \"store_puts\":{},\"store_dedup_hits\":{},\"draining\":{}}}",
        snapshot.queued,
        shared.config.queue_depth,
        inner.campaigns.len(),
        inner.runners.len(),
        c.submitted,
        c.rejected_busy,
        snapshot.leased,
        counters.granted,
        counters.expired,
        counters.failed,
        counters.retried,
        counters.completed,
        counters.poisoned,
        c.stale_uploads,
        c.jobs_recovered_total,
        c.drain_resubmitted,
        inner.store.puts(),
        inner.store.dedup_hits(),
        inner.draining,
    );
    // The registered fleet, ids ascending.
    let mut roster: Vec<(&u64, &RunnerInfo)> = inner.runners.iter().collect();
    roster.sort_unstable_by_key(|(id, _)| **id);
    s.truncate(s.len() - 1);
    s.push_str(",\"fleet\":[");
    for (i, (id, info)) in roster.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"runner_id\":{id},\"name\":{},\"threads\":{}}}",
            escape_json(&info.name),
            info.threads,
        );
    }
    s.push_str("]}");
    s
}

/// `POST /fleet`: a campaign spec plus `"shards":n`.
fn submit_fleet(shared: &Arc<Shared>, body: &str) -> Reply {
    let v = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return plain(400, err_json(&e)),
    };
    let spec = match CampaignSpec::from_obj(&v) {
        Ok(spec) => spec,
        Err(e) => return plain(400, err_json(&e)),
    };
    if spec.shard.is_some() {
        return plain(
            400,
            err_json("fleet specs carry `shards`, not `shard_index`/`shard_count` (the coordinator cuts the shards)"),
        );
    }
    let shards = match v.get_u64("shards") {
        Some(n) if (1..=4096).contains(&n) => u32::try_from(n).expect("bounded above"),
        Some(_) => return plain(400, err_json("`shards` must be between 1 and 4096")),
        None => return plain(400, err_json("missing `shards`")),
    };
    let fingerprint = spec.fingerprint();
    let mut inner = shared.lock();
    if inner.draining {
        return retry_later(shared, "coordinator is draining");
    }
    // Idempotent resubmission: same spec + geometry → the same campaign.
    if let Some((&id, _)) = inner
        .campaigns
        .iter()
        .find(|(_, c)| c.fingerprint == fingerprint && c.shards == shards && c.spec == spec)
    {
        let (done, poisoned, _) = inner.table.campaign_progress(id);
        let done = done + inner.campaigns[&id].prefilled;
        let status = fleet_phase(done, poisoned, shards);
        return plain(
            200,
            format!(
                "{{\"id\":{id},\"status\":\"{status}\",\"shards\":{shards},\"cached\":{done}}}"
            ),
        );
    }
    // Which shards does the store already hold?
    let mut missing: Vec<u32> = Vec::new();
    let mut prefilled = 0;
    for index in 0..shards {
        if inner
            .store
            .get(&fingerprint, index, shards, spec.deadline_ms)
            .is_some()
        {
            prefilled += 1;
        } else {
            missing.push(index);
        }
    }
    // Honest backpressure: refuse what we cannot queue.
    let queued = inner.table.snapshot().queued as usize;
    if queued + missing.len() > shared.config.queue_depth {
        inner.counters.rejected_busy += 1;
        return retry_later(shared, "queue full");
    }
    let id = inner.next_campaign;
    inner.next_campaign += 1;
    inner.counters.submitted += 1;
    for index in &missing {
        inner.table.enqueue(ShardKey {
            campaign: id,
            shard: *index,
        });
    }
    inner.campaigns.insert(
        id,
        FleetCampaign {
            spec,
            shards,
            fingerprint,
            prefilled,
        },
    );
    let status = if missing.is_empty() { "done" } else { "queued" };
    plain(
        200,
        format!(
            "{{\"id\":{id},\"status\":\"{status}\",\"shards\":{shards},\"cached\":{prefilled}}}"
        ),
    )
}

fn retry_later(shared: &Shared, message: &str) -> Reply {
    (
        503,
        vec![(
            "retry-after".to_string(),
            shared.config.retry_after_s.to_string(),
        )],
        err_json(message),
    )
}

fn fleet_phase(done: u32, poisoned: u32, total: u32) -> &'static str {
    if done == total {
        "done"
    } else if done + poisoned == total {
        "degraded"
    } else {
        "running"
    }
}

fn campaign_status(shared: &Shared, id: u64) -> Reply {
    let mut inner = shared.lock();
    let Some(campaign) = inner.campaigns.get(&id) else {
        return plain(404, err_json("no such campaign"));
    };
    let fingerprint = campaign.fingerprint.clone();
    let shards = campaign.shards;
    let deadline = campaign.spec.deadline_ms;
    let prefilled = campaign.prefilled;
    let (table_done, poisoned, _) = inner.table.campaign_progress(id);
    let done = table_done + prefilled;
    let status = fleet_phase(done, poisoned, shards);
    let mut s = format!("{{\"id\":{id},\"status\":\"{status}\",\"done\":{done},\"total\":{shards}");
    let missing = inner.table.poisoned_shards(id);
    if !missing.is_empty() {
        let _ = write!(
            s,
            ",\"missing\":[{}]",
            missing
                .iter()
                .map(u32::to_string)
                .collect::<Vec<String>>()
                .join(",")
        );
    }
    if status == "done" {
        // All shards are in the store; merge (and memoize the merged
        // result under the unsharded geometry, 0/1).
        match merged_result(&mut inner, &fingerprint, shards, deadline) {
            Ok(merged) => {
                let _ = write!(s, ",\"campaign\":{}", merged.to_json());
            }
            Err(e) => return plain(503, err_json(&e)),
        }
    }
    s.push('}');
    plain(200, s)
}

/// Merge all stored shards of a done campaign, storing the merged result
/// under geometry `0/1` so the next status (or an unsharded fleet
/// submission of the same spec) reads one file.
fn merged_result(
    inner: &mut Inner,
    fingerprint: &str,
    shards: u32,
    deadline: Option<u64>,
) -> Result<ShardResult, String> {
    if shards == 1 {
        return inner
            .store
            .get(fingerprint, 0, 1, deadline)
            .ok_or_else(|| "shard 0 missing from store".to_string());
    }
    if let Some(merged) = inner.store.get(fingerprint, 0, 1, deadline) {
        return Ok(merged);
    }
    let mut parts = Vec::with_capacity(shards as usize);
    for index in 0..shards {
        parts.push(
            inner
                .store
                .get(fingerprint, index, shards, deadline)
                .ok_or_else(|| format!("shard {index} missing from store"))?,
        );
    }
    let merged = merge_shards(parts).map_err(|e| e.to_string())?;
    let _ = inner.store.put(&merged, deadline);
    Ok(merged)
}

fn shard_status(shared: &Shared, id: u64, shard: u32) -> Reply {
    let inner = shared.lock();
    let Some(campaign) = inner.campaigns.get(&id) else {
        return plain(404, err_json("no such campaign"));
    };
    if shard >= campaign.shards {
        return plain(404, err_json("shard index out of range"));
    }
    match inner.store.get(
        &campaign.fingerprint,
        shard,
        campaign.shards,
        campaign.spec.deadline_ms,
    ) {
        Some(result) => plain(200, result.to_json()),
        None => plain(404, err_json("shard not complete")),
    }
}

fn register(shared: &Shared, body: &str) -> Reply {
    let request = match Json::parse(body).and_then(|v| Register::from_obj(&v)) {
        Ok(request) => request,
        Err(e) => return plain(400, err_json(&e)),
    };
    let mut inner = shared.lock();
    let runner_id = inner.next_runner;
    inner.next_runner += 1;
    inner.runners.insert(
        runner_id,
        RunnerInfo {
            name: request.name,
            threads: request.threads,
        },
    );
    let reply = Registered {
        runner_id,
        lease_ms: shared.config.lease_ttl_ms,
        heartbeat_ms: shared.config.heartbeat_ms,
    };
    plain(200, reply.to_json())
}

fn lease(shared: &Shared, body: &str) -> Reply {
    let request = match Json::parse(body).and_then(|v| LeaseRequest::from_obj(&v)) {
        Ok(request) => request,
        Err(e) => return plain(400, err_json(&e)),
    };
    let now = shared.now_ms();
    let mut inner = shared.lock();
    if !inner.runners.contains_key(&request.runner_id) {
        return plain(400, err_json("unknown runner (register first)"));
    }
    let no_work = |draining: bool| {
        LeaseReply::NoWork {
            retry_ms: shared.config.heartbeat_ms,
            draining,
        }
        .to_json()
    };
    if inner.draining {
        return plain(200, no_work(true));
    }
    // Lazy reap on the grant path: a lease request never waits a poll
    // interval behind a dead runner.
    inner.table.reap(now);
    let Some(granted) = inner.table.acquire(now, request.runner_id) else {
        return plain(200, no_work(false));
    };
    let campaign = inner
        .campaigns
        .get(&granted.key.campaign)
        .expect("leased shard has a campaign");
    let mut spec = campaign.spec.clone();
    spec.shard = Some((granted.key.shard, campaign.shards));
    let spec_json = Json::parse(&spec.to_json()).expect("canonical spec parses");
    let reply = LeaseReply::Grant(LeaseGrant {
        lease_id: granted.lease_id,
        campaign_id: granted.key.campaign,
        attempt: granted.attempt,
        spec: spec_json,
        journal: granted.journal,
    });
    plain(200, reply.to_json())
}

fn heartbeat(shared: &Shared, body: &str) -> Reply {
    let request = match Json::parse(body).and_then(|v| Heartbeat::from_obj(&v)) {
        Ok(request) => request,
        Err(e) => return plain(400, err_json(&e)),
    };
    let now = shared.now_ms();
    let mut inner = shared.lock();
    let ok = inner.table.heartbeat(now, request.lease_id);
    let draining = inner.draining;
    plain(200, Ack { ok, draining }.to_json())
}

fn complete(shared: &Shared, body: &str) -> Reply {
    let request = match Json::parse(body).and_then(|v| Complete::from_obj(&v)) {
        Ok(request) => request,
        Err(e) => return plain(400, err_json(&e)),
    };
    let mut inner = shared.lock();
    let draining = inner.draining;
    let stale = || {
        plain(
            200,
            Ack {
                ok: false,
                draining,
            }
            .to_json(),
        )
    };
    let Some(key) = inner.table.complete(request.lease_id) else {
        inner.counters.stale_uploads += 1;
        return stale();
    };
    let campaign = inner
        .campaigns
        .get(&key.campaign)
        .expect("completed shard has a campaign");
    // The upload must be the shard the lease covered.
    if request.shard.fingerprint != campaign.fingerprint
        || request.shard.index != key.shard
        || request.shard.count != campaign.shards
    {
        // A wrong upload is a runner bug, not a stale race; poison-path
        // accounting would hide it, so refuse loudly. The shard stays
        // Done-less: fail the lease so it is retried.
        return plain(
            400,
            err_json("uploaded shard does not match the leased shard"),
        );
    }
    let deadline = campaign.spec.deadline_ms;
    // Normalize the recovery counter: a resumed shard must be
    // bit-identical to a never-interrupted one. The count is fleet
    // truth, so it moves to /stats.
    let mut stats = *request.shard.result.stats();
    let recovered = stats.resumed;
    stats.resumed = 0;
    let shard = ShardResult {
        result: CampaignResult::with_stats(request.shard.result.records().to_vec(), stats),
        ..request.shard
    };
    inner.counters.jobs_recovered_total += recovered as u64;
    let _ = inner.store.put(&shard, deadline);
    plain(200, Ack { ok: true, draining }.to_json())
}

fn fail(shared: &Shared, body: &str) -> Reply {
    let request = match Json::parse(body).and_then(|v| Fail::from_obj(&v)) {
        Ok(request) => request,
        Err(e) => return plain(400, err_json(&e)),
    };
    let now = shared.now_ms();
    let mut inner = shared.lock();
    let draining = inner.draining;
    // Only a journal that parses (torn final line allowed — that is the
    // recovery path) is handed to the next holder.
    let journal = request
        .journal
        .filter(|text| journal::read_str(text).is_ok());
    let ok = inner.table.fail(now, request.lease_id, journal).is_some();
    if !ok {
        inner.counters.stale_uploads += 1;
    }
    plain(200, Ack { ok, draining }.to_json())
}
