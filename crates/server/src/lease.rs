//! The coordinator's shard lease table: the state machine that makes a
//! fleet survive dying runners.
//!
//! Every shard of every fleet campaign is one slot walking
//!
//! ```text
//! queued ──acquire──▶ leased ──complete──▶ done
//!   ▲                   │
//!   │    fail/expire    │ attempts < max_attempts: backoff re-queue
//!   └───────────────────┤
//!                       └ attempts ≥ max_attempts ──▶ poisoned
//! ```
//!
//! A lease is wall-clock bounded: the holder renews it by heartbeat, and
//! [`LeaseTable::reap`] expires any lease not renewed within the TTL —
//! covering runners that vanish without reporting. An explicit
//! [`LeaseTable::fail`] re-queues immediately (with backoff) and may
//! carry the holder's partial journal, which the next holder receives in
//! its grant so completed jobs are never re-simulated.
//!
//! The table is pure state + an injected clock (milliseconds since an
//! arbitrary epoch): no threads, no I/O, no `Instant`. The coordinator
//! drives it under its mutex; the unit tests drive it with a fake clock.

/// Retry/backoff policy for one table.
#[derive(Debug, Clone, Copy)]
pub struct LeasePolicy {
    /// Lease lifetime: a lease not heartbeat-renewed within this many
    /// milliseconds is expired by [`LeaseTable::reap`].
    pub ttl_ms: u64,
    /// How many leases a shard may consume before it is poisoned.
    pub max_attempts: u64,
    /// First re-queue backoff; doubles per failed attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
}

impl Default for LeasePolicy {
    fn default() -> LeasePolicy {
        LeasePolicy {
            ttl_ms: 10_000,
            max_attempts: 3,
            backoff_base_ms: 250,
            backoff_cap_ms: 5_000,
        }
    }
}

/// Names one shard of one fleet campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardKey {
    /// The coordinator's campaign id.
    pub campaign: u64,
    /// The shard index within that campaign's geometry.
    pub shard: u32,
}

/// Where a slot is in its lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Phase {
    /// Waiting for a runner; not leasable before `not_before`.
    Queued { not_before: u64 },
    /// Held by a runner under a live lease.
    Leased {
        lease: u64,
        runner: u64,
        expires: u64,
    },
    /// Completed; the result lives in the store.
    Done,
    /// Burned through every allowed lease; the campaign completes
    /// degraded without it.
    Poisoned,
}

struct Slot {
    key: ShardKey,
    phase: Phase,
    /// Leases consumed so far (1-based once leased).
    attempts: u64,
    /// The most recent partial journal uploaded for this shard; handed
    /// to the next lease holder for resumption.
    journal: Option<String>,
}

/// One granted lease, as returned by [`LeaseTable::acquire`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Granted {
    /// The lease id the holder must quote in heartbeats and reports.
    pub lease_id: u64,
    /// Which shard the lease covers.
    pub key: ShardKey,
    /// Which attempt this lease is (1 = first holder).
    pub attempt: u64,
    /// A previous holder's partial journal to resume from, if any.
    pub journal: Option<String>,
}

/// How a lease ended, as reported by [`LeaseTable::fail`] and
/// [`LeaseTable::reap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requeued {
    /// The shard went back to the queue (leasable after backoff).
    Retrying,
    /// The shard exhausted its attempts and is poisoned.
    Poisoned,
}

/// Monotonic totals for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseCounters {
    /// Leases handed out.
    pub granted: u64,
    /// Leases reaped after missing their TTL.
    pub expired: u64,
    /// Leases explicitly failed by their holder.
    pub failed: u64,
    /// Re-queues (every expiry/failure of a non-poisoned shard).
    pub retried: u64,
    /// Shards poisoned.
    pub poisoned: u64,
    /// Shards completed.
    pub completed: u64,
}

/// Instantaneous phase counts for `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaseSnapshot {
    /// Slots waiting for a runner.
    pub queued: u64,
    /// Slots under a live lease.
    pub leased: u64,
    /// Slots done.
    pub done: u64,
    /// Slots poisoned.
    pub poisoned: u64,
}

/// The lease table. All time parameters are milliseconds on the caller's
/// clock; the table never reads a clock itself.
pub struct LeaseTable {
    policy: LeasePolicy,
    slots: Vec<Slot>,
    next_lease: u64,
    counters: LeaseCounters,
}

impl LeaseTable {
    /// An empty table under `policy`.
    pub fn new(policy: LeasePolicy) -> LeaseTable {
        LeaseTable {
            policy,
            slots: Vec::new(),
            next_lease: 1,
            counters: LeaseCounters::default(),
        }
    }

    /// Add a shard to the queue, immediately leasable. Enqueuing a key
    /// already in the table is a no-op (idempotent resubmission).
    pub fn enqueue(&mut self, key: ShardKey) {
        if self.slots.iter().any(|slot| slot.key == key) {
            return;
        }
        self.slots.push(Slot {
            key,
            phase: Phase::Queued { not_before: 0 },
            attempts: 0,
            journal: None,
        });
    }

    /// Lease the first shard whose backoff has elapsed, FIFO by
    /// enqueue order. `None` when nothing is leasable right now.
    pub fn acquire(&mut self, now: u64, runner: u64) -> Option<Granted> {
        let slot = self
            .slots
            .iter_mut()
            .find(|slot| matches!(slot.phase, Phase::Queued { not_before } if not_before <= now))?;
        let lease_id = self.next_lease;
        self.next_lease += 1;
        slot.attempts += 1;
        slot.phase = Phase::Leased {
            lease: lease_id,
            runner,
            expires: now + self.policy.ttl_ms,
        };
        self.counters.granted += 1;
        Some(Granted {
            lease_id,
            key: slot.key,
            attempt: slot.attempts,
            journal: slot.journal.clone(),
        })
    }

    /// Renew a lease. `false` means the lease is no longer live (it
    /// expired, completed, or never existed) — the holder must stop.
    pub fn heartbeat(&mut self, now: u64, lease_id: u64) -> bool {
        let ttl = self.policy.ttl_ms;
        match self.slot_by_lease(lease_id) {
            Some(slot) => {
                let Phase::Leased { expires, .. } = &mut slot.phase else {
                    unreachable!("slot_by_lease only returns leased slots");
                };
                *expires = now + ttl;
                true
            }
            None => false,
        }
    }

    /// Complete a lease. Returns the shard key when the lease was still
    /// live (the caller stores the result); `None` for a stale lease —
    /// the shard was re-queued or finished by someone else, and the
    /// late result must be discarded.
    pub fn complete(&mut self, lease_id: u64) -> Option<ShardKey> {
        let slot = self.slot_by_lease(lease_id)?;
        slot.phase = Phase::Done;
        slot.journal = None;
        let key = slot.key;
        self.counters.completed += 1;
        Some(key)
    }

    /// Fail a lease, optionally uploading the holder's partial journal
    /// for the next holder. Returns what happened to the shard, or
    /// `None` for a stale lease.
    pub fn fail(&mut self, now: u64, lease_id: u64, journal: Option<String>) -> Option<Requeued> {
        let live = self.slot_by_lease(lease_id)?;
        if journal.is_some() {
            live.journal = journal;
        }
        let index = self
            .slots
            .iter()
            .position(|slot| matches!(slot.phase, Phase::Leased { lease, .. } if lease == lease_id))
            .expect("slot_by_lease found it");
        self.counters.failed += 1;
        Some(self.requeue(index, now))
    }

    /// Expire every lease past its TTL, re-queuing (or poisoning) the
    /// shards. Returns the affected shards.
    pub fn reap(&mut self, now: u64) -> Vec<(ShardKey, Requeued)> {
        let expired: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter(
                |(_, slot)| matches!(slot.phase, Phase::Leased { expires, .. } if expires <= now),
            )
            .map(|(i, _)| i)
            .collect();
        expired
            .into_iter()
            .map(|i| {
                self.counters.expired += 1;
                let outcome = self.requeue(i, now);
                (self.slots[i].key, outcome)
            })
            .collect()
    }

    /// Drop every slot that is not done, returning the queued/leased
    /// shard keys (graceful shutdown writes their specs to the drain
    /// file). Poisoned shards are not drained — resubmission after a
    /// restart gives them a fresh attempt budget anyway.
    pub fn drain(&mut self) -> Vec<ShardKey> {
        let mut drained = Vec::new();
        self.slots.retain(|slot| match slot.phase {
            Phase::Queued { .. } | Phase::Leased { .. } => {
                drained.push(slot.key);
                false
            }
            Phase::Done => true,
            Phase::Poisoned => false,
        });
        drained
    }

    /// The monotonic totals.
    pub fn counters(&self) -> LeaseCounters {
        self.counters
    }

    /// The instantaneous phase counts.
    pub fn snapshot(&self) -> LeaseSnapshot {
        let mut snapshot = LeaseSnapshot::default();
        for slot in &self.slots {
            match slot.phase {
                Phase::Queued { .. } => snapshot.queued += 1,
                Phase::Leased { .. } => snapshot.leased += 1,
                Phase::Done => snapshot.done += 1,
                Phase::Poisoned => snapshot.poisoned += 1,
            }
        }
        snapshot
    }

    /// Phase of one campaign's shards: `(done, poisoned, total)` — the
    /// campaign is terminal when `done + poisoned == total`.
    pub fn campaign_progress(&self, campaign: u64) -> (u32, u32, u32) {
        let mut done = 0;
        let mut poisoned = 0;
        let mut total = 0;
        for slot in &self.slots {
            if slot.key.campaign != campaign {
                continue;
            }
            total += 1;
            match slot.phase {
                Phase::Done => done += 1,
                Phase::Poisoned => poisoned += 1,
                _ => {}
            }
        }
        (done, poisoned, total)
    }

    /// The poisoned shard indices of one campaign, ascending.
    pub fn poisoned_shards(&self, campaign: u64) -> Vec<u32> {
        let mut missing: Vec<u32> = self
            .slots
            .iter()
            .filter(|slot| slot.key.campaign == campaign && slot.phase == Phase::Poisoned)
            .map(|slot| slot.key.shard)
            .collect();
        missing.sort_unstable();
        missing
    }

    /// How many attempts a shard has consumed (0 if unknown).
    pub fn attempts(&self, key: ShardKey) -> u64 {
        self.slots
            .iter()
            .find(|slot| slot.key == key)
            .map_or(0, |slot| slot.attempts)
    }

    fn slot_by_lease(&mut self, lease_id: u64) -> Option<&mut Slot> {
        self.slots
            .iter_mut()
            .find(|slot| matches!(slot.phase, Phase::Leased { lease, .. } if lease == lease_id))
    }

    /// Send a leased slot back to the queue with exponential backoff, or
    /// poison it when its attempt budget is spent.
    fn requeue(&mut self, index: usize, now: u64) -> Requeued {
        let slot = &mut self.slots[index];
        if slot.attempts >= self.policy.max_attempts {
            slot.phase = Phase::Poisoned;
            self.counters.poisoned += 1;
            return Requeued::Poisoned;
        }
        // attempts ≥ 1 here: only leased slots are re-queued.
        let backoff = self
            .policy
            .backoff_base_ms
            .saturating_mul(1u64 << (slot.attempts - 1).min(32))
            .min(self.policy.backoff_cap_ms);
        slot.phase = Phase::Queued {
            not_before: now + backoff,
        };
        self.counters.retried += 1;
        Requeued::Retrying
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(campaign: u64, shard: u32) -> ShardKey {
        ShardKey { campaign, shard }
    }

    fn policy() -> LeasePolicy {
        LeasePolicy {
            ttl_ms: 100,
            max_attempts: 3,
            backoff_base_ms: 10,
            backoff_cap_ms: 35,
        }
    }

    #[test]
    fn fifo_acquire_and_complete() {
        let mut table = LeaseTable::new(policy());
        table.enqueue(key(1, 0));
        table.enqueue(key(1, 1));
        table.enqueue(key(1, 0)); // idempotent
        let a = table.acquire(0, 7).unwrap();
        assert_eq!((a.key, a.attempt, a.journal), (key(1, 0), 1, None));
        let b = table.acquire(0, 8).unwrap();
        assert_eq!(b.key, key(1, 1));
        assert!(table.acquire(0, 9).is_none());
        assert_eq!(table.complete(a.lease_id), Some(key(1, 0)));
        // Completing again is stale.
        assert_eq!(table.complete(a.lease_id), None);
        assert_eq!(table.campaign_progress(1), (1, 0, 2));
        assert_eq!(table.complete(b.lease_id), Some(key(1, 1)));
        assert_eq!(table.campaign_progress(1), (2, 0, 2));
        assert_eq!(table.counters().completed, 2);
        assert_eq!(table.snapshot().done, 2);
    }

    #[test]
    fn heartbeat_extends_and_reap_expires() {
        let mut table = LeaseTable::new(policy());
        table.enqueue(key(1, 0));
        let grant = table.acquire(0, 7).unwrap();
        // Renewed at 90: survives the reap at 150.
        assert!(table.heartbeat(90, grant.lease_id));
        assert!(table.reap(150).is_empty());
        // Not renewed again: expires at 190.
        let reaped = table.reap(190);
        assert_eq!(reaped, vec![(key(1, 0), Requeued::Retrying)]);
        assert_eq!(table.counters().expired, 1);
        assert_eq!(table.counters().retried, 1);
        // The dead holder's heartbeat and completion are now stale.
        assert!(!table.heartbeat(191, grant.lease_id));
        assert_eq!(table.complete(grant.lease_id), None);
        // Backoff: attempt 1 failed → not leasable for backoff_base_ms.
        assert!(table.acquire(195, 8).is_none());
        let again = table.acquire(200, 8).unwrap();
        assert_eq!(again.attempt, 2);
    }

    #[test]
    fn fail_uploads_journal_for_next_holder() {
        let mut table = LeaseTable::new(policy());
        table.enqueue(key(1, 0));
        let first = table.acquire(0, 7).unwrap();
        assert_eq!(
            table.fail(50, first.lease_id, Some("partial journal".to_string())),
            Some(Requeued::Retrying)
        );
        // Stale fail is ignored.
        assert_eq!(table.fail(50, first.lease_id, None), None);
        let second = table.acquire(60, 8).unwrap();
        assert_eq!(second.attempt, 2);
        assert_eq!(second.journal.as_deref(), Some("partial journal"));
        // An expiry without an upload keeps the previous journal.
        let reaped = table.reap(200);
        assert_eq!(reaped.len(), 1);
        let third = table.acquire(300, 9).unwrap();
        assert_eq!(third.attempt, 3);
        assert_eq!(third.journal.as_deref(), Some("partial journal"));
        // Completion clears it.
        assert_eq!(table.complete(third.lease_id), Some(key(1, 0)));
    }

    #[test]
    fn attempts_exhaustion_poisons() {
        let mut table = LeaseTable::new(policy());
        table.enqueue(key(3, 2));
        let mut now = 0;
        for attempt in 1..=2 {
            now += 1000;
            let grant = table.acquire(now, 7).unwrap();
            assert_eq!(grant.attempt, attempt);
            assert_eq!(
                table.fail(now, grant.lease_id, None),
                Some(Requeued::Retrying)
            );
        }
        now += 1000;
        let last = table.acquire(now, 7).unwrap();
        assert_eq!(last.attempt, 3);
        assert_eq!(
            table.fail(now, last.lease_id, None),
            Some(Requeued::Poisoned)
        );
        assert!(table.acquire(now + 10_000, 7).is_none());
        assert_eq!(table.campaign_progress(3), (0, 1, 1));
        assert_eq!(table.poisoned_shards(3), vec![2]);
        assert_eq!(table.counters().poisoned, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut table = LeaseTable::new(LeasePolicy {
            max_attempts: 10,
            ..policy()
        });
        table.enqueue(key(1, 0));
        let mut now = 0;
        // Backoffs: 10, 20, 35 (capped), 35 …
        for expected in [10u64, 20, 35, 35] {
            let grant = table.acquire(now, 1).unwrap();
            table.fail(now, grant.lease_id, None);
            assert!(table.acquire(now + expected - 1, 1).is_none());
            now += expected;
        }
    }

    #[test]
    fn drain_returns_incomplete_shards() {
        let mut table = LeaseTable::new(policy());
        for shard in 0..4 {
            table.enqueue(key(1, shard));
        }
        let done = table.acquire(0, 7).unwrap();
        table.complete(done.lease_id);
        let _held = table.acquire(0, 8).unwrap();
        let drained = table.drain();
        // Shard 0 completed; 1 (leased) and 2, 3 (queued) drain.
        assert_eq!(drained, vec![key(1, 1), key(1, 2), key(1, 3)]);
        assert_eq!(table.snapshot().done, 1);
        assert_eq!(table.snapshot().queued + table.snapshot().leased, 0);
    }
}
