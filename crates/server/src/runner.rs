//! The fleet runner: the process that actually simulates shards.
//!
//! A runner registers with the coordinator, then loops pulling shard
//! leases. Every shard runs **journaled** to a local write-ahead file;
//! on failure the partial journal is uploaded with the failure report,
//! so the shard's next lease holder resumes from the last
//! torn-line-recovered record instead of re-simulating from zero. A
//! dedicated heartbeat thread renews the active lease; when the
//! coordinator answers a heartbeat, completion or failure with
//! `ok:false`, the lease is gone (expired and re-queued) and the runner
//! discards its local state for it.
//!
//! The `chaos` knob arms a deterministic fault injector **around** the
//! engine (a per-lease schedule drawn from the seed): leases randomly
//! crash after a partial run (uploading a truncated journal), stall past
//! their TTL with heartbeats suppressed, or vanish without a report.
//! It exists so the chaos test can show that no schedule produces
//! *wrong* results — only retried or, at worst, poisoned shards.

use crate::client::{self, ClientError};
use crate::spec::CampaignSpec;
use analysis::SplitMix64;
use fault_inject::wire::fleet::{Ack, Complete, LeaseGrant, LeaseReply, Registered};
use fault_inject::wire::ShardResult;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// The coordinator's address (`host:port`).
    pub coordinator: String,
    /// This runner's name, surfaced in the coordinator's `/stats`.
    pub name: String,
    /// Threads handed to each shard campaign.
    pub job_threads: usize,
    /// Directory for per-lease journal files (created if needed).
    pub workdir: PathBuf,
    /// Chaos seed: `Some(seed)` arms the deterministic fault injector.
    pub chaos: Option<u64>,
    /// Hold every lease this long (heartbeating, not simulating) before
    /// running it. A test knob: it opens a deterministic window in which
    /// to kill the runner mid-shard.
    pub hold_ms: u64,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            coordinator: "127.0.0.1:4613".to_string(),
            name: "runner".to_string(),
            job_threads: 2,
            workdir: PathBuf::from("verifd-runner"),
            chaos: None,
            hold_ms: 0,
        }
    }
}

/// Cross-thread runner state.
struct Flags {
    /// Graceful stop: finish the current lease, then exit.
    stop: AtomicBool,
    /// Hard kill: stop heartbeating immediately and discard the current
    /// lease's result — the test stand-in for `kill -9`.
    killed: AtomicBool,
    /// The active lease id (0 = none), for the heartbeat thread.
    current_lease: AtomicU64,
    /// Chaos stall in progress: suppress heartbeats.
    suppress_heartbeat: AtomicBool,
    /// The work loop exited; the heartbeat thread may too.
    finished: AtomicBool,
}

/// A running fleet runner.
pub struct Runner {
    runner_id: u64,
    flags: Arc<Flags>,
    work: Option<JoinHandle<()>>,
    heartbeat: Option<JoinHandle<()>>,
}

impl Runner {
    /// Register with the coordinator (retrying briefly while it comes
    /// up) and spawn the work + heartbeat threads.
    ///
    /// # Errors
    ///
    /// Fails if registration does not succeed or the work directory
    /// cannot be created.
    pub fn start(config: RunnerConfig) -> Result<Runner, ClientError> {
        std::fs::create_dir_all(&config.workdir).map_err(ClientError::Io)?;
        let registered = register_with_retry(&config)?;
        let flags = Arc::new(Flags {
            stop: AtomicBool::new(false),
            killed: AtomicBool::new(false),
            current_lease: AtomicU64::new(0),
            suppress_heartbeat: AtomicBool::new(false),
            finished: AtomicBool::new(false),
        });
        let work = {
            let config = config.clone();
            let flags = Arc::clone(&flags);
            std::thread::spawn(move || work_loop(&config, registered, &flags))
        };
        let heartbeat = {
            let flags = Arc::clone(&flags);
            std::thread::spawn(move || heartbeat_loop(&config, registered, &flags))
        };
        Ok(Runner {
            runner_id: registered.runner_id,
            flags,
            work: Some(work),
            heartbeat: Some(heartbeat),
        })
    }

    /// The coordinator-assigned runner id.
    pub fn runner_id(&self) -> u64 {
        self.runner_id
    }

    /// Graceful stop: finish the lease in flight (reporting its result),
    /// take no new ones, join the threads.
    ///
    /// # Panics
    ///
    /// Panics if a runner thread panicked (lease execution is
    /// panic-isolated, so none is expected to).
    pub fn stop(mut self) {
        self.flags.stop.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    /// Hard kill: heartbeats cease immediately and the in-flight lease's
    /// result is discarded, exactly as if the process had died — the
    /// coordinator notices via lease expiry. (An OS thread cannot be
    /// destroyed mid-simulation, so the work thread is still joined; its
    /// result is thrown away at the kill check.)
    ///
    /// # Panics
    ///
    /// As [`Runner::stop`].
    pub fn kill(mut self) {
        self.flags.killed.store(true, Ordering::SeqCst);
        self.join_threads();
    }

    /// Block until the coordinator drains the fleet: the work loop exits
    /// on its own when a lease request comes back `NoWork` with the
    /// draining bit set. This is what the CLI runner mode does after
    /// startup.
    ///
    /// # Panics
    ///
    /// As [`Runner::stop`].
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(work) = self.work.take() {
            work.join().expect("runner work thread");
        }
        if let Some(heartbeat) = self.heartbeat.take() {
            heartbeat.join().expect("runner heartbeat thread");
        }
    }
}

fn register_with_retry(config: &RunnerConfig) -> Result<Registered, ClientError> {
    let mut last = None;
    for _ in 0..40 {
        match client::fleet_register(&config.coordinator, &config.name, config.job_threads) {
            Ok(registered) => return Ok(registered),
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Err(last.expect("at least one attempt"))
}

/// Sleep in small slices so stop/kill are honoured promptly. Returns
/// `false` when interrupted by a kill.
fn interruptible_sleep(flags: &Flags, ms: u64) -> bool {
    let mut remaining = ms;
    while remaining > 0 {
        if flags.killed.load(Ordering::SeqCst) {
            return false;
        }
        let slice = remaining.min(10);
        std::thread::sleep(Duration::from_millis(slice));
        remaining -= slice;
    }
    !flags.killed.load(Ordering::SeqCst)
}

/// The heartbeat interval for one beat: the coordinator-assigned cadence
/// with a deterministic per-runner, per-beat jitter of up to ±25%. A
/// fleet of runners registered in the same instant would otherwise beat
/// in lockstep and hammer the coordinator with synchronized bursts; the
/// jitter is drawn from `(runner_id, beat)` so a run replays exactly.
fn jittered_heartbeat_ms(heartbeat_ms: u64, runner_id: u64, beat: u64) -> u64 {
    let base = heartbeat_ms.max(1);
    let quarter = base / 4;
    if quarter == 0 {
        return base;
    }
    let mut rng = SplitMix64::new(runner_id ^ beat.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let offset = rng.next_u64() % (2 * quarter + 1);
    // base - quarter ..= base + quarter, never below 1.
    (base - quarter + offset).max(1)
}

fn heartbeat_loop(config: &RunnerConfig, registered: Registered, flags: &Flags) {
    let mut beat = 0u64;
    loop {
        if flags.killed.load(Ordering::SeqCst) || flags.finished.load(Ordering::SeqCst) {
            return;
        }
        let lease = flags.current_lease.load(Ordering::SeqCst);
        if lease != 0 && !flags.suppress_heartbeat.load(Ordering::SeqCst) {
            let _ = client::fleet_heartbeat(&config.coordinator, registered.runner_id, lease);
        }
        // Slices keep kill latency well under the heartbeat interval.
        let interval = jittered_heartbeat_ms(registered.heartbeat_ms, registered.runner_id, beat);
        beat = beat.wrapping_add(1);
        let _ = interruptible_sleep(flags, interval);
    }
}

/// Consecutive failed lease requests a runner tolerates before deciding
/// its coordinator is gone for good and exiting (mirrors the
/// registration retry budget). Each miss sleeps one heartbeat interval,
/// so the tolerated outage scales with the fleet's heartbeat cadence.
const COORDINATOR_LOSS_BUDGET: u32 = 40;

fn work_loop(config: &RunnerConfig, registered: Registered, flags: &Flags) {
    let mut missed = 0u32;
    loop {
        if flags.killed.load(Ordering::SeqCst) || flags.stop.load(Ordering::SeqCst) {
            break;
        }
        match client::fleet_lease(&config.coordinator, registered.runner_id) {
            Ok(LeaseReply::Grant(grant)) => {
                missed = 0;
                run_lease(config, registered, flags, grant);
            }
            Ok(LeaseReply::NoWork { retry_ms, draining }) => {
                missed = 0;
                if draining {
                    break;
                }
                if !interruptible_sleep(flags, retry_ms.clamp(10, 1_000)) {
                    break;
                }
            }
            // The coordinator is unreachable (shut down, or between
            // restarts): back off and retry, but give up — rather than
            // spin forever — once the loss budget is spent.
            Err(_) => {
                missed += 1;
                if missed >= COORDINATOR_LOSS_BUDGET {
                    break;
                }
                if !interruptible_sleep(flags, registered.heartbeat_ms.clamp(10, 1_000)) {
                    break;
                }
            }
        }
    }
    flags.finished.store(true, Ordering::SeqCst);
}

/// What the chaos injector decided for one lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChaosPlan {
    /// Run the shard honestly.
    Normal,
    /// Run, then pretend the process died mid-shard: truncate the
    /// journal at this fraction (per mille) and report failure with it.
    Crash(u64),
    /// Suppress heartbeats and stall past the lease TTL, then report
    /// anyway (the coordinator must reject the late upload).
    Stall,
    /// Abandon the lease without any report (pure expiry path).
    Vanish,
}

/// The per-lease chaos schedule: deterministic in `(seed, lease_id)`, so
/// a failing schedule replays exactly.
fn chaos_plan(seed: u64, lease_id: u64) -> ChaosPlan {
    let mut rng = SplitMix64::new(seed ^ lease_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match rng.next_u64() % 8 {
        0..=3 => ChaosPlan::Normal,
        4 | 5 => ChaosPlan::Crash(rng.next_u64() % 1000),
        6 => ChaosPlan::Stall,
        _ => ChaosPlan::Vanish,
    }
}

fn run_lease(config: &RunnerConfig, registered: Registered, flags: &Flags, grant: LeaseGrant) {
    let plan = match config.chaos {
        Some(seed) => chaos_plan(seed, grant.lease_id),
        None => ChaosPlan::Normal,
    };
    flags.current_lease.store(grant.lease_id, Ordering::SeqCst);
    let journal_path = config
        .workdir
        .join(format!("lease-{}.journal", grant.lease_id));
    let cleanup = |flags: &Flags| {
        flags.current_lease.store(0, Ordering::SeqCst);
        flags.suppress_heartbeat.store(false, Ordering::SeqCst);
        let _ = std::fs::remove_file(&journal_path);
    };
    // The hold window (heartbeating, not simulating) lets tests kill a
    // runner that provably holds a lease.
    if config.hold_ms > 0 && !interruptible_sleep(flags, config.hold_ms) {
        return cleanup(flags);
    }
    if plan == ChaosPlan::Vanish {
        // Die silently: no report, no more heartbeats for this lease.
        flags.current_lease.store(0, Ordering::SeqCst);
        let _ = std::fs::remove_file(&journal_path);
        return;
    }
    let outcome = execute_shard(config, flags, &grant, &journal_path);
    if flags.killed.load(Ordering::SeqCst) {
        // Killed mid-lease: the result (if any) dies with us.
        return cleanup(flags);
    }
    match (plan, outcome) {
        (ChaosPlan::Crash(per_mille), Ok(_)) => {
            // The shard ran, but the "process" dies before reporting:
            // upload a mid-line-truncated journal with the failure, the
            // exact shape a real kill leaves on disk.
            let journal = std::fs::read_to_string(&journal_path)
                .ok()
                .map(|text| truncate_journal(&text, per_mille));
            let _ = client::fleet_fail(
                &config.coordinator,
                registered.runner_id,
                grant.lease_id,
                "chaos: crashed mid-shard",
                journal.as_deref(),
            );
        }
        (ChaosPlan::Stall, Ok(shard)) => {
            // Outlive the lease with heartbeats suppressed, then try to
            // complete anyway: the coordinator must call it stale.
            flags.suppress_heartbeat.store(true, Ordering::SeqCst);
            let past_ttl = registered.lease_ms + 2 * registered.heartbeat_ms.max(1);
            if interruptible_sleep(flags, past_ttl) {
                let _ = report_complete(config, registered, flags, &grant, shard);
            }
        }
        (_, Ok(shard)) => {
            let _ = report_complete(config, registered, flags, &grant, shard);
        }
        (_, Err(error)) => {
            // A real failure (engine error or panic): report it with
            // whatever journal survived, so the next holder resumes.
            let journal = std::fs::read_to_string(&journal_path).ok();
            let _ = client::fleet_fail(
                &config.coordinator,
                registered.runner_id,
                grant.lease_id,
                &error,
                journal.as_deref(),
            );
        }
    }
    cleanup(flags);
}

fn report_complete(
    config: &RunnerConfig,
    registered: Registered,
    flags: &Flags,
    grant: &LeaseGrant,
    shard: ShardResult,
) -> Result<Ack, ClientError> {
    if flags.killed.load(Ordering::SeqCst) {
        return Ok(Ack {
            ok: false,
            draining: false,
        });
    }
    client::fleet_complete(
        &config.coordinator,
        &Complete {
            runner_id: registered.runner_id,
            lease_id: grant.lease_id,
            shard,
        },
    )
}

/// Run one leased shard journaled, resuming from an uploaded partial
/// journal when the grant carries one. Panics are caught and stringified
/// — a panicking workload must fail the lease, not the runner.
fn execute_shard(
    config: &RunnerConfig,
    _flags: &Flags,
    grant: &LeaseGrant,
    journal_path: &std::path::Path,
) -> Result<ShardResult, String> {
    let spec = CampaignSpec::from_obj(&grant.spec)?;
    let threads = config.job_threads;
    let path = journal_path.to_path_buf();
    let _ = std::fs::remove_file(&path);
    let prior = grant.journal.clone();
    let run = catch_unwind(AssertUnwindSafe(move || {
        let campaign = spec.to_campaign();
        let fingerprint = campaign.fingerprint();
        let (index, count) = spec.shard.unwrap_or((0, 1));
        let result = match prior {
            Some(text) => {
                std::fs::write(&path, &text).map_err(|e| e.to_string())?;
                match campaign.resume(threads, &path) {
                    Ok(result) => result,
                    // An unusable journal (wrong campaign, corrupt past
                    // recovery) must not poison the shard: start fresh.
                    Err(_) => {
                        let _ = std::fs::remove_file(&path);
                        campaign
                            .run_journaled(threads, &path)
                            .map_err(|e| e.to_string())?
                    }
                }
            }
            None => campaign
                .run_journaled(threads, &path)
                .map_err(|e| e.to_string())?,
        };
        Ok(ShardResult {
            fingerprint,
            index,
            count,
            result,
        })
    }));
    match run {
        Ok(result) => result,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("shard panicked: {message}"))
        }
    }
}

/// Cut a journal the way a kill does: keep the header line, drop a tail,
/// and usually land mid-line. `per_mille` picks how much of the
/// post-header text survives.
fn truncate_journal(text: &str, per_mille: u64) -> String {
    let header_end = text.find('\n').map_or(text.len(), |i| i + 1);
    let tail = &text[header_end..];
    let keep = (tail.len() as u64 * per_mille / 1000) as usize;
    // Respect UTF-8 boundaries (journal text is ASCII today, but don't
    // bake that in).
    let mut keep = keep.min(tail.len());
    while keep > 0 && !tail.is_char_boundary(keep) {
        keep -= 1;
    }
    format!("{}{}", &text[..header_end], &tail[..keep])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plans_are_deterministic_and_varied() {
        let mut kinds = [0u32; 4];
        for lease in 1..=64 {
            let plan = chaos_plan(42, lease);
            assert_eq!(plan, chaos_plan(42, lease), "same (seed, lease) replays");
            match plan {
                ChaosPlan::Normal => kinds[0] += 1,
                ChaosPlan::Crash(_) => kinds[1] += 1,
                ChaosPlan::Stall => kinds[2] += 1,
                ChaosPlan::Vanish => kinds[3] += 1,
            }
        }
        assert!(
            kinds.iter().all(|&n| n > 0),
            "all behaviors drawn: {kinds:?}"
        );
    }

    #[test]
    fn heartbeat_jitter_is_bounded_deterministic_and_desynchronized() {
        // Bounds: every beat lands within ±25% of the cadence.
        for beat in 0..256 {
            let ms = jittered_heartbeat_ms(100, 7, beat);
            assert!((75..=125).contains(&ms), "beat {beat} drew {ms}ms");
            assert_eq!(
                ms,
                jittered_heartbeat_ms(100, 7, beat),
                "same (runner, beat) replays"
            );
        }
        // Desynchronization: two runners on the same cadence do not share
        // a schedule, and one runner varies across beats.
        let a: Vec<u64> = (0..32).map(|b| jittered_heartbeat_ms(100, 1, b)).collect();
        let b: Vec<u64> = (0..32).map(|b| jittered_heartbeat_ms(100, 2, b)).collect();
        assert_ne!(a, b);
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        // Degenerate cadences stay sane: never a zero sleep.
        assert_eq!(jittered_heartbeat_ms(0, 1, 0), 1);
        for cadence in 1..8 {
            for beat in 0..16 {
                assert!(jittered_heartbeat_ms(cadence, 3, beat) >= 1);
            }
        }
    }

    #[test]
    fn truncation_keeps_the_header_and_cuts_the_tail() {
        let text = "header\nentry-one\nentry-two\nentry-three\n";
        assert_eq!(truncate_journal(text, 0), "header\n");
        assert_eq!(truncate_journal(text, 1000), text);
        let half = truncate_journal(text, 500);
        assert!(half.starts_with("header\n"));
        assert!(half.len() < text.len());
    }
}
