//! The campaign request: everything a client must say to name a
//! campaign, and its canonical JSON form.

use fault_inject::wire::{
    escape_json, kind_from_token, kind_to_token, target_from_token, target_to_token, Json,
};
use fault_inject::{AttackTarget, Campaign, InjectionInstant, SafetyConfig, Target};
use rtl_sim::FaultKind;
use std::fmt::Write as _;
use std::time::Duration;
use workloads::{Benchmark, Params};

/// A campaign request, as submitted to `POST /campaign`.
///
/// The JSON form uses the workspace's own names throughout: benchmarks as
/// `Benchmark::name` (`"rspeed"`), targets as the CLI tokens
/// (`"iu"`/`"cmem"`/`"whole"`), fault kinds as the wire tokens of
/// `fault_inject::wire::kind_to_token` — the plain `FaultKind::name`
/// for parameterless kinds (`"stuck-at-1"`), the parameterized form for
/// time-varying ones (`"intermittent-stuck(level=1,period=8,duty=2,phase=0)"`,
/// `"transient-burst(flips=3,spacing=4)"`). An optional `targets` list of
/// attack-surface classes (`"branch"`/`"psr"`/`"pc"`) restricts the fault
/// universe to those semantic nets. Everything except `benchmark` and
/// `target` is optional:
///
/// ```json
/// {"benchmark":"rspeed","target":"iu","kinds":["stuck-at-1"],
///  "targets":["branch","psr"],
///  "sample":40,"seed":7,"injection_fraction":0.3,
///  "lockstep_window":64,"parity":true,"watchdog_cycles":50000,
///  "deadline_ms":2000,"shard_index":0,"shard_count":2}
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Which workload to run (default `Params`).
    pub benchmark: Benchmark,
    /// Which fault domain to inject into.
    pub target: Target,
    /// The fault models (all permanent models when absent on the wire).
    pub kinds: Vec<FaultKind>,
    /// Optional attack-surface classes restricting the fault universe to
    /// semantically meaningful nets (see `Campaign::with_attack_targets`);
    /// full domain enumeration when absent. Held in canonical (sorted,
    /// deduplicated) order.
    pub targets: Option<Vec<AttackTarget>>,
    /// Optional `(sample, seed)` site sampling; exhaustive when absent.
    pub sample: Option<(usize, u64)>,
    /// When the faults appear (cycle 0 when absent on the wire).
    pub injection: InjectionInstant,
    /// Optional checkpoint stride in cycles: the fork engine drops a
    /// pool checkpoint every this-many cycles on top of the per-instant
    /// ones (see `Campaign::with_checkpoint_stride`). Enters the
    /// fingerprint — it changes every job's cost accounting.
    pub checkpoint_stride: Option<u64>,
    /// Which safety mechanisms to model (all off when absent).
    pub safety: SafetyConfig,
    /// Optional per-job wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Optional `(index, count)` shard coordinates.
    pub shard: Option<(u32, u32)>,
    /// Enable static net-graph pruning and stuck-at fault collapsing
    /// (see `Campaign::with_static_analysis`). Enters the fingerprint —
    /// pruned jobs carry provenance instead of a simulated run.
    pub static_analysis: bool,
}

impl CampaignSpec {
    /// A minimal spec: every optional field at its default.
    pub fn new(benchmark: Benchmark, target: Target) -> CampaignSpec {
        CampaignSpec {
            benchmark,
            target,
            kinds: FaultKind::ALL.to_vec(),
            targets: None,
            sample: None,
            injection: InjectionInstant::Cycle(0),
            checkpoint_stride: None,
            safety: SafetyConfig::default(),
            deadline_ms: None,
            shard: None,
            static_analysis: false,
        }
    }

    /// Serialize as one canonical JSON object (absent options are
    /// omitted, not `null` — the dialect has no `null`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"benchmark\":{},\"target\":\"{}\"",
            escape_json(self.benchmark.name()),
            target_to_token(self.target),
        );
        s.push_str(",\"kinds\":[");
        for (i, kind) in self.kinds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\"", kind_to_token(*kind));
        }
        s.push(']');
        if let Some(targets) = &self.targets {
            s.push_str(",\"targets\":[");
            for (i, target) in targets.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{}\"", target.token());
            }
            s.push(']');
        }
        if let Some((n, seed)) = self.sample {
            let _ = write!(s, ",\"sample\":{n},\"seed\":{seed}");
        }
        match self.injection {
            InjectionInstant::Cycle(0) => {}
            InjectionInstant::Cycle(c) => {
                let _ = write!(s, ",\"injection_cycle\":{c}");
            }
            InjectionInstant::Fraction(f) => {
                let _ = write!(s, ",\"injection_fraction\":{f}");
            }
        }
        if let Some(stride) = self.checkpoint_stride {
            let _ = write!(s, ",\"checkpoint_stride\":{stride}");
        }
        if let Some(w) = self.safety.lockstep_window {
            let _ = write!(s, ",\"lockstep_window\":{w}");
        }
        if self.safety.parity {
            s.push_str(",\"parity\":true");
        }
        if let Some(w) = self.safety.watchdog_cycles {
            let _ = write!(s, ",\"watchdog_cycles\":{w}");
        }
        if let Some(ms) = self.deadline_ms {
            let _ = write!(s, ",\"deadline_ms\":{ms}");
        }
        if let Some((index, count)) = self.shard {
            let _ = write!(s, ",\"shard_index\":{index},\"shard_count\":{count}");
        }
        if self.static_analysis {
            s.push_str(",\"static_analysis\":true");
        }
        s.push('}');
        s
    }

    /// Parse a spec from its JSON text.
    ///
    /// # Errors
    ///
    /// Fails with a human-readable reason on syntax errors, unknown
    /// names, or inconsistent option pairs (`sample` without `seed`,
    /// both injection forms at once, half a shard).
    pub fn parse(text: &str) -> Result<CampaignSpec, String> {
        let v = Json::parse(text)?;
        CampaignSpec::from_obj(&v)
    }

    /// Parse a spec from an already-parsed object.
    ///
    /// # Errors
    ///
    /// As [`CampaignSpec::parse`].
    pub fn from_obj(v: &Json) -> Result<CampaignSpec, String> {
        let benchmark_name = v.get_str("benchmark").ok_or("missing `benchmark`")?;
        let benchmark = Benchmark::by_name(benchmark_name)
            .ok_or_else(|| format!("unknown benchmark `{benchmark_name}`"))?;
        let target_name = v.get_str("target").ok_or("missing `target`")?;
        let target = target_from_token(target_name)
            .ok_or_else(|| format!("unknown target `{target_name}` (iu, cmem or whole)"))?;
        let kinds = match v.get_array("kinds") {
            None => FaultKind::ALL.to_vec(),
            Some(items) => items
                .iter()
                .map(|item| {
                    let token = item.as_str().ok_or("`kinds` items must be strings")?;
                    kind_from_token(token)
                })
                .collect::<Result<Vec<FaultKind>, String>>()?,
        };
        let targets = match v.get_array("targets") {
            None => None,
            Some(items) => {
                let mut targets = items
                    .iter()
                    .map(|item| {
                        let token = item.as_str().ok_or("`targets` items must be strings")?;
                        AttackTarget::from_token(token).ok_or_else(|| {
                            format!("unknown attack target `{token}` (branch, psr or pc)")
                        })
                    })
                    .collect::<Result<Vec<AttackTarget>, String>>()?;
                targets.sort();
                targets.dedup();
                Some(targets)
            }
        };
        let sample = match (v.get_u64("sample"), v.get_u64("seed")) {
            (Some(n), Some(seed)) => Some((n as usize, seed)),
            (None, None) => None,
            _ => return Err("`sample` and `seed` come together or not at all".to_string()),
        };
        let injection = match (
            v.get_u64("injection_cycle"),
            v.get_f64("injection_fraction"),
        ) {
            (Some(_), Some(_)) => {
                return Err("give `injection_cycle` or `injection_fraction`, not both".to_string())
            }
            (Some(c), None) => InjectionInstant::Cycle(c),
            (None, Some(f)) => InjectionInstant::Fraction(f),
            (None, None) => InjectionInstant::Cycle(0),
        };
        let safety = SafetyConfig {
            lockstep_window: v.get_u64("lockstep_window"),
            parity: v.get_bool("parity").unwrap_or(false),
            watchdog_cycles: v.get_u64("watchdog_cycles"),
        };
        let shard = match (v.get_u64("shard_index"), v.get_u64("shard_count")) {
            (Some(i), Some(n)) => Some((i as u32, n as u32)),
            (None, None) => None,
            _ => return Err("`shard_index` and `shard_count` come together".to_string()),
        };
        Ok(CampaignSpec {
            benchmark,
            target,
            kinds,
            targets,
            sample,
            injection,
            checkpoint_stride: v.get_u64("checkpoint_stride"),
            safety,
            deadline_ms: v.get_u64("deadline_ms"),
            shard,
            static_analysis: v.get_bool("static_analysis").unwrap_or(false),
        })
    }

    /// Build the runnable campaign this spec names.
    pub fn to_campaign(&self) -> Campaign {
        let mut campaign = Campaign::new(self.benchmark.program(&Params::default()), self.target)
            .with_kinds(&self.kinds)
            .with_safety(self.safety);
        if let Some(targets) = &self.targets {
            campaign = campaign.with_attack_targets(targets);
        }
        if let Some((n, seed)) = self.sample {
            campaign = campaign.with_sample(n, seed);
        }
        campaign = match self.injection {
            InjectionInstant::Cycle(c) => campaign.with_injection_cycle(c),
            InjectionInstant::Fraction(f) => campaign.with_injection_fraction(f),
        };
        if let Some(stride) = self.checkpoint_stride {
            campaign = campaign.with_checkpoint_stride(stride);
        }
        if let Some(ms) = self.deadline_ms {
            campaign = campaign.with_deadline(Duration::from_millis(ms));
        }
        if let Some((index, count)) = self.shard {
            campaign = campaign.with_shard(index, count);
        }
        campaign.with_static_analysis(self.static_analysis)
    }

    /// The campaign's public fingerprint (shard-independent — see
    /// [`Campaign::fingerprint`]).
    pub fn fingerprint(&self) -> String {
        self.to_campaign().fingerprint()
    }

    /// The result-cache key. The fingerprint deliberately excludes the
    /// shard coordinates (all shards of one campaign share it) and the
    /// wall-clock deadline (it cannot change which jobs exist) — but both
    /// *can* change the bytes of this spec's result, so the cache key
    /// appends them. The unsharded campaign normalizes to shard `0/1`.
    pub fn cache_key(&self) -> String {
        let (index, count) = self.shard.unwrap_or((0, 1));
        let deadline = match self.deadline_ms {
            Some(ms) => ms.to_string(),
            None => "none".to_string(),
        };
        format!(
            "{}|shard={index}/{count}|deadline={deadline}",
            self.fingerprint()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips() {
        let mut spec = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
        spec.kinds = vec![
            FaultKind::StuckAt1,
            FaultKind::OpenLine,
            FaultKind::IntermittentStuck {
                level: true,
                period: 8,
                duty: 2,
                phase: 3,
            },
            FaultKind::TransientBurst {
                flips: 3,
                spacing: 40,
            },
        ];
        spec.targets = Some(vec![
            AttackTarget::BranchCondition,
            AttackTarget::StatusRegister,
        ]);
        spec.sample = Some((40, 7));
        spec.injection = InjectionInstant::Fraction(0.3);
        spec.checkpoint_stride = Some(10_000);
        spec.safety = SafetyConfig {
            lockstep_window: Some(64),
            parity: true,
            watchdog_cycles: Some(50_000),
        };
        spec.deadline_ms = Some(2_000);
        spec.shard = Some((1, 4));
        spec.static_analysis = true;
        let parsed = CampaignSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        // Canonical: the round trip reproduces the bytes.
        assert_eq!(parsed.to_json(), spec.to_json());
    }

    #[test]
    fn minimal_spec_defaults() {
        let spec = CampaignSpec::parse(r#"{"benchmark":"rspeed","target":"cmem"}"#).unwrap();
        assert_eq!(spec.kinds, FaultKind::ALL.to_vec());
        assert_eq!(spec.injection, InjectionInstant::Cycle(0));
        assert_eq!(spec.sample, None);
        assert_eq!(spec.shard, None);
        assert_eq!(spec.checkpoint_stride, None);
        assert!(!spec.safety.any_enabled());
    }

    #[test]
    fn checkpoint_stride_changes_the_fingerprint() {
        // The stride changes every entry's cost accounting, so two specs
        // differing only in stride must not share cached results.
        let mut a = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
        a.sample = Some((10, 3));
        let mut b = a.clone();
        b.checkpoint_stride = Some(5_000);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn static_analysis_changes_the_fingerprint() {
        // Pruned jobs carry provenance instead of a simulated run, so a
        // static spec must not share cached results with a plain one.
        let mut a = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
        a.sample = Some((10, 3));
        let mut b = a.clone();
        b.static_analysis = true;
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.cache_key(), b.cache_key());
        // Off is the wire default and stays byte-identical to the
        // pre-static-analysis canonical form.
        assert!(!a.to_json().contains("static_analysis"));
        assert!(b.to_json().ends_with(",\"static_analysis\":true}"));
    }

    #[test]
    fn inconsistent_specs_are_refused() {
        for bad in [
            r#"{"benchmark":"rspeed"}"#,
            r#"{"benchmark":"nope","target":"iu"}"#,
            r#"{"benchmark":"rspeed","target":"alu"}"#,
            r#"{"benchmark":"rspeed","target":"iu","sample":10}"#,
            r#"{"benchmark":"rspeed","target":"iu","injection_cycle":5,"injection_fraction":0.5}"#,
            r#"{"benchmark":"rspeed","target":"iu","shard_index":0}"#,
            r#"{"benchmark":"rspeed","target":"iu","kinds":["bitrot"]}"#,
            // Out-of-range and malformed parameterized kind tokens.
            r#"{"benchmark":"rspeed","target":"iu","kinds":["intermittent-stuck(level=1,period=4,duty=9,phase=0)"]}"#,
            r#"{"benchmark":"rspeed","target":"iu","kinds":["transient-burst(flips=0,spacing=1)"]}"#,
            r#"{"benchmark":"rspeed","target":"iu","kinds":["transient-burst(spacing=1,flips=2)"]}"#,
            r#"{"benchmark":"rspeed","target":"iu","targets":["alu"]}"#,
        ] {
            assert!(CampaignSpec::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn targets_normalize_and_change_the_fingerprint() {
        let mut a = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
        a.kinds = vec![FaultKind::StuckAt1];
        a.sample = Some((10, 3));
        let mut b = a.clone();
        b.targets = Some(vec![AttackTarget::BranchCondition]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.cache_key(), b.cache_key());
        assert!(!a.to_json().contains("targets"));
        assert!(b.to_json().contains(",\"targets\":[\"branch\"]"));
        // The wire accepts any order and duplicates; the parsed spec (and
        // its canonical bytes) are sorted and deduplicated.
        let spec = CampaignSpec::parse(
            r#"{"benchmark":"rspeed","target":"iu","targets":["psr","branch","psr"]}"#,
        )
        .unwrap();
        assert_eq!(
            spec.targets,
            Some(vec![
                AttackTarget::BranchCondition,
                AttackTarget::StatusRegister
            ])
        );
        assert!(spec.to_json().contains(",\"targets\":[\"branch\",\"psr\"]"));
    }

    #[test]
    fn time_varying_kind_parameters_enter_the_fingerprint() {
        // Two intermittent campaigns differing only in duty cycle run
        // different fault schedules — they must not share cached results.
        let mut a = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
        a.kinds = vec![FaultKind::IntermittentStuck {
            level: true,
            period: 8,
            duty: 2,
            phase: 0,
        }];
        a.sample = Some((10, 3));
        let mut b = a.clone();
        b.kinds = vec![FaultKind::IntermittentStuck {
            level: true,
            period: 8,
            duty: 4,
            phase: 0,
        }];
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.to_json(), b.to_json());
    }

    #[test]
    fn shards_share_the_fingerprint_but_not_the_cache_key() {
        let mut a = CampaignSpec::new(Benchmark::Rspeed, Target::IntegerUnit);
        a.sample = Some((10, 3));
        let mut b = a.clone();
        b.shard = Some((1, 2));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.cache_key(), b.cache_key());
        // The deadline is outside the fingerprint but inside the cache key.
        let mut c = a.clone();
        c.deadline_ms = Some(100);
        assert_eq!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
