//! Summary statistics, correlation coefficients and bootstrap intervals.

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two values).
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64).sqrt()
}

/// Pearson product-moment correlation coefficient.
///
/// Returns `None` for fewer than two points, mismatched lengths or
/// zero-variance inputs.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx).powi(2);
        syy += (y - my).powi(2);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Average ranks, with ties sharing their mid-rank.
fn ranks(values: &[f64]) -> Vec<f64> {
    let mut indexed: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite values"));
    let mut out = vec![0.0; values.len()];
    let mut i = 0;
    while i < indexed.len() {
        let mut j = i;
        while j + 1 < indexed.len() && indexed[j + 1].1 == indexed[i].1 {
            j += 1;
        }
        let rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[indexed[k].0] = rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient (Pearson of the ranks).
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// A five-number-ish summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of values.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a slice (all-zero summary for an empty slice).
    pub fn of(values: &[f64]) -> Summary {
        Summary {
            n: values.len(),
            mean: mean(values),
            std_dev: std_dev(values),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Wilson score interval for a binomial proportion — the right interval
/// for a sampled fault-injection campaign's `Pf` (`successes` failures out
/// of `trials` injections).
///
/// Returns `(low, high)` at the given confidence level; supports the
/// common levels 0.90, 0.95 and 0.99. Returns `None` for zero trials or an
/// unsupported level.
pub fn wilson_interval(successes: usize, trials: usize, confidence: f64) -> Option<(f64, f64)> {
    if trials == 0 {
        return None;
    }
    let z = match confidence {
        c if (c - 0.90).abs() < 1e-9 => 1.6449,
        c if (c - 0.95).abs() < 1e-9 => 1.9600,
        c if (c - 0.99).abs() < 1e-9 => 2.5758,
        _ => return None,
    };
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = z / denom * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    Some(((centre - half).max(0.0), (centre + half).min(1.0)))
}

/// ISO 26262-flavoured grade for a diagnostic-coverage figure.
///
/// The thresholds follow the standard's single-point-fault-metric ladder
/// (99% / 90% / 60%); anything below the lowest rung grades as `"none"`.
pub fn dc_grade(dc: f64) -> &'static str {
    if dc >= 0.99 {
        "high"
    } else if dc >= 0.90 {
        "medium"
    } else if dc >= 0.60 {
        "low"
    } else {
        "none"
    }
}

/// Percentile-bootstrap confidence interval for the mean, using a
/// deterministic internal resampler.
///
/// Returns `(low, high)` at the given confidence level (e.g. `0.95`).
/// Returns `None` for empty input.
pub fn bootstrap_mean_ci(values: &[f64], resamples: usize, confidence: f64) -> Option<(f64, f64)> {
    if values.is_empty() || !(0.0..1.0).contains(&confidence) {
        return None;
    }
    // Deterministic xorshift so results are reproducible.
    let mut state: u64 = 0x9e37_79b9_7f4a_7c15 ^ (values.len() as u64);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut means: Vec<f64> = (0..resamples.max(1))
        .map(|_| {
            let sum: f64 = (0..values.len())
                .map(|_| values[(next() % values.len() as u64) as usize])
                .sum();
            sum / values.len() as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((means.len() as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((means.len() as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    Some((means[lo_idx], means[hi_idx]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 1e-3);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is below 1 (nonlinear).
        assert!(pearson(&xs, &ys).unwrap() < 1.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn summary_of_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn wilson_interval_properties() {
        // Known value: 8/10 at 95% -> approximately (0.49, 0.94).
        let (lo, hi) = wilson_interval(8, 10, 0.95).unwrap();
        assert!((lo - 0.49).abs() < 0.01, "{lo}");
        assert!((hi - 0.943).abs() < 0.01, "{hi}");
        // Interval always contains the point estimate and stays in [0,1].
        for (s, n) in [(0usize, 10usize), (10, 10), (1, 400), (399, 400)] {
            let p = s as f64 / n as f64;
            let (lo, hi) = wilson_interval(s, n, 0.95).unwrap();
            assert!(lo <= p && p <= hi);
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
        // Wider sample -> narrower interval.
        let (lo1, hi1) = wilson_interval(50, 100, 0.95).unwrap();
        let (lo2, hi2) = wilson_interval(500, 1000, 0.95).unwrap();
        assert!(hi2 - lo2 < hi1 - lo1);
        // Higher confidence -> wider interval.
        let (lo3, hi3) = wilson_interval(50, 100, 0.99).unwrap();
        assert!(hi3 - lo3 > hi1 - lo1);
        assert_eq!(wilson_interval(1, 0, 0.95), None);
        assert_eq!(wilson_interval(1, 10, 0.5), None);
    }

    #[test]
    fn dc_grades_follow_the_iso_ladder() {
        assert_eq!(dc_grade(1.0), "high");
        assert_eq!(dc_grade(0.99), "high");
        assert_eq!(dc_grade(0.95), "medium");
        assert_eq!(dc_grade(0.90), "medium");
        assert_eq!(dc_grade(0.75), "low");
        assert_eq!(dc_grade(0.60), "low");
        assert_eq!(dc_grade(0.59), "none");
        assert_eq!(dc_grade(0.0), "none");
    }

    #[test]
    fn bootstrap_ci_contains_mean_for_tight_data() {
        let values: Vec<f64> = (0..100).map(|i| 10.0 + (i % 3) as f64 * 0.01).collect();
        let (lo, hi) = bootstrap_mean_ci(&values, 500, 0.95).unwrap();
        let m = mean(&values);
        assert!(lo <= m && m <= hi, "{lo} <= {m} <= {hi}");
        assert!(hi - lo < 0.01);
        assert_eq!(bootstrap_mean_ci(&[], 100, 0.95), None);
    }
}
