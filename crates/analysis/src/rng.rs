//! Small, dependency-free pseudo-random toolbox: SplitMix64 and
//! Fisher–Yates shuffling.
//!
//! The suite's campaigns draw **seeded, reproducible** samples from large
//! fault universes; nothing here needs cryptographic quality, but the
//! sampling must be deterministic across platforms and build environments.
//! An in-repo generator keeps the default workspace free of registry
//! dependencies, so the tier-1 verify (`cargo build --release &&
//! cargo test -q`) runs with zero network access.
//!
//! SplitMix64 is the output-mixing function of Java's `SplittableRandom`
//! (Steele, Lea & Flood, OOPSLA 2014): a 64-bit Weyl sequence fed through
//! two xor-shift-multiply rounds. It passes BigCrush, has period 2^64 and
//! every seed — including 0 — starts a full-quality stream.

/// A SplitMix64 pseudo-random generator.
///
/// Equal seeds produce equal streams on every platform; this is the
/// contract the campaign sampling (`fault_inject::sample_sites`) and the
/// experiment drivers rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed` (any value, 0 included).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32-bit output (upper half of [`SplitMix64::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `0..bound` (Lemire's multiply-shift rejection
    /// method, bias-free).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire 2019: draw x, map to x*bound >> 64; reject the small
        // region that would bias the low buckets.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Shuffle `slice` in place with the Fisher–Yates algorithm.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Draw a seeded sample of `n` elements without replacement (a partial
    /// Fisher–Yates pass over a copy). Returns all elements when
    /// `n >= slice.len()`, preserving order in that case.
    pub fn sample<T: Clone>(&mut self, slice: &[T], n: usize) -> Vec<T> {
        if n >= slice.len() {
            return slice.to_vec();
        }
        let mut pool = slice.to_vec();
        self.shuffle(&mut pool);
        pool.truncate(n);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // The canonical SplitMix64 test vector for seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..16).map(|_| SplitMix64::new(42).next_u64()).collect();
        assert!(a.iter().all(|&x| x == a[0]));
        let mut x = SplitMix64::new(7);
        let mut y = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
        let mut z = SplitMix64::new(8);
        assert_ne!(x.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(6) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(2024);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "50 elements almost surely move"
        );
    }

    #[test]
    fn sample_without_replacement() {
        let population: Vec<u32> = (0..100).collect();
        let mut rng = SplitMix64::new(11);
        let sample = rng.sample(&population, 20);
        assert_eq!(sample.len(), 20);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20, "sampling must be without replacement");
        // Oversampling returns the whole population unshuffled.
        let all = SplitMix64::new(1).sample(&population, 200);
        assert_eq!(all, population);
    }

    #[test]
    fn empty_and_singleton_shuffles() {
        let mut rng = SplitMix64::new(0);
        let mut empty: [u8; 0] = [];
        rng.shuffle(&mut empty);
        let mut one = [7u8];
        rng.shuffle(&mut one);
        assert_eq!(one, [7]);
    }
}
