//! Plain-text chart rendering for the `repro` binary.
//!
//! Every figure of the paper is regenerated as an ASCII chart so results
//! can be inspected in a terminal and diffed in CI.

/// A named series of values (one legend entry in a grouped chart).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// One value per category.
    pub values: Vec<f64>,
}

impl Series {
    /// Construct a series.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Series {
        Series {
            label: label.into(),
            values,
        }
    }
}

const BAR_WIDTH: usize = 50;

fn bar(value: f64, max: f64) -> String {
    let len = if max > 0.0 {
        ((value / max) * BAR_WIDTH as f64)
            .round()
            .clamp(0.0, BAR_WIDTH as f64) as usize
    } else {
        0
    };
    "█".repeat(len)
}

/// Render a single-series horizontal bar chart; values are formatted as
/// percentages when `percent` is set.
pub fn bar_chart(title: &str, categories: &[&str], values: &[f64], percent: bool) -> String {
    assert_eq!(categories.len(), values.len(), "one value per category");
    let max = values.iter().copied().fold(0.0, f64::max);
    let width = categories.iter().map(|c| c.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for (cat, &v) in categories.iter().zip(values) {
        let shown = if percent {
            format!("{:6.2}%", v * 100.0)
        } else {
            format!("{v:10.2}")
        };
        out.push_str(&format!("{cat:width$} {shown} |{}\n", bar(v, max)));
    }
    out
}

/// Render a grouped bar chart (one group per category, one bar per
/// series) — the layout of the paper's Figures 5 and 6.
pub fn grouped_bar_chart(
    title: &str,
    categories: &[&str],
    series: &[Series],
    percent: bool,
) -> String {
    let max = series
        .iter()
        .flat_map(|s| s.values.iter().copied())
        .fold(0.0, f64::max);
    let label_width = series.iter().map(|s| s.label.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for (i, cat) in categories.iter().enumerate() {
        out.push_str(&format!("{cat}\n"));
        for s in series {
            let v = s.values.get(i).copied().unwrap_or(0.0);
            let shown = if percent {
                format!("{:6.2}%", v * 100.0)
            } else {
                format!("{v:10.2}")
            };
            out.push_str(&format!(
                "  {:label_width$} {shown} |{}\n",
                s.label,
                bar(v, max)
            ));
        }
    }
    out
}

/// Render a scatter plot on a character grid, with optional fitted-curve
/// overlay (`fit` maps x to ŷ) — the layout of the paper's Figure 7.
pub fn scatter_plot(
    title: &str,
    points: &[(f64, f64)],
    fit: Option<&dyn Fn(f64) -> f64>,
    rows: usize,
    cols: usize,
) -> String {
    assert!(rows >= 2 && cols >= 2);
    let mut out = format!("== {title} ==\n");
    if points.is_empty() {
        out.push_str("(no points)\n");
        return out;
    }
    let min_x = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let max_x = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let min_y = points
        .iter()
        .map(|p| p.1)
        .fold(f64::INFINITY, f64::min)
        .min(0.0);
    let max_y = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let span_x = (max_x - min_x).max(f64::MIN_POSITIVE);
    let span_y = (max_y - min_y).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![' '; cols]; rows];
    if let Some(f) = fit {
        for (col, x) in (0..cols)
            .map(|c| min_x + span_x * c as f64 / (cols - 1) as f64)
            .enumerate()
        {
            let y = f(x);
            if y.is_finite() && y >= min_y && y <= max_y {
                let row = ((max_y - y) / span_y * (rows - 1) as f64).round() as usize;
                grid[row.min(rows - 1)][col] = '·';
            }
        }
    }
    for &(x, y) in points {
        let col = ((x - min_x) / span_x * (cols - 1) as f64).round() as usize;
        let row = ((max_y - y) / span_y * (rows - 1) as f64).round() as usize;
        grid[row.min(rows - 1)][col.min(cols - 1)] = '●';
    }
    for (i, row) in grid.iter().enumerate() {
        let y = max_y - span_y * i as f64 / (rows - 1) as f64;
        out.push_str(&format!("{:7.3} |{}\n", y, row.iter().collect::<String>()));
    }
    out.push_str(&format!("        +{}\n", "-".repeat(cols)));
    out.push_str(&format!(
        "         {:<.1}{:>width$.1}\n",
        min_x,
        max_x,
        width = cols - 3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart("t", &["a", "b"], &[0.5, 1.0], true);
        assert!(chart.contains("50.00%"));
        assert!(chart.contains("100.00%"));
        let a_len = chart.lines().nth(1).unwrap().matches('█').count();
        let b_len = chart.lines().nth(2).unwrap().matches('█').count();
        assert_eq!(b_len, BAR_WIDTH);
        assert_eq!(a_len, BAR_WIDTH / 2);
    }

    #[test]
    fn grouped_chart_lists_all_series() {
        let chart = grouped_bar_chart(
            "fig",
            &["bench1", "bench2"],
            &[
                Series::new("stuck-at-1", vec![0.3, 0.2]),
                Series::new("stuck-at-0", vec![0.25, 0.15]),
            ],
            true,
        );
        assert_eq!(chart.matches("stuck-at-1").count(), 2);
        assert!(chart.contains("bench2"));
    }

    #[test]
    fn scatter_places_points() {
        let points = [(1.0, 0.0), (10.0, 1.0)];
        let chart = scatter_plot("s", &points, None, 10, 40);
        assert_eq!(chart.matches('●').count(), 2);
    }

    #[test]
    fn scatter_overlays_fit() {
        let points = [(1.0, 1.0), (10.0, 10.0)];
        let f = |x: f64| x;
        let chart = scatter_plot("s", &points, Some(&f), 10, 40);
        assert!(chart.matches('·').count() > 5, "{chart}");
    }

    #[test]
    #[should_panic(expected = "one value per category")]
    fn bar_chart_validates_lengths() {
        let _ = bar_chart("t", &["a"], &[1.0, 2.0], false);
    }

    #[test]
    fn empty_scatter_is_graceful() {
        let chart = scatter_plot("s", &[], None, 5, 10);
        assert!(chart.contains("no points"));
    }
}
