//! Least-squares fits: linear and logarithmic.

use std::fmt;

/// A fitting failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two points, or mismatched slice lengths.
    NotEnoughData,
    /// All x values identical (vertical line) or non-finite input.
    Degenerate,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughData => write!(f, "need at least two (x, y) points"),
            FitError::Degenerate => write!(f, "degenerate inputs (constant x or non-finite)"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted model `y = slope · g(x) + intercept` with goodness-of-fit,
/// where `g` is the identity ([`linear_fit`]) or `ln` ([`log_fit`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// The slope `a`.
    pub slope: f64,
    /// The intercept `b`.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Whether x was log-transformed.
    pub logarithmic: bool,
}

impl Regression {
    /// Predict `y` at `x` (applying the log transform if fitted that way).
    pub fn predict(&self, x: f64) -> f64 {
        let g = if self.logarithmic { x.ln() } else { x };
        self.slope * g + self.intercept
    }

    /// The paper-style equation string, e.g.
    /// `y = 0.0838·ln(x) - 0.0191 (R² = 0.9246)`.
    pub fn equation(&self) -> String {
        let xterm = if self.logarithmic { "ln(x)" } else { "x" };
        let sign = if self.intercept < 0.0 { '-' } else { '+' };
        format!(
            "y = {:.4}·{xterm} {sign} {:.4} (R² = {:.4})",
            self.slope,
            self.intercept.abs(),
            self.r_squared
        )
    }
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.equation())
    }
}

fn fit(xs: &[f64], ys: &[f64], logarithmic: bool) -> Result<Regression, FitError> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return Err(FitError::NotEnoughData);
    }
    let gx: Vec<f64> = if logarithmic {
        xs.iter().map(|&x| x.ln()).collect()
    } else {
        xs.to_vec()
    };
    if gx.iter().chain(ys).any(|v| !v.is_finite()) {
        return Err(FitError::Degenerate);
    }
    let n = gx.len() as f64;
    let mean_x = gx.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let sxx: f64 = gx.iter().map(|&x| (x - mean_x).powi(2)).sum();
    let sxy: f64 = gx
        .iter()
        .zip(ys)
        .map(|(&x, &y)| (x - mean_x) * (y - mean_y))
        .sum();
    if sxx == 0.0 {
        return Err(FitError::Degenerate);
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = ys.iter().map(|&y| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = gx
        .iter()
        .zip(ys)
        .map(|(&x, &y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(Regression {
        slope,
        intercept,
        r_squared,
        logarithmic,
    })
}

/// Ordinary least squares `y = a·x + b`.
///
/// # Errors
///
/// [`FitError::NotEnoughData`] for fewer than two points or mismatched
/// lengths; [`FitError::Degenerate`] for constant or non-finite x.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Result<Regression, FitError> {
    fit(xs, ys, false)
}

/// Least squares on log-transformed x: `y = a·ln(x) + b` — the model of
/// the paper's Figure 7.
///
/// # Errors
///
/// As [`linear_fit`]; also degenerate when any `x ≤ 0` (ln undefined).
pub fn log_fit(xs: &[f64], ys: &[f64]) -> Result<Regression, FitError> {
    fit(xs, ys, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_fit() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(10.0) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_fit_has_partial_r2() {
        let xs: Vec<f64> = (1..=20).map(f64::from).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = linear_fit(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.95 && fit.r_squared < 1.0);
    }

    #[test]
    fn log_fit_recovers_paper_style_model() {
        let xs = [8.0, 11.0, 18.0, 20.0, 47.0, 48.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| 0.0838 * x.ln() - 0.0191).collect();
        let fit = log_fit(&xs, &ys).unwrap();
        assert!((fit.slope - 0.0838).abs() < 1e-10);
        assert!((fit.intercept + 0.0191).abs() < 1e-10);
        assert!(fit.logarithmic);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equation_formatting() {
        let fit = Regression {
            slope: 0.0838,
            intercept: -0.0191,
            r_squared: 0.9246,
            logarithmic: true,
        };
        assert_eq!(fit.equation(), "y = 0.0838·ln(x) - 0.0191 (R² = 0.9246)");
    }

    #[test]
    fn error_cases() {
        assert_eq!(linear_fit(&[1.0], &[1.0]), Err(FitError::NotEnoughData));
        assert_eq!(
            linear_fit(&[1.0, 2.0], &[1.0]),
            Err(FitError::NotEnoughData)
        );
        assert_eq!(
            linear_fit(&[2.0, 2.0], &[1.0, 3.0]),
            Err(FitError::Degenerate)
        );
        assert_eq!(log_fit(&[0.0, 1.0], &[1.0, 2.0]), Err(FitError::Degenerate));
        assert_eq!(
            log_fit(&[-1.0, 1.0], &[1.0, 2.0]),
            Err(FitError::Degenerate)
        );
    }

    #[test]
    fn constant_y_is_perfectly_explained() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
