//! Fixed-width histograms with text rendering (latency distributions,
//! Pf-per-unit spreads, …).

use std::fmt;

/// A fixed-width-bucket histogram over `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<usize>,
    /// Samples below `lo` / above `hi`.
    underflow: usize,
    overflow: usize,
    count: usize,
}

impl Histogram {
    /// A histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is 0 or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Histogram {
        assert!(buckets > 0, "at least one bucket");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "valid range required"
        );
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Build from samples, auto-ranging over their min/max.
    ///
    /// Returns `None` for empty or degenerate (all-equal) samples.
    pub fn auto(samples: &[f64], buckets: usize) -> Option<Histogram> {
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return None;
        }
        let mut h = Histogram::new(lo, hi * (1.0 + 1e-12) + f64::MIN_POSITIVE, buckets);
        h.extend(samples.iter().copied());
        Some(h)
    }

    /// Record one sample.
    pub fn record(&mut self, sample: f64) {
        self.count += 1;
        if sample < self.lo {
            self.underflow += 1;
        } else if sample >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.buckets.len();
            let idx = ((sample - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.buckets[idx.min(n - 1)] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[usize] {
        &self.buckets
    }

    /// The `(low_edge, count)` of the fullest bucket.
    pub fn mode(&self) -> Option<(f64, usize)> {
        let (idx, &count) = self.buckets.iter().enumerate().max_by_key(|&(_, &c)| c)?;
        if count == 0 {
            return None;
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        Some((self.lo + idx as f64 * width, count))
    }

    /// Approximate quantile (0..=1) from the bucket midpoints.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = (q * (self.count - self.underflow - self.overflow) as f64).ceil() as usize;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for sample in iter {
            self.record(sample);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let bar = "█".repeat((c * 40).div_ceil(max).min(40));
            writeln!(
                f,
                "{:12.2} .. {:12.2} {:>7} |{}",
                self.lo + i as f64 * width,
                self.lo + (i + 1) as f64 * width,
                c,
                bar
            )?;
        }
        if self.underflow + self.overflow > 0 {
            writeln!(
                f,
                "(underflow {}, overflow {})",
                self.underflow, self.overflow
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 9.9, -1.0, 10.0, 11.0]);
        assert_eq!(h.buckets(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 7);
        let text = h.to_string();
        assert!(text.contains("underflow 1, overflow 2"), "{text}");
    }

    #[test]
    fn auto_ranges_over_samples() {
        let samples = [5.0, 7.0, 9.0, 11.0, 13.0];
        let h = Histogram::auto(&samples, 4).unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets().iter().sum::<usize>(), 5);
        assert!(Histogram::auto(&[], 4).is_none());
        assert!(Histogram::auto(&[3.0, 3.0], 4).is_none());
    }

    #[test]
    fn mode_and_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        h.extend((0..100).map(f64::from));
        let (edge, count) = h.mode().unwrap();
        assert_eq!(count, 10);
        assert!(edge >= 0.0);
        let median = h.quantile(0.5).unwrap();
        assert!((40.0..=60.0).contains(&median), "{median}");
        let p95 = h.quantile(0.95).unwrap();
        assert!(p95 > median);
        assert_eq!(Histogram::new(0.0, 1.0, 2).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
