//! Statistics toolbox: regression, correlation, summary statistics and
//! plain-text chart rendering.
//!
//! The reproduced paper's headline quantitative result is a logarithmic fit
//! `Pf = a·ln(D) + b` with `R² = 0.9246` (its Figure 7); [`log_fit`] and
//! [`Regression`] implement exactly that analysis. The crate also provides
//! the Pearson/Spearman coefficients, bootstrap confidence intervals and
//! the ASCII bar/scatter renderers used by the `repro` binary to regenerate
//! every figure as text.
//!
//! # Example
//!
//! ```
//! use analysis::log_fit;
//!
//! // Synthetic Pf values following 0.08·ln(D) - 0.02 exactly.
//! let d = [8.0f64, 11.0, 18.0, 20.0, 47.0, 48.0];
//! let pf: Vec<f64> = d.iter().map(|&x| 0.08 * x.ln() - 0.02).collect();
//! let fit = log_fit(&d, &pf).unwrap();
//! assert!((fit.slope - 0.08).abs() < 1e-12);
//! assert!((fit.r_squared - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chart;
mod correlation;
mod histogram;
mod regression;
mod rng;
mod stats;

pub use chart::{bar_chart, grouped_bar_chart, scatter_plot, Series};
pub use correlation::{CorrelationPoint, FittedModel};
pub use histogram::Histogram;
pub use regression::{linear_fit, log_fit, FitError, Regression};
pub use rng::SplitMix64;
pub use stats::{
    bootstrap_mean_ci, dc_grade, mean, pearson, spearman, std_dev, wilson_interval, Summary,
};
