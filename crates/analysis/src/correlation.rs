//! The fitted diversity→Pf correlation model — the paper's headline
//! artifact (`Pf = a·ln(D) + b`, Fig. 7) as a first-class value.
//!
//! [`FittedModel`] packages the [`log_fit`] coefficients together with
//! everything a *served* predictor needs: the sample count, the
//! per-point residuals (the honest error band around a prediction) and
//! a clamped [`FittedModel::predict`]. The struct is pure data — wire
//! serialization lives next to the campaign wire formats, which depend
//! on this crate.

use crate::regression::{log_fit, FitError, Regression};

/// One calibration point of the correlation sweep: a workload's
/// ISS-measured instruction diversity paired with its RTL-measured
/// failure probability.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationPoint {
    /// Human-readable point label (benchmark name, plus dataset index
    /// when the sweep spans input datasets).
    pub label: String,
    /// Instruction diversity `D` (distinct opcodes executed on the ISS).
    pub diversity: f64,
    /// Measured failure probability over the RTL campaign.
    pub pf: f64,
}

/// The calibrated correlation model `Pf = a·ln(D) + b`, with its
/// goodness-of-fit and residual structure.
///
/// The paper's Fig. 7 reports `a = 0.0838`, `b = −0.0191`,
/// `R² = 0.9246`; a reproduction sweep produces its own triple plus the
/// residual band the paper's scatter implies.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    /// Slope `a` of the log fit.
    pub a: f64,
    /// Intercept `b` of the log fit.
    pub b: f64,
    /// Coefficient of determination.
    pub r2: f64,
    /// Number of calibration points.
    pub n: usize,
    /// Per-point residuals `pf - predict(diversity)`, in calibration
    /// point order. Their extremes are the prediction's honest band.
    pub residuals: Vec<f64>,
}

impl FittedModel {
    /// Fit the model over calibration points.
    ///
    /// # Errors
    ///
    /// As [`log_fit`]: fewer than two points, constant diversity, or a
    /// non-positive/non-finite diversity value.
    pub fn fit(points: &[CorrelationPoint]) -> Result<FittedModel, FitError> {
        let xs: Vec<f64> = points.iter().map(|p| p.diversity).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.pf).collect();
        let fit = log_fit(&xs, &ys)?;
        let residuals = points
            .iter()
            .map(|p| p.pf - fit.predict(p.diversity))
            .collect();
        Ok(FittedModel {
            a: fit.slope,
            b: fit.intercept,
            r2: fit.r_squared,
            n: points.len(),
            residuals,
        })
    }

    /// Predict `Pf` at diversity `d`, clamped to the probability range.
    /// Non-positive diversity predicts 0 (nothing executed, nothing
    /// propagates) rather than evaluating `ln` off its domain.
    pub fn predict(&self, d: f64) -> f64 {
        if d <= 0.0 {
            return 0.0;
        }
        (self.a * d.ln() + self.b).clamp(0.0, 1.0)
    }

    /// The residual band: the largest absolute calibration residual. A
    /// prediction is honestly reported as `pf ± band`.
    pub fn band(&self) -> f64 {
        self.residuals.iter().fold(0.0, |acc, r| acc.max(r.abs()))
    }

    /// The underlying [`Regression`] view (for [`Regression::equation`]
    /// and friends).
    pub fn regression(&self) -> Regression {
        Regression {
            slope: self.a,
            intercept: self.b,
            r_squared: self.r2,
            logarithmic: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(label: &str, diversity: f64, pf: f64) -> CorrelationPoint {
        CorrelationPoint {
            label: label.to_string(),
            diversity,
            pf,
        }
    }

    #[test]
    fn exact_log_data_fits_perfectly() {
        let points: Vec<CorrelationPoint> = [8.0f64, 11.0, 18.0, 20.0, 47.0]
            .iter()
            .map(|&d| point("p", d, 0.0838 * d.ln() - 0.0191))
            .collect();
        let model = FittedModel::fit(&points).unwrap();
        assert!((model.a - 0.0838).abs() < 1e-10);
        assert!((model.b + 0.0191).abs() < 1e-10);
        assert!((model.r2 - 1.0).abs() < 1e-12);
        assert_eq!(model.n, 5);
        assert!(model.band() < 1e-12);
        assert!(model.residuals.iter().all(|r| r.abs() < 1e-12));
    }

    #[test]
    fn prediction_is_clamped_to_probabilities() {
        let model = FittedModel {
            a: 0.5,
            b: -0.1,
            r2: 0.9,
            n: 4,
            residuals: vec![0.01, -0.02, 0.0, 0.015],
        };
        assert_eq!(model.predict(0.0), 0.0);
        assert_eq!(model.predict(-3.0), 0.0);
        assert_eq!(model.predict(1e9), 1.0);
        assert!(model.predict(2.0) > 0.0 && model.predict(2.0) < 1.0);
        assert!((model.band() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn residuals_measure_scatter() {
        let points = vec![
            point("a", 8.0, 0.10),
            point("b", 18.0, 0.30),
            point("c", 44.0, 0.28),
            point("d", 45.0, 0.33),
        ];
        let model = FittedModel::fit(&points).unwrap();
        assert!(model.r2 < 1.0);
        assert!(model.band() > 0.0);
        // Residuals are in point order and consistent with predict().
        for (p, r) in points.iter().zip(&model.residuals) {
            assert!((p.pf - (model.a * p.diversity.ln() + model.b) - r).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_sweeps_are_refused() {
        let constant = vec![point("a", 10.0, 0.1), point("b", 10.0, 0.2)];
        assert_eq!(FittedModel::fit(&constant), Err(FitError::Degenerate));
        assert_eq!(
            FittedModel::fit(&[point("a", 10.0, 0.1)]),
            Err(FitError::NotEnoughData)
        );
    }
}
