//! End-to-end correlation sweeps: a sweep cut into shards, shipped over
//! the wire, and merged must reproduce the unsharded report **bit for
//! bit** — the property that lets a fleet run the paper's Fig. 7
//! experiment without anyone re-checking the math.

use fault_inject::{merge_correlation_shards, CorrelationShard, CorrelationSpec, Prediction};
use workloads::Benchmark;

/// A laptop-sized sweep: the two synthetic benchmarks (cheap golden runs,
/// distinct diversities) under a small seeded sample.
fn tiny_spec() -> CorrelationSpec {
    let mut spec = CorrelationSpec::new();
    spec.benchmarks = vec![Benchmark::Membench, Benchmark::Intbench];
    spec.sample = Some((6, 0xc0ffee));
    spec
}

#[test]
fn sharded_sweep_merges_bit_identically() {
    let unsharded = tiny_spec().run_report(2).expect("unsharded sweep");
    let mut shards = Vec::new();
    for index in 0..2 {
        let mut spec = tiny_spec();
        spec.shard = Some((index, 2));
        shards.push(spec.run(2).expect("shard run"));
    }
    // Round-trip every shard through its wire form, as a fleet would.
    let shards: Vec<CorrelationShard> = shards
        .iter()
        .map(|s| CorrelationShard::parse(&s.to_json()).expect("shard wire round-trip"))
        .collect();
    let merged = merge_correlation_shards(shards).expect("merge");
    assert_eq!(
        merged.to_json(),
        unsharded.to_json(),
        "sharded and unsharded reports must be byte-identical"
    );

    // The fitted model predicts finite, clamped probabilities, and the
    // report itself survives a wire round-trip.
    let best = merged.best_domain();
    assert!(best.model.r2.is_finite());
    for d in [1, 10, 100] {
        let p = Prediction::evaluate(&merged.fingerprint, best, d);
        assert!((0.0..=1.0).contains(&p.pf), "Pf({d}) = {}", p.pf);
        assert!(p.band.is_finite());
    }
    let back = fault_inject::CorrelationReport::parse(&merged.to_json()).expect("report reparse");
    assert_eq!(back, merged);
}

#[test]
fn sharded_specs_refuse_run_report() {
    let mut spec = tiny_spec();
    spec.shard = Some((0, 2));
    assert!(spec.run_report(1).is_err());
}
