//! Crash-safety integration tests: a campaign killed mid-run and resumed
//! from its write-ahead journal reconstitutes a bit-identical result; a
//! deliberately poisoned fault site costs one job, not the campaign; and
//! configuration mistakes surface as structured errors, not panics.

use fault_inject::{Campaign, CampaignError, FaultOutcome, FaultSite, JournalError, Target};
use leon3_model::{Leon3, Leon3Config};
use rtl_sim::FaultKind;
use sparc_isa::Unit;
use std::fs;
use std::path::PathBuf;
use workloads::{Benchmark, Params};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fault-journal-itests");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn campaign(target: Target, seed: u64) -> Campaign {
    Campaign::new(Benchmark::Rspeed.program(&Params::default()), target)
        .with_sample(10, seed)
        .with_kinds(&[FaultKind::StuckAt1, FaultKind::OpenLine])
        .with_injection_fraction(0.3)
}

/// Journal an uninterrupted run, then simulate a kill: truncate the file
/// to its header plus half the entries plus a *torn* final line, resume,
/// and demand a record- and stats-identical result (modulo `resumed`).
fn assert_kill_and_resume(target: Target, seed: u64, name: &str) {
    let path = temp_path(name);
    let campaign = campaign(target, seed);
    let uninterrupted = campaign.run_journaled(4, &path).expect("journaled run");

    let text = fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > 4,
        "need enough jobs to interrupt meaningfully"
    );
    let keep = 1 + (lines.len() - 1) / 2;
    let mut killed = lines[..keep].join("\n");
    killed.push('\n');
    // The kill lands mid-append: half a JSON line, no newline.
    killed.push_str(&lines[keep][..lines[keep].len() / 2]);
    fs::write(&path, &killed).expect("truncate journal");

    let resumed = campaign.resume(4, &path).expect("resume");
    assert_eq!(
        resumed.records(),
        uninterrupted.records(),
        "resume must reconstitute identical records"
    );
    let mut stats = *resumed.stats();
    assert_eq!(
        stats.resumed,
        keep - 1,
        "every intact journal line must be replayed, the torn one re-run"
    );
    stats.resumed = 0;
    assert_eq!(
        stats,
        *uninterrupted.stats(),
        "stats must match modulo the resumed counter"
    );

    // The resumed journal is complete: resuming again replays everything
    // and simulates nothing.
    let replayed = campaign.resume(4, &path).expect("second resume");
    assert_eq!(replayed.records(), uninterrupted.records());
    assert_eq!(replayed.stats().resumed, replayed.stats().jobs);
}

#[test]
fn kill_and_resume_is_equivalent_on_iu() {
    assert_kill_and_resume(Target::IntegerUnit, 0xA1, "resume-iu.jsonl");
}

#[test]
fn kill_and_resume_is_equivalent_on_cmem() {
    assert_kill_and_resume(Target::CacheMemory, 0xB2, "resume-cmem.jsonl");
}

#[test]
fn poisoned_site_costs_one_job_not_the_campaign() {
    // bit 63 on a 32-bit net: `NetPool::inject` panics inside the worker.
    // Panic isolation must retry once, classify the job EngineAnomaly and
    // let every other job complete normally.
    let cpu = Leon3::new(Leon3Config::default());
    let pc = cpu.nets().pc;
    let good = FaultSite {
        net: pc,
        bit: 2,
        unit: Unit::Fetch,
    };
    let poisoned = FaultSite {
        net: pc,
        bit: 63,
        unit: Unit::Fetch,
    };
    let result = Campaign::new(
        Benchmark::Rspeed.program(&Params::default()),
        Target::IntegerUnit,
    )
    .with_sites(vec![good, poisoned])
    .with_kinds(&[FaultKind::StuckAt1])
    .try_run(2)
    .expect("the campaign itself must complete");

    assert_eq!(result.records().len(), 2);
    let stats = result.stats();
    assert_eq!(stats.anomalies, 1, "{stats:?}");
    assert_eq!(stats.retried, 1, "one retry before giving up: {stats:?}");

    let healthy = &result.records()[0];
    assert!(
        !matches!(healthy.outcome, FaultOutcome::EngineAnomaly { .. }),
        "the healthy job must classify normally: {healthy:?}"
    );
    let anomaly = &result.records()[1];
    match &anomaly.outcome {
        FaultOutcome::EngineAnomaly { payload } => {
            assert!(
                payload.contains("outside net"),
                "the panic message must be preserved: {payload}"
            );
        }
        other => panic!("poisoned job must be an EngineAnomaly, got {other:?}"),
    }

    // Anomalies are excluded from the Pf denominator rather than counted
    // as either failures or no-effects.
    let summary = result.summary(FaultKind::StuckAt1);
    assert_eq!(summary.injections, 2);
    assert_eq!(summary.anomalies, 1);
}

#[test]
fn poisoned_jobs_survive_the_journal_round_trip() {
    let cpu = Leon3::new(Leon3Config::default());
    let pc = cpu.nets().pc;
    let path = temp_path("anomaly.jsonl");
    let campaign = Campaign::new(
        Benchmark::Rspeed.program(&Params::default()),
        Target::IntegerUnit,
    )
    .with_sites(vec![
        FaultSite {
            net: pc,
            bit: 1,
            unit: Unit::Fetch,
        },
        FaultSite {
            net: pc,
            bit: 63,
            unit: Unit::Fetch,
        },
    ])
    .with_kinds(&[FaultKind::StuckAt1]);
    let live = campaign.run_journaled(2, &path).expect("journaled run");
    // A complete journal replays entirely — including the anomaly record
    // with its panic payload.
    let replayed = campaign.resume(2, &path).expect("resume");
    assert_eq!(replayed.records(), live.records());
    assert_eq!(replayed.stats().resumed, 2);
}

#[test]
fn resume_refuses_a_foreign_journal() {
    let path = temp_path("foreign.jsonl");
    campaign(Target::IntegerUnit, 1)
        .run_journaled(2, &path)
        .expect("journaled run");

    // A different sample seed is a different campaign fingerprint.
    match campaign(Target::IntegerUnit, 2).resume(2, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "fingerprint");
        }
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }

    // A different workload is caught even before the fingerprint.
    let other_program = Benchmark::Intbench.program(&Params::default());
    let foreign = Campaign::new(other_program, Target::IntegerUnit)
        .with_sample(10, 1)
        .with_kinds(&[FaultKind::StuckAt1, FaultKind::OpenLine])
        .with_injection_fraction(0.3);
    match foreign.resume(2, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "workload");
        }
        other => panic!("expected a workload mismatch, got {other:?}"),
    }

    // A missing journal is an I/O error, not a panic.
    assert!(matches!(
        campaign(Target::IntegerUnit, 1).resume(2, &temp_path("missing.jsonl")),
        Err(CampaignError::Journal(JournalError::Io { .. }))
    ));
}

#[test]
fn resume_refuses_a_foreign_fault_schedule_by_field_name() {
    // A journal carries the campaign's fault-kind wire tokens (journal
    // v5); resuming under a different time-varying schedule must be
    // refused naming the exact mismatched parameter, not the opaque
    // fingerprint.
    let with_kind = |kind: FaultKind| {
        Campaign::new(
            Benchmark::Rspeed.program(&Params::default()),
            Target::IntegerUnit,
        )
        .with_sample(6, 9)
        .with_kinds(&[kind])
        .with_injection_fraction(0.3)
    };
    let intermittent = |duty: u64, phase: u64| FaultKind::IntermittentStuck {
        level: true,
        period: 400,
        duty,
        phase,
    };
    let path = temp_path("schedule.jsonl");
    with_kind(intermittent(100, 0))
        .run_journaled(2, &path)
        .expect("journaled run");

    // Same kind, different duty cycle: named down to the parameter.
    match with_kind(intermittent(200, 0)).resume(2, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch {
            field,
            expected,
            found,
        })) => {
            assert_eq!(field, "kinds.duty");
            assert_eq!(expected, "200");
            assert_eq!(found, "100");
        }
        other => panic!("expected a kinds.duty mismatch, got {other:?}"),
    }
    match with_kind(intermittent(100, 7)).resume(2, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "kinds.phase");
        }
        other => panic!("expected a kinds.phase mismatch, got {other:?}"),
    }

    // A different kind altogether reports the kind lists.
    match with_kind(FaultKind::TransientBurst {
        flips: 3,
        spacing: 50,
    })
    .resume(2, &path)
    {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "kinds");
        }
        other => panic!("expected a kinds mismatch, got {other:?}"),
    }

    // Burst parameters are named the same way.
    let burst = |spacing: u64| FaultKind::TransientBurst { flips: 2, spacing };
    let path = temp_path("schedule-burst.jsonl");
    with_kind(burst(60))
        .run_journaled(2, &path)
        .expect("journaled run");
    match with_kind(burst(90)).resume(2, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "kinds.spacing");
        }
        other => panic!("expected a kinds.spacing mismatch, got {other:?}"),
    }

    // And the matching schedule still resumes cleanly.
    let resumed = with_kind(burst(60)).resume(2, &path).expect("resume");
    assert_eq!(resumed.stats().resumed, resumed.stats().jobs);
}

#[test]
fn config_mistakes_error_instead_of_panicking() {
    let c = campaign(Target::IntegerUnit, 3);
    assert_eq!(c.try_run(0), Err(CampaignError::ZeroThreads));
    assert_eq!(
        c.clone().with_kinds(&[]).try_run(2),
        Err(CampaignError::NoFaultKinds)
    );
    assert_eq!(
        c.clone().with_sites(Vec::new()).try_run(2),
        Err(CampaignError::NoFaultSites)
    );
    assert!(matches!(
        c.clone().with_injection_fraction(2.0).try_run(2),
        Err(CampaignError::InjectionPastEnd { .. })
    ));
}
