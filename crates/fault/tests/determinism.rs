//! The service's cache and shard-merge guarantees rest on one property:
//! a campaign is a pure function of its spec. These tests pin it.

use fault_inject::{Campaign, SafetyConfig, Target};
use workloads::{Benchmark, Params};

fn campaign(target: Target) -> Campaign {
    Campaign::new(Benchmark::Rspeed.program(&Params::default()), target)
        .with_sample(16, 7)
        .with_injection_fraction(0.2)
        .with_safety(SafetyConfig {
            lockstep_window: Some(64),
            parity: true,
            watchdog_cycles: None,
        })
}

/// `try_run(1)` and `try_run(4)` produce bit-identical results —
/// records *and* stats — so the thread count is a pure throughput knob
/// and never part of a campaign's identity.
#[test]
fn thread_count_does_not_change_the_result() {
    for target in [Target::IntegerUnit, Target::CacheMemory] {
        let serial = campaign(target).try_run(1).expect("serial run");
        let parallel = campaign(target).try_run(4).expect("parallel run");
        assert_eq!(serial, parallel, "target {target:?}");
    }
}

/// The same holds across injection instants, including the prefix-free
/// cycle-0 case.
#[test]
fn thread_count_is_invisible_at_cycle_zero() {
    let base = || {
        Campaign::new(
            Benchmark::Rspeed.program(&Params::default()),
            Target::IntegerUnit,
        )
        .with_sample(12, 3)
        .with_injection_cycle(0)
    };
    let serial = base().try_run(1).expect("serial run");
    let parallel = base().try_run(4).expect("parallel run");
    assert_eq!(serial, parallel);
}

/// Two freshly-built identical campaigns agree on the public
/// fingerprint, and a differently-configured one does not.
#[test]
fn fingerprint_is_stable_and_discriminating() {
    let a = campaign(Target::IntegerUnit).fingerprint();
    let b = campaign(Target::IntegerUnit).fingerprint();
    assert_eq!(a, b);
    let c = campaign(Target::CacheMemory).fingerprint();
    assert_ne!(a, c);
}
