//! Static-analysis campaigns must be **observationally equivalent** to
//! plain campaigns: identical ISO buckets and `Pf`, bit-identical records
//! for every job that is actually simulated, zero simulation spent on
//! pruned or collapsed jobs, and an audit sample that re-simulates the
//! analyzer's verdicts in full and confirms them.

use fault_inject::{
    fault_sites, sample_sites, Campaign, CampaignError, FaultRecord, FaultSite, PrunedBy,
    StaticAnalysis, Target,
};
use leon3_model::{Leon3, Leon3Config};
use rtl_sim::FaultKind;
use std::collections::BTreeSet;
use workloads::{Benchmark, Params};

/// Every site (all bits) on a net involved in a stuck-at equivalence
/// class of size > 1 — members and their representatives — within
/// `target`.
fn class_sites(cpu: &Leon3, sa: &StaticAnalysis, target: Target) -> Vec<FaultSite> {
    let mut nets = BTreeSet::new();
    for (id, _) in cpu.pool().iter() {
        let root = sa.class_root(id);
        if root != id {
            nets.insert(id.raw());
            nets.insert(root.raw());
        }
    }
    fault_sites(cpu, target)
        .into_iter()
        .filter(|s| nets.contains(&s.net.raw()))
        .collect()
}

/// A seeded stratified sample plus the full equivalence-class population,
/// de-duplicated.
fn sites_with_classes(target: Target, n: usize, seed: u64) -> Vec<FaultSite> {
    let config = Leon3Config::default();
    let cpu = Leon3::new(config.clone());
    let sa = StaticAnalysis::for_config(&config);
    let universe = fault_sites(&cpu, target);
    let mut sites = sample_sites(&universe, n, seed);
    sites.extend(class_sites(&cpu, &sa, target));
    let mut seen = BTreeSet::new();
    sites.retain(|s| seen.insert((s.net.raw(), s.bit)));
    sites
}

/// Same record, ignoring provenance.
fn same_modulo_provenance(a: &FaultRecord, b: &FaultRecord) {
    assert_eq!(a.site, b.site);
    assert_eq!(a.kind, b.kind);
    assert_eq!(a.outcome, b.outcome, "outcome differs at {:?}", a.site);
    assert_eq!(
        a.activated, b.activated,
        "activated differs at {:?}",
        a.site
    );
    assert_eq!(
        a.detection, b.detection,
        "detection differs at {:?}",
        a.site
    );
}

fn assert_static_equivalent(campaign: &Campaign, kinds: &[FaultKind]) {
    let plain = campaign.run(4);
    let pruned = campaign
        .clone()
        .with_static_analysis(true)
        .with_static_audit(6, 0x5151)
        .run(4);

    let (p, s) = (plain.stats(), pruned.stats());
    assert_eq!(p.jobs, s.jobs);
    assert_eq!(plain.records().len(), pruned.records().len());

    // The static engine ledger: every job is forked, skipped as inert, or
    // statically classified — never silently dropped.
    assert_eq!(
        s.forked + s.skipped_inactive + s.statically_pruned,
        s.jobs,
        "static-run job ledger does not balance"
    );
    assert_eq!(p.statically_pruned, 0);
    assert_eq!(p.collapsed_classes, 0);

    // Zero simulation for pruned jobs: the static run spends strictly
    // fewer cycles, and each synthesized record banks the golden length.
    assert!(
        s.statically_pruned > 0,
        "nothing was pruned — test is vacuous"
    );
    assert!(
        s.cycles_simulated < p.cycles_simulated,
        "static analysis must reduce simulated cycles ({} vs {})",
        s.cycles_simulated,
        p.cycles_simulated,
    );

    let mut observed_pruned = 0;
    for (a, b) in plain.records().iter().zip(pruned.records()) {
        match b.pruned_by {
            // Simulated jobs (including every class representative) are
            // bit-identical to the plain run.
            None => assert_eq!(a, b),
            // Synthesized jobs agree with what the plain run actually
            // simulated — the analyzer's verdicts are empirically sound.
            Some(_) => {
                observed_pruned += 1;
                same_modulo_provenance(a, b);
            }
        }
    }
    assert_eq!(observed_pruned, s.statically_pruned);

    // Per-model aggregates are preserved exactly.
    for &kind in kinds {
        assert_eq!(plain.pf(kind), pruned.pf(kind));
        assert_eq!(plain.coverage(kind), pruned.coverage(kind));
    }
    assert_eq!(plain.coverage_all(), pruned.coverage_all());
}

#[test]
fn iu_stuck_at_collapsing_matches_uncollapsed_run() {
    let program = Benchmark::Intbench.program(&Params::default());
    let campaign = Campaign::new(program, Target::IntegerUnit)
        .with_sites(sites_with_classes(Target::IntegerUnit, 10, 0x71))
        .with_kinds(&[FaultKind::StuckAt0, FaultKind::StuckAt1])
        .with_injection_fraction(0.3);
    assert_static_equivalent(&campaign, &[FaultKind::StuckAt0, FaultKind::StuckAt1]);

    // The IU has the fetch→decode pass-through, so collapsing must have
    // found at least one class.
    let result = campaign.clone().with_static_analysis(true).run(4);
    assert!(result.stats().collapsed_classes > 0);
    assert!(result
        .records()
        .iter()
        .any(|r| r.pruned_by == Some(PrunedBy::Collapsed)));
}

#[test]
fn iu_transient_flips_on_safe_latches_are_pruned() {
    let program = Benchmark::Rspeed.program(&Params::default());
    let campaign = Campaign::new(program, Target::IntegerUnit)
        .with_sample(24, 0x72)
        .with_kinds(&[FaultKind::TransientFlip])
        .with_injection_fraction(0.5);
    assert_static_equivalent(&campaign, &[FaultKind::TransientFlip]);

    // Transient-safe pruning synthesizes benign records with `static`
    // provenance; flips never collapse.
    let result = campaign.clone().with_static_analysis(true).run(4);
    assert_eq!(result.stats().collapsed_classes, 0);
    assert!(result
        .records()
        .iter()
        .any(|r| r.pruned_by == Some(PrunedBy::Static)));
}

#[test]
fn time_varying_campaign_with_audit_matches_and_never_collapses() {
    // The time-varying kinds flow through the static engine soundly:
    // unobservable-net pruning still applies (and the audit re-simulates
    // a sample of those verdicts in full), bursts prune on
    // transient-safe latches, but *neither* kind ever joins a stuck-at
    // equivalence class — an intermittent releases between windows and a
    // burst is a train of rewrites, so the pass-through argument that
    // justifies collapsing does not hold for them.
    let intermittent = FaultKind::IntermittentStuck {
        level: true,
        period: 400,
        duty: 100,
        phase: 0,
    };
    let burst = FaultKind::TransientBurst {
        flips: 3,
        spacing: 80,
    };
    let program = Benchmark::Intbench.program(&Params::default());
    // Include the equivalence-class population deliberately: were
    // collapsing (unsoundly) applied to time-varying kinds, these are
    // exactly the sites where the copied outcome would diverge.
    let campaign = Campaign::new(program, Target::IntegerUnit)
        .with_sites(sites_with_classes(Target::IntegerUnit, 12, 0x75))
        .with_kinds(&[intermittent, burst])
        .with_injection_fraction(0.3);
    assert_static_equivalent(&campaign, &[intermittent, burst]);

    let result = campaign.clone().with_static_analysis(true).run(4);
    assert_eq!(
        result.stats().collapsed_classes,
        0,
        "time-varying kinds must be excluded from stuck-at collapsing"
    );
    assert!(result
        .records()
        .iter()
        .all(|r| r.pruned_by != Some(PrunedBy::Collapsed)));
    // The analyzer-level invariant the campaign behavior rests on.
    assert!(!StaticAnalysis::collapsible(intermittent));
    assert!(!StaticAnalysis::collapsible(burst));

    // Mixed with stuck-ats on the same sites, collapsing returns for the
    // stuck-at jobs only.
    let mixed = campaign
        .clone()
        .with_kinds(&[FaultKind::StuckAt1, intermittent])
        .with_static_analysis(true)
        .run(4);
    assert!(mixed.stats().collapsed_classes > 0);
    for record in mixed.records() {
        if record.pruned_by == Some(PrunedBy::Collapsed) {
            assert_eq!(
                record.kind,
                FaultKind::StuckAt1,
                "only the stuck-at jobs may collapse"
            );
        }
    }
}

#[test]
fn cmem_campaign_with_mixed_kinds_matches() {
    let program = Benchmark::Membench.program(&Params::default());
    let campaign = Campaign::new(program, Target::CacheMemory)
        .with_sample(16, 0x73)
        .with_kinds(&[FaultKind::StuckAt1, FaultKind::TransientFlip])
        .with_injection_fraction(0.4)
        .with_parity(true);
    let plain = campaign.run(4);
    let pruned = campaign.clone().with_static_analysis(true).run(4);
    assert_eq!(plain.records().len(), pruned.records().len());
    for (a, b) in plain.records().iter().zip(pruned.records()) {
        same_modulo_provenance(a, b);
    }
    assert_eq!(plain.coverage_all(), pruned.coverage_all());
    let s = pruned.stats();
    assert_eq!(s.forked + s.skipped_inactive + s.statically_pruned, s.jobs);
}

#[test]
fn journaled_static_run_resumes_to_identical_records() {
    let dir = std::env::temp_dir().join("static_prune_journal_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("static.journal");
    let _ = std::fs::remove_file(&path);

    let program = Benchmark::Intbench.program(&Params::default());
    let campaign = Campaign::new(program, Target::IntegerUnit)
        .with_sites(sites_with_classes(Target::IntegerUnit, 6, 0x74))
        .with_kinds(&[FaultKind::StuckAt1])
        .with_injection_fraction(0.3)
        .with_static_analysis(true);
    let first = campaign.run_journaled(4, &path).unwrap();
    // Resume over the complete journal: nothing re-runs, yet buckets,
    // provenance and the collapsed-class count are all reconstructed.
    let resumed = campaign.resume(4, &path).unwrap();
    assert_eq!(first.records(), resumed.records());
    assert_eq!(
        first.stats().statically_pruned,
        resumed.stats().statically_pruned
    );
    assert_eq!(
        first.stats().collapsed_classes,
        resumed.stats().collapsed_classes
    );
    // Every job came back from the journal (the replayed deltas also
    // reconstruct the original forked/pruned counters, so `resumed` is
    // the signal that nothing was re-simulated).
    assert_eq!(resumed.stats().resumed, resumed.stats().jobs);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn static_config_errors_are_structured() {
    let program = Benchmark::Intbench.program(&Params::default());
    let audit_without_static = Campaign::new(program.clone(), Target::IntegerUnit)
        .with_sample(4, 1)
        .with_static_audit(4, 2)
        .try_run(2);
    assert_eq!(
        audit_without_static.unwrap_err(),
        CampaignError::AuditWithoutStaticAnalysis
    );

    let static_with_pairs = Campaign::new(program, Target::IntegerUnit)
        .with_sample(4, 1)
        .with_static_analysis(true)
        .try_run_pairs(2);
    assert_eq!(
        static_with_pairs.unwrap_err(),
        CampaignError::StaticWithPairs
    );
}
