//! Property tests over the journal wire format.
//!
//! Gated behind the off-by-default `proptest` feature so the default
//! workspace builds with zero network access:
//! `cargo test -p fault-inject --features proptest`.
//!
//! Two invariants the resume path stands on:
//!
//! 1. **Lossless round-trip** — every `(outcome, kind, unit, delta)`
//!    combination serializes to one line and re-parses to an identical
//!    [`Entry`], including panic payloads full of JSON metacharacters;
//! 2. **Truncation recovery** — a journal cut at *any* byte inside its
//!    final line reads back as the intact prefix, never as corruption.
//!
//! Plus the correlation subsystem's wire messages ([`FittedModel`],
//! [`PredictRequest`], [`Prediction`]), whose floats — negative
//! intercepts, signed residuals — exercise the dialect's signed-number
//! path.
#![cfg(feature = "proptest")]

use analysis::FittedModel;
use fault_inject::journal::{read, Entry, Header};
use fault_inject::wire::{kind_from_token, kind_to_token, Json};
use fault_inject::{
    fitted_model_from_obj, fitted_model_to_json, CampaignStats, Detection, FaultOutcome,
    FaultRecord, FaultSite, Mechanism, PredictRequest, Prediction, Target,
};
use proptest::prelude::*;
use rtl_sim::{FaultKind, NetId};
use sparc_isa::{Opcode, Unit};
use std::collections::BTreeMap;

/// Characters deliberately rich in JSON edge cases: quotes, backslashes,
/// control characters, multi-byte code points and a non-BMP emoji (which
/// a `\u` escape can only express as a surrogate pair).
const PAYLOAD_PALETTE: [char; 16] = [
    'a', 'Z', '9', ' ', '"', '\\', '\n', '\r', '\t', '\u{0}', '\u{1b}', '/', 'é', 'π', '🚗',
    '\u{7f}',
];

fn arb_payload() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..PAYLOAD_PALETTE.len(), 0..24)
        .prop_map(|picks| picks.into_iter().map(|i| PAYLOAD_PALETTE[i]).collect())
}

fn arb_outcome() -> impl Strategy<Value = FaultOutcome> {
    prop_oneof![
        Just(FaultOutcome::NoEffect),
        (any::<u32>(), any::<u64>()).prop_map(|(d, l)| FaultOutcome::Failure {
            divergence: d as usize,
            latency_cycles: l,
        }),
        any::<u64>().prop_map(|l| FaultOutcome::Hang { latency_cycles: l }),
        any::<u64>().prop_map(|l| FaultOutcome::ErrorModeStop { latency_cycles: l }),
        arb_payload().prop_map(|payload| FaultOutcome::EngineAnomaly { payload }),
    ]
}

fn arb_detection() -> impl Strategy<Value = Detection> {
    prop_oneof![
        Just(Detection::Undetected),
        (0usize..Mechanism::ALL.len(), any::<u64>(), any::<u64>()).prop_map(
            |(mechanism, latency_cycles, latency_writes)| Detection::Detected {
                mechanism: Mechanism::ALL[mechanism],
                latency_cycles,
                latency_writes,
            }
        ),
    ]
}

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        Just(FaultKind::StuckAt0),
        Just(FaultKind::StuckAt1),
        Just(FaultKind::OpenLine),
        Just(FaultKind::TransientFlip),
        // Parameters drawn valid by construction: 1 <= duty <= period,
        // phase < period (the wire rejects anything else).
        (any::<bool>(), 1u64..5_000, any::<u64>(), any::<u64>()).prop_map(
            |(level, period, duty, phase)| FaultKind::IntermittentStuck {
                level,
                period,
                duty: 1 + duty % period,
                phase: phase % period,
            }
        ),
        (1u32..1_000, 1u64..100_000)
            .prop_map(|(flips, spacing)| FaultKind::TransientBurst { flips, spacing }),
    ]
}

/// A canonical per-job delta, the only shape `Campaign` ever journals:
/// exactly one engine counter set, flag counters in {0, 1}, `anomalies`
/// agreeing with the outcome, the ISO bucket counters agreeing with the
/// record (they travel off-wire, reconstructed by the parser), and
/// campaign-level fields zero.
fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        (
            0usize..10_000,
            any::<u32>(),
            any::<u8>(),
            0usize..Unit::ALL.len(),
            arb_kind(),
            arb_outcome(),
        ),
        (
            0u8..4,
            any::<bool>(),
            any::<bool>(),
            any::<bool>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<bool>(), arb_detection()),
    )
        .prop_map(
            |(
                (job, net, bit, unit_idx, kind, outcome),
                (engine, short_circuited, timed_out, retried, cycles_simulated, cycles_avoided),
                (activated, detection),
            )| {
                let mut delta = CampaignStats {
                    short_circuited: usize::from(short_circuited),
                    timed_out: usize::from(timed_out),
                    retried: usize::from(retried),
                    anomalies: usize::from(matches!(outcome, FaultOutcome::EngineAnomaly { .. })),
                    cycles_simulated,
                    cycles_avoided,
                    ..CampaignStats::default()
                };
                match engine {
                    0 => delta.skipped_inactive = 1,
                    1 => delta.forked = 1,
                    2 => delta.full_reexecutions = 1,
                    _ => {}
                }
                let record = FaultRecord {
                    site: FaultSite {
                        net: NetId::from_raw(net),
                        bit,
                        unit: Unit::ALL[unit_idx],
                    },
                    kind,
                    outcome,
                    activated,
                    detection,
                    pruned_by: None,
                };
                delta.count_bucket(&record);
                Entry { job, record, delta }
            },
        )
}

fn arb_header() -> impl Strategy<Value = Header> {
    (
        any::<u64>(),
        any::<u64>(),
        0usize..1_000_000,
        any::<u64>(),
        any::<u64>(),
        (
            1usize..64,
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(arb_kind(), 0..4),
        ),
    )
        .prop_map(
            |(
                workload,
                fingerprint,
                jobs,
                injection_cycle,
                golden_cycles,
                (instants, instants_hash, checkpoint_stride, kinds),
            )| Header {
                workload,
                fingerprint,
                jobs,
                injection_cycle,
                golden_cycles,
                instants,
                instants_hash,
                checkpoint_stride,
                kinds: kinds.into_iter().map(kind_to_token).collect(),
            },
        )
}

/// Finite floats with plenty of negative and fractional values, built
/// from integer ratios (the shim has no float strategies; a ratio is
/// always finite for a nonzero denominator).
fn arb_f64() -> impl Strategy<Value = f64> {
    (any::<i32>(), 1u32..10_000).prop_map(|(n, d)| f64::from(n) / f64::from(d))
}

fn arb_model() -> impl Strategy<Value = FittedModel> {
    (
        arb_f64(),
        arb_f64(),
        arb_f64(),
        proptest::collection::vec(arb_f64(), 0..8),
    )
        .prop_map(|(a, b, r2, residuals)| FittedModel {
            a,
            b,
            r2,
            n: residuals.len(),
            residuals,
        })
}

fn arb_target() -> impl Strategy<Value = Target> {
    prop_oneof![
        Just(Target::IntegerUnit),
        Just(Target::CacheMemory),
        Just(Target::Whole),
    ]
}

/// A canonical opcode histogram: real mnemonics, positive counts, sorted
/// and deduplicated (the parser's normal form).
fn arb_histogram() -> impl Strategy<Value = Vec<(String, u64)>> {
    proptest::collection::vec((0usize..Opcode::ALL.len(), 1u64..1_000_000), 1..12).prop_map(
        |picks| {
            let map: BTreeMap<String, u64> = picks
                .into_iter()
                .map(|(i, count)| (Opcode::ALL[i].mnemonic().to_string(), count))
                .collect();
            map.into_iter().collect()
        },
    )
}

fn arb_predict_request() -> impl Strategy<Value = PredictRequest> {
    (
        any::<bool>(),
        arb_payload(),
        arb_histogram(),
        arb_target(),
        arb_kind(),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(
            |(by_name, label, histogram, target, kind, (has_fp, fp))| PredictRequest {
                benchmark: by_name.then(|| label),
                histogram: (!by_name).then_some(histogram),
                target,
                kind,
                fingerprint: has_fp.then(|| format!("corr-{fp:016x}")),
            },
        )
}

proptest! {
    /// Every entry the campaign can produce survives the wire format.
    #[test]
    fn entry_round_trips(entry in arb_entry()) {
        let line = entry.to_line();
        let parsed = Entry::parse(&line, 1);
        prop_assert_eq!(parsed, Ok(entry));
    }

    /// Headers round-trip for all hash/count values and fault-kind lists
    /// (the v5 `kinds` field carries parameterized wire tokens).
    #[test]
    fn header_round_trips(header in arb_header()) {
        prop_assert_eq!(Header::parse(&header.to_line()), Ok(header.clone()));
    }

    /// Every representable fault kind — including both time-varying
    /// parameterized ones — survives its wire token.
    #[test]
    fn kind_tokens_round_trip(kind in arb_kind()) {
        prop_assert_eq!(kind_from_token(&kind_to_token(kind)), Ok(kind));
    }

    /// Fitted models — negative slopes, intercepts and residuals included
    /// — reparse exactly and re-serialize to the same canonical bytes.
    #[test]
    fn fitted_models_round_trip(model in arb_model()) {
        let text = fitted_model_to_json(&model);
        let back = fitted_model_from_obj(&Json::parse(&text).expect("model json parses"))
            .expect("model reparses");
        prop_assert_eq!(&back, &model);
        prop_assert_eq!(fitted_model_to_json(&back), text);
    }

    /// The predictor's request message — label lookups with arbitrary
    /// JSON-hostile labels, histograms over real mnemonics, every domain
    /// — round-trips canonically.
    #[test]
    fn predict_requests_round_trip(request in arb_predict_request()) {
        let text = request.to_json();
        let back = PredictRequest::parse(&text).expect("request reparses");
        prop_assert_eq!(&back, &request);
        prop_assert_eq!(back.to_json(), text);
    }

    /// The predictor's reply message round-trips canonically.
    #[test]
    fn predictions_round_trip(
        pf_band in (arb_f64(), arb_f64()),
        diversity in any::<u64>(),
        fp in any::<u64>(),
        target in arb_target(),
        kind in arb_kind(),
    ) {
        let (pf, band) = pf_band;
        let prediction = Prediction {
            pf,
            band,
            diversity,
            fingerprint: format!("corr-{fp:016x}"),
            target,
            kind,
        };
        let text = prediction.to_json();
        let back = Prediction::parse(&text).expect("prediction reparses");
        prop_assert_eq!(&back, &prediction);
        prop_assert_eq!(back.to_json(), text);
    }

    /// A journal cut anywhere inside its final line reads back as the
    /// intact prefix — truncation is recovered, never misread as
    /// corruption, and never invents or corrupts an entry.
    #[test]
    fn any_cut_of_the_final_line_recovers_the_prefix(
        header in arb_header(),
        entries in proptest::collection::vec(arb_entry(), 1..6),
        cut_seed in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join("fault-journal-props");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cut.jsonl");

        let mut text = format!("{}\n", header.to_line());
        for e in &entries {
            text.push_str(&e.to_line());
            text.push('\n');
        }
        // Cut anywhere within the final entry line (from its first byte,
        // wiping the line, up to just before its closing newline, leaving
        // a torn fragment) — always on a char boundary.
        let last_line_start = text[..text.len() - 1]
            .rfind('\n')
            .expect("header line ends in newline")
            + 1;
        let cuts: Vec<usize> = (last_line_start..text.len() - 1)
            .filter(|&i| text.is_char_boundary(i))
            .collect();
        let cut = cuts[(cut_seed % cuts.len() as u64) as usize];
        std::fs::write(&path, &text[..cut]).expect("write journal");

        let (parsed_header, parsed_entries, _truncated) =
            read(&path).expect("a torn final line is not corruption");
        prop_assert_eq!(parsed_header, header);
        prop_assert_eq!(parsed_entries, entries[..entries.len() - 1].to_vec());
    }
}
