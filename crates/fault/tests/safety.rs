//! Safety-mechanism integration tests.
//!
//! The load-bearing invariant is **degeneration**: with every mechanism
//! disabled (the default), campaigns must be bit-identical to the
//! pre-safety suite. The golden hashes below were computed on the suite
//! before the safety layer existed; the projection deliberately renders
//! only the fields that existed then, so the hash detects any behavioral
//! drift the new code could introduce while ignoring the new fields.
//!
//! On top sit the classification invariants: every injection lands in
//! exactly one ISO 26262 bucket, detection survives the journal
//! round-trip (kill-and-resume), resume refuses a journal written under a
//! different safety configuration, and each mechanism demonstrably
//! catches the fault class it exists for.

use fault_inject::{
    Campaign, CampaignError, Detection, Execution, FaultOutcome, GoldenRun, JournalError,
    Mechanism, SafetyConfig, Target,
};
use leon3_model::Leon3Config;
use rtl_sim::FaultKind;
use std::fs;
use std::path::PathBuf;
use workloads::{Benchmark, Params};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fault-safety-itests");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The same campaign shape as the crash-safety fixtures: `rspeed`, a
/// 10-site seeded sample, two fault models, injection at 30%.
fn campaign(target: Target, seed: u64) -> Campaign {
    Campaign::new(Benchmark::Rspeed.program(&Params::default()), target)
        .with_sample(10, seed)
        .with_kinds(&[FaultKind::StuckAt1, FaultKind::OpenLine])
        .with_injection_fraction(0.3)
}

/// A watchdog timeout the golden run can never trip: twice its largest
/// inter-write gap.
fn safe_watchdog_timeout() -> u64 {
    let program = Benchmark::Rspeed.program(&Params::default());
    let golden = GoldenRun::capture(&program, &Leon3Config::default());
    golden.max_write_gap * 2 + 2
}

fn all_mechanisms() -> SafetyConfig {
    SafetyConfig {
        lockstep_window: Some(64),
        parity: true,
        watchdog_cycles: Some(safe_watchdog_timeout()),
    }
}

/// FNV-1a over the pre-safety projection of a record list.
fn fixture_hash(result: &fault_inject::CampaignResult) -> u64 {
    let mut text = String::new();
    for r in result.records() {
        let outcome = match &r.outcome {
            FaultOutcome::NoEffect => "no_effect".to_string(),
            FaultOutcome::Failure {
                divergence,
                latency_cycles,
            } => format!("failure:{divergence}:{latency_cycles}"),
            // Rendered without its (new) latency so the hash matches the
            // pre-safety fixture even for hanging jobs.
            FaultOutcome::Hang { .. } => "hang".to_string(),
            FaultOutcome::ErrorModeStop { latency_cycles } => {
                format!("error_mode:{latency_cycles}")
            }
            FaultOutcome::EngineAnomaly { .. } => "anomaly".to_string(),
        };
        text.push_str(&format!(
            "{}|{}|{}|{}|{outcome}\n",
            r.site.unit.name(),
            r.site.net.raw(),
            r.site.bit,
            r.kind.name()
        ));
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn assert_degenerates(target: Target, seed: u64, expected_hash: u64) {
    let result = campaign(target, seed).run(4);
    assert_eq!(result.records().len(), 20);
    assert_eq!(fixture_hash(&result), expected_hash, "behavioral drift");
    for r in result.records() {
        assert_eq!(
            r.detection,
            Detection::Undetected,
            "no mechanism may fire when all are disabled: {r:?}"
        );
    }
    let stats = result.stats();
    assert_eq!(stats.detected(), 0, "{stats:?}");
}

#[test]
fn disabled_mechanisms_degenerate_on_iu() {
    assert_degenerates(Target::IntegerUnit, 0xA1, 0x6416e4a783c22280);
}

#[test]
fn disabled_mechanisms_degenerate_on_cmem() {
    assert_degenerates(Target::CacheMemory, 0xB2, 0x7137880a92c9ba8b);
}

#[test]
fn buckets_partition_every_injection() {
    let result = campaign(Target::IntegerUnit, 0xA1)
        .with_safety(all_mechanisms())
        .run(4);
    let stats = result.stats();
    assert_eq!(
        stats.safe + stats.detected() + stats.residual + stats.latent + stats.anomalies,
        result.records().len(),
        "every injection must land in exactly one bucket: {stats:?}"
    );
    // The record-derived coverage summary and the incrementally-counted
    // campaign stats are two paths to the same classification.
    let coverage = result.coverage_all();
    assert_eq!(coverage.injections, result.records().len());
    assert_eq!(coverage.detected(), stats.detected());
    assert_eq!(coverage.residual_fraction(), stats.residual_fraction());
    assert_eq!(coverage.diagnostic_coverage(), stats.diagnostic_coverage());
    for mechanism in Mechanism::ALL {
        assert_eq!(
            coverage.mechanism_detections(mechanism),
            stats.mechanism_detections(mechanism)
        );
    }
    // Outcomes themselves are classification-invariant: the armed
    // campaign replays the exact pre-safety behavior.
    assert_eq!(fixture_hash(&result), 0x6416e4a783c22280);
}

#[test]
fn parity_detects_cmem_faults() {
    let result = Campaign::new(
        Benchmark::Rspeed.program(&Params::default()),
        Target::CacheMemory,
    )
    .with_sample(40, 0xB2)
    .with_kinds(&[FaultKind::StuckAt1])
    .with_injection_fraction(0.3)
    .with_parity(true)
    .run(4);
    let stats = result.stats();
    assert!(
        stats.mechanism_detections(Mechanism::CmemParity) > 0,
        "CMEM parity must catch cache faults: {stats:?}"
    );
    for r in result.records() {
        if let Detection::Detected { mechanism, .. } = r.detection {
            assert_eq!(mechanism, Mechanism::CmemParity);
            assert_eq!(r.bucket(), Some(fault_inject::IsoBucket::Detected));
        }
    }
}

#[test]
fn watchdog_detects_silent_stops() {
    // The IU fixture campaign contains error-mode stops: the core goes
    // quiet without halting, which only the watchdog can convert into a
    // detection (lockstep sees no diverging write, parity sees no CMEM).
    let result = campaign(Target::IntegerUnit, 0xA1)
        .with_watchdog_cycles(safe_watchdog_timeout())
        .run(4);
    let stats = result.stats();
    assert!(
        stats.mechanism_detections(Mechanism::Watchdog) > 0,
        "the watchdog must catch silent stops: {stats:?}"
    );
    for r in result.records() {
        if let Detection::Detected {
            mechanism: Mechanism::Watchdog,
            latency_cycles,
            ..
        } = r.detection
        {
            assert!(
                r.outcome.latency_cycles().is_some(),
                "watchdog-detected outcomes carry a latency: {r:?}"
            );
            assert!(latency_cycles > 0);
        }
    }
}

#[test]
fn tighter_lockstep_windows_detect_no_less() {
    let detections = |window: u64| {
        let result = campaign(Target::IntegerUnit, 0xA1)
            .with_lockstep_window(window)
            .run(4);
        let stats = *result.stats();
        (stats.mechanism_detections(Mechanism::Lockstep), result)
    };
    let (tight, tight_result) = detections(1);
    let (loose, _) = detections(256);
    assert!(tight > 0, "a per-write comparator must catch failures");
    assert!(
        tight >= loose,
        "a tighter window can only detect more: {tight} < {loose}"
    );
    // With W=1 every detected failure is caught at the very next write.
    for r in tight_result.records() {
        if let Detection::Detected {
            mechanism: Mechanism::Lockstep,
            latency_writes,
            ..
        } = r.detection
        {
            assert_eq!(latency_writes, 1, "{r:?}");
        }
    }
}

#[test]
fn fork_and_full_reexecution_classify_identically() {
    let armed = campaign(Target::IntegerUnit, 0xA1).with_safety(all_mechanisms());
    let forked = armed.clone().run(4);
    let full = armed.with_execution(Execution::FullReexecution).run(4);
    assert_eq!(forked.records(), full.records());
}

#[test]
fn kill_and_resume_preserves_detection() {
    let path = temp_path("resume-safety.jsonl");
    let armed = campaign(Target::IntegerUnit, 0xA1).with_safety(all_mechanisms());
    let uninterrupted = armed.run_journaled(4, &path).expect("journaled run");
    assert!(
        uninterrupted.stats().detected() > 0,
        "the fixture must exercise detection for this test to mean anything"
    );

    let text = fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    let keep = 1 + (lines.len() - 1) / 2;
    let mut killed = lines[..keep].join("\n");
    killed.push('\n');
    killed.push_str(&lines[keep][..lines[keep].len() / 2]);
    fs::write(&path, &killed).expect("truncate journal");

    let resumed = armed.resume(4, &path).expect("resume");
    assert_eq!(resumed.records(), uninterrupted.records());
    let mut stats = *resumed.stats();
    assert_eq!(stats.resumed, keep - 1);
    stats.resumed = 0;
    assert_eq!(
        stats,
        *uninterrupted.stats(),
        "bucket counters must reconstitute from the journal"
    );
}

#[test]
fn resume_refuses_a_different_safety_config() {
    let path = temp_path("foreign-safety.jsonl");
    campaign(Target::IntegerUnit, 0xA1)
        .with_safety(all_mechanisms())
        .run_journaled(2, &path)
        .expect("journaled run");

    // Same campaign, mechanisms disabled: the classification (and with
    // parity, the fault-site universe) would differ — refuse.
    match campaign(Target::IntegerUnit, 0xA1).resume(2, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "fingerprint");
        }
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }

    // A different window size alone is also a different campaign.
    match campaign(Target::IntegerUnit, 0xA1)
        .with_safety(SafetyConfig {
            lockstep_window: Some(65),
            ..all_mechanisms()
        })
        .resume(2, &path)
    {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "fingerprint");
        }
        other => panic!("expected a fingerprint mismatch, got {other:?}"),
    }
}

#[test]
fn safety_config_mistakes_are_structured_errors() {
    assert_eq!(
        campaign(Target::IntegerUnit, 0xA1)
            .with_lockstep_window(0)
            .try_run(2),
        Err(CampaignError::ZeroLockstepWindow)
    );
    match campaign(Target::IntegerUnit, 0xA1)
        .with_watchdog_cycles(1)
        .try_run(2)
    {
        Err(CampaignError::WatchdogTooTight {
            timeout_cycles: 1,
            golden_max_gap,
        }) => assert!(golden_max_gap >= 1),
        other => panic!("expected WatchdogTooTight, got {other:?}"),
    }
}
