//! The fork engine's correctness bar: checkpoint-and-fork campaigns must
//! produce **bit-identical records** to full re-execution — across
//! workloads and across both injection domains — while simulating
//! measurably fewer cycles.

use fault_inject::{Campaign, Execution, Target};
use rtl_sim::FaultKind;
use workloads::{Benchmark, Params};

fn assert_equivalent(benchmark: Benchmark, target: Target, seed: u64) {
    let program = benchmark.program(&Params::default());
    let campaign = Campaign::new(program, target)
        .with_sample(12, seed)
        .with_kinds(&[FaultKind::StuckAt1, FaultKind::OpenLine])
        .with_injection_fraction(0.3);
    let fork = campaign.run(4);
    let full = campaign
        .clone()
        .with_execution(Execution::FullReexecution)
        .run(4);

    assert_eq!(
        fork.records(),
        full.records(),
        "{} on {target:?}: fork and full re-execution must agree record-for-record",
        benchmark.name(),
    );
    let (f, r) = (fork.stats(), full.stats());
    assert_eq!(f.jobs, r.jobs);
    assert_eq!(f.forked + f.skipped_inactive, f.jobs);
    assert!(
        f.cycles_simulated < r.cycles_simulated,
        "{} on {target:?}: fork must simulate fewer cycles ({} vs {})",
        benchmark.name(),
        f.cycles_simulated,
        r.cycles_simulated,
    );
    assert!(
        f.cycles_avoided > 0,
        "{} on {target:?}: no savings reported",
        benchmark.name()
    );
    // Exact cycle ledger: both engines stop every non-skipped run at the
    // identical step, a skipped run would have re-traced the golden run in
    // full, and the fork engine pays the shared prefix exactly once — so
    // fork-simulated + fork-avoided exceeds the full engine's bill by
    // precisely that one prefix.
    assert_eq!(
        f.cycles_simulated + f.cycles_avoided,
        r.cycles_simulated + f.prefix_cycles,
        "{} on {target:?}: cycle ledgers disagree",
        benchmark.name(),
    );
}

#[test]
fn intbench_integer_unit() {
    assert_equivalent(Benchmark::Intbench, Target::IntegerUnit, 0x11);
}

#[test]
fn intbench_cache_memory() {
    assert_equivalent(Benchmark::Intbench, Target::CacheMemory, 0x22);
}

#[test]
fn rspeed_integer_unit() {
    assert_equivalent(Benchmark::Rspeed, Target::IntegerUnit, 0x33);
}

#[test]
fn rspeed_cache_memory() {
    assert_equivalent(Benchmark::Rspeed, Target::CacheMemory, 0x44);
}

#[test]
fn pair_campaigns_are_equivalent_too() {
    let program = Benchmark::Membench.program(&Params::default());
    let campaign = Campaign::new(program, Target::IntegerUnit)
        .with_sample(8, 0x55)
        .with_kinds(&[FaultKind::StuckAt0])
        .with_injection_fraction(0.2);
    let fork = campaign.run_pairs(4);
    let full = campaign
        .clone()
        .with_execution(Execution::FullReexecution)
        .run_pairs(4);
    assert_eq!(fork.records(), full.records());
    assert!(fork.stats().cycles_simulated < full.stats().cycles_simulated);
}
