//! Checkpoint-tree engine equivalence: a dense any-instant transient
//! sweep on the fork engine must produce records bit-identical to full
//! re-execution with **zero** full-re-execution fallbacks, exercising
//! both restore paths (exact-boundary fork and ancestor-replay once the
//! pool is thinned past `MAX_POOL_CHECKPOINTS`), and a multi-instant
//! journal must resume only into the sweep that wrote it.

use fault_inject::{
    Campaign, CampaignError, Execution, GoldenRun, InjectionInstant, JournalError, Target,
    MAX_POOL_CHECKPOINTS,
};
use rtl_sim::FaultKind;
use std::fs;
use std::path::PathBuf;
use workloads::{Benchmark, Params};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fault-checkpoint-itests");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// A dense sweep: one instant every ~2% of the golden run, comfortably
/// more boundaries than the pool cap so some jobs must replay.
fn dense_instants(n: usize) -> Vec<InjectionInstant> {
    (1..=n)
        .map(|i| InjectionInstant::Fraction(i as f64 / (n + 1) as f64))
        .collect()
}

fn transient_campaign(target: Target, sample: usize, seed: u64) -> Campaign {
    Campaign::new(Benchmark::Rspeed.program(&Params::default()), target)
        .with_sample(sample, seed)
        .with_kinds(&[FaultKind::TransientFlip])
}

/// The tentpole acceptance property: a dense transient sweep on the fork
/// engine matches full re-execution record-for-record, with zero
/// full-re-execution fallbacks and a genuinely exercised replay path.
fn assert_dense_sweep_equivalence(target: Target, seed: u64) {
    let instants = dense_instants(MAX_POOL_CHECKPOINTS + 4);
    let forked = transient_campaign(target, 4, seed)
        .try_run_multi(4, &instants)
        .expect("fork sweep");
    let full = transient_campaign(target, 4, seed)
        .with_execution(Execution::FullReexecution)
        .try_run_multi(4, &instants)
        .expect("full sweep");
    assert_eq!(forked.len(), instants.len());
    let mut restored_total = 0;
    let mut forked_total = 0;
    for (f, r) in forked.iter().zip(&full) {
        assert_eq!(
            f.records(),
            r.records(),
            "fork and full re-execution must agree record-for-record"
        );
        assert_eq!(
            f.stats().full_reexecutions,
            0,
            "no job may fall back to full re-execution: {:?}",
            f.stats()
        );
        restored_total += f.stats().restored_from_checkpoint;
        forked_total += f.stats().forked;
    }
    // More distinct boundaries than pool slots: thinning must have forced
    // some jobs onto the ancestor-replay path, and the surviving
    // checkpoints still serve others exactly.
    assert!(restored_total > 0, "replay path never exercised");
    assert!(forked_total > 0, "exact-boundary forks never exercised");
    let pool = forked[0].stats().checkpoints_taken;
    assert!(
        pool <= MAX_POOL_CHECKPOINTS,
        "pool must be thinned to the cap, got {pool}"
    );
    assert!(forked[0].stats().checkpoint_bytes > 0);
    // Replay is bounded by construction: the gaps replayed are part of
    // cycles_simulated, and the whole sweep still simulates strictly less
    // than full re-execution.
    let fork_cycles: u64 = forked.iter().map(|r| r.stats().cycles_simulated).sum();
    let full_cycles: u64 = full.iter().map(|r| r.stats().cycles_simulated).sum();
    assert!(
        fork_cycles < full_cycles,
        "fork {fork_cycles} >= full {full_cycles}"
    );
}

#[test]
fn dense_transient_sweep_matches_full_reexecution_on_iu() {
    assert_dense_sweep_equivalence(Target::IntegerUnit, 0xC3);
}

#[test]
fn dense_transient_sweep_matches_full_reexecution_on_cmem() {
    assert_dense_sweep_equivalence(Target::CacheMemory, 0xD4);
}

fn time_varying_campaign(sample: usize, seed: u64) -> Campaign {
    Campaign::new(
        Benchmark::Rspeed.program(&Params::default()),
        Target::IntegerUnit,
    )
    .with_sample(sample, seed)
    .with_kinds(&[
        FaultKind::IntermittentStuck {
            level: true,
            period: 500,
            duty: 125,
            phase: 0,
        },
        FaultKind::TransientBurst {
            flips: 3,
            spacing: 100,
        },
    ])
}

/// The time-varying acceptance property: a dense **intermittent + burst**
/// sweep under `Execution::Fork` with a stride checkpoint grid is
/// bit-identical to full re-execution. This is the restore-boundary
/// stress: a restored job's fault schedule is a pure function of
/// `(params, from_cycle, clock)` for intermittents and re-armed flip
/// counters for bursts, so a checkpoint taken mid-window, mid-release or
/// mid-train must replay the exact same assertion schedule the straight
/// run saw.
#[test]
fn dense_intermittent_sweep_matches_full_reexecution_with_stride_grid() {
    let instants = dense_instants(MAX_POOL_CHECKPOINTS + 4);
    let golden = GoldenRun::capture(
        &Benchmark::Rspeed.program(&Params::default()),
        &leon3_model::Leon3Config::default(),
    );
    let forked = time_varying_campaign(4, 0xB7)
        .with_checkpoint_stride(golden.cycles / 8)
        .try_run_multi(4, &instants)
        .expect("fork sweep");
    let full = time_varying_campaign(4, 0xB7)
        .with_execution(Execution::FullReexecution)
        .try_run_multi(4, &instants)
        .expect("full sweep");
    let mut restored_total = 0;
    for (f, r) in forked.iter().zip(&full) {
        assert_eq!(
            f.records(),
            r.records(),
            "time-varying fork and full re-execution must agree record-for-record"
        );
        assert_eq!(f.stats().full_reexecutions, 0);
        restored_total += f.stats().restored_from_checkpoint;
    }
    assert!(
        restored_total > 0,
        "the restore/replay path must be genuinely exercised"
    );
    // Both kinds produced activity somewhere in the sweep — the
    // equivalence above is not vacuous.
    let kinds_seen: Vec<FaultKind> = forked
        .iter()
        .flat_map(|r| r.records().iter().map(|rec| rec.kind))
        .collect();
    assert!(kinds_seen
        .iter()
        .any(|k| matches!(k, FaultKind::IntermittentStuck { .. })));
    assert!(kinds_seen
        .iter()
        .any(|k| matches!(k, FaultKind::TransientBurst { .. })));
}

#[test]
fn stride_grid_shortens_replay_without_changing_records() {
    // Same dense sweep with a stride: extra grid checkpoints change only
    // the cost ledger (records and outcome classes stay bit-identical).
    let instants = dense_instants(MAX_POOL_CHECKPOINTS + 4);
    let plain = transient_campaign(Target::IntegerUnit, 4, 0xE5)
        .try_run_multi(4, &instants)
        .expect("plain sweep");
    let golden = GoldenRun::capture(
        &Benchmark::Rspeed.program(&Params::default()),
        &leon3_model::Leon3Config::default(),
    );
    let strided = transient_campaign(Target::IntegerUnit, 4, 0xE5)
        .with_checkpoint_stride(golden.cycles / 8)
        .try_run_multi(4, &instants)
        .expect("strided sweep");
    for (p, s) in plain.iter().zip(&strided) {
        assert_eq!(p.records(), s.records());
        assert_eq!(p.stats().full_reexecutions, 0);
        assert_eq!(s.stats().full_reexecutions, 0);
    }
}

#[test]
fn multi_instant_journal_resumes_bit_identically() {
    let path = temp_path("multi-resume.jsonl");
    let instants = [
        InjectionInstant::Fraction(0.2),
        InjectionInstant::Fraction(0.5),
        InjectionInstant::Fraction(0.8),
    ];
    let campaign = transient_campaign(Target::IntegerUnit, 8, 0xF6)
        .with_kinds(&[FaultKind::TransientFlip, FaultKind::StuckAt1]);
    let uninterrupted = campaign
        .run_multi_journaled(4, &instants, &path)
        .expect("journaled sweep");

    // Simulate a kill: keep the header, half the entries, and a torn tail.
    let text = fs::read_to_string(&path).expect("journal readable");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 4, "need enough jobs to interrupt");
    let keep = 1 + (lines.len() - 1) / 2;
    let mut killed = lines[..keep].join("\n");
    killed.push('\n');
    killed.push_str(&lines[keep][..lines[keep].len() / 2]);
    fs::write(&path, &killed).expect("truncate journal");

    let resumed = campaign.resume_multi(4, &instants, &path).expect("resume");
    assert_eq!(resumed.len(), uninterrupted.len());
    let mut resumed_jobs = 0;
    for (r, u) in resumed.iter().zip(&uninterrupted) {
        assert_eq!(r.records(), u.records(), "resume must be bit-identical");
        assert_eq!(r.stats().full_reexecutions, 0);
        resumed_jobs += r.stats().resumed;
    }
    assert_eq!(resumed_jobs, keep - 1, "every intact line replays");

    // Resuming again replays everything and simulates nothing new.
    let replayed = campaign.resume_multi(4, &instants, &path).expect("again");
    let total: usize = replayed.iter().map(|r| r.stats().resumed).sum();
    let jobs: usize = replayed.iter().map(|r| r.stats().jobs).sum();
    assert_eq!(total, jobs);
}

#[test]
fn resume_refuses_a_different_instant_list_or_stride() {
    let path = temp_path("multi-foreign.jsonl");
    let instants = [
        InjectionInstant::Fraction(0.3),
        InjectionInstant::Fraction(0.7),
    ];
    let campaign = transient_campaign(Target::IntegerUnit, 6, 0xA7);
    campaign
        .run_multi_journaled(2, &instants, &path)
        .expect("journaled sweep");

    // Same instant count, different values: the instants hash refuses.
    let shifted = [
        InjectionInstant::Fraction(0.3),
        InjectionInstant::Fraction(0.9),
    ];
    match campaign.resume_multi(2, &shifted, &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "instants_hash");
        }
        other => panic!("expected an instants_hash mismatch, got {other:?}"),
    }

    // A different instant count changes the job universe first.
    match campaign.resume_multi(2, &instants[..1], &path) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "jobs");
        }
        other => panic!("expected a jobs mismatch, got {other:?}"),
    }

    // A different checkpoint stride changes every entry's cost delta —
    // refused by name, before the opaque fingerprint.
    match campaign
        .clone()
        .with_checkpoint_stride(1_000)
        .resume_multi(2, &instants, &path)
    {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { field, .. })) => {
            assert_eq!(field, "checkpoint_stride");
        }
        other => panic!("expected a checkpoint_stride mismatch, got {other:?}"),
    }

    // A single-instant journal of the same campaign is likewise foreign
    // to the sweep.
    let single = temp_path("single.jsonl");
    campaign
        .clone()
        .with_injection_fraction(0.3)
        .run_journaled(2, &single)
        .expect("single journal");
    match campaign.resume_multi(2, &instants, &single) {
        Err(CampaignError::Journal(JournalError::HeaderMismatch { .. })) => {}
        other => panic!("expected a header mismatch, got {other:?}"),
    }
}
