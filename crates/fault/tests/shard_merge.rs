//! Sharding end to end: real campaigns split `i/n`, merged back, and
//! compared bit-for-bit against the unsharded run.

use fault_inject::{merge_shards, Campaign, CampaignError, ShardResult, Target};
use workloads::{Benchmark, Params};

fn base() -> Campaign {
    Campaign::new(
        Benchmark::Rspeed.program(&Params::default()),
        Target::IntegerUnit,
    )
    .with_sample(15, 11)
    .with_injection_fraction(0.3)
}

fn run_shard(index: u32, count: u32) -> ShardResult {
    let campaign = base().with_shard(index, count);
    ShardResult {
        fingerprint: campaign.fingerprint(),
        index,
        count,
        result: campaign.try_run(2).expect("shard run"),
    }
}

/// Three shards merged equal the unsharded campaign — records in the
/// original order and stats to the cycle (the shared-prefix cycles each
/// shard re-simulated are deduplicated by the merge).
#[test]
fn sharded_run_merges_to_the_unsharded_result() {
    let unsharded = base().try_run(2).expect("unsharded run");
    let shards: Vec<ShardResult> = (0..3).map(|i| run_shard(i, 3)).collect();
    let merged = merge_shards(shards).expect("merge");
    assert_eq!(merged.result, unsharded);
    assert_eq!(merged.fingerprint, base().fingerprint());
    assert_eq!((merged.index, merged.count), (0, 1));
}

/// A lone shard `0/1` is the unsharded campaign.
#[test]
fn one_shard_is_the_whole_campaign() {
    let unsharded = base().try_run(1).expect("unsharded run");
    let merged = merge_shards(vec![run_shard(0, 1)]).expect("merge");
    assert_eq!(merged.result, unsharded);
}

/// Out-of-range shard coordinates are refused before any simulation.
#[test]
fn bad_shard_coordinates_are_refused() {
    for (index, count) in [(0, 0), (2, 2), (5, 3)] {
        match base().with_shard(index, count).try_run(1) {
            Err(CampaignError::BadShard { index: i, count: n }) => {
                assert_eq!((i, n), (index, count));
            }
            other => panic!("shard {index}/{count}: expected BadShard, got {other:?}"),
        }
    }
}

/// The public fingerprint is pinned to the journal header: the same two
/// hashes, in the same order, as the write-ahead journal records them.
/// If one moves without the other, caches and journals disagree about
/// campaign identity.
#[test]
fn fingerprint_matches_the_journal_header() {
    let dir = std::env::temp_dir().join(format!("fp-pin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("campaign.jsonl");

    let campaign = base();
    let fingerprint = campaign.fingerprint();
    campaign.run_journaled(2, &path).expect("journaled run");
    let (header, _, truncated) = fault_inject::journal::read(&path).expect("read journal");
    assert!(!truncated);
    assert_eq!(
        fingerprint,
        format!("{:016x}-{:016x}", header.workload, header.fingerprint)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The injection instant is part of campaign identity: two campaigns
/// differing only there must not share a fingerprint (their results
/// differ, so a shared cache key would serve wrong bytes).
#[test]
fn injection_instant_is_part_of_the_fingerprint() {
    let a = base().fingerprint();
    let b = base().with_injection_fraction(0.7).fingerprint();
    assert_ne!(a, b);
}
