//! Append-only write-ahead result journal for campaigns.
//!
//! Long campaigns (the paper's RTL runs cost 25,478 CPU-hours) must not
//! lose completed work to a killed process. The journal is a JSONL file:
//! one **header** line identifying the campaign (workload hash, job
//! universe, configuration fingerprint, model-observable golden facts)
//! followed by one line per completed `(site, kind)` job carrying the
//! record *and* the job's execution-cost delta, flushed before the result
//! is published. `Campaign::resume` validates the header, replays the
//! completed jobs and simulates only the remainder — reconstituting a
//! `CampaignResult` bit-identical to an uninterrupted run (modulo the
//! `resumed` counter).
//!
//! The format is hand-rolled JSON over a deliberately tiny subset
//! (see [`crate::wire`]) so the workspace stays hermetic — no serde, no
//! registry dependencies. A torn final line (the process died mid-append)
//! is recovered by ignoring it; corruption anywhere else is an error.

use crate::error::JournalError;
use crate::result::{CampaignStats, FaultOutcome, FaultRecord};
use crate::wire::{record_from_obj, write_record_fields, Json};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

/// Format identifier carried in every header line.
pub const MAGIC: &str = "fault-campaign-journal";
/// Format version; bumped on any incompatible change. Version 2 added the
/// hang latency, the `activated` flag and the detection fields. Version 3
/// added the checkpoint-pool header fields (`instants`, `instants_hash`,
/// `checkpoint_stride`) and the per-entry `replay` engine with its
/// `replay_cycles`. Version 4 added the static-analysis engines
/// (`pruned`, `collapsed`) and the record's optional `pruned_by` field.
/// Version 5 added the header's `kinds` token list (the campaign's fault
/// kinds *with* their time-varying parameters), so a resume refuses a
/// foreign fault schedule by field name instead of hiding it behind the
/// opaque fingerprint.
pub const VERSION: u64 = 5;

/// FNV-1a 64-bit — the journal's content hash (hermetic, no dependencies).
pub(crate) fn fnv1a64(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis, the `init` for a fresh hash.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The journal's first line: everything `resume` validates before
/// trusting a single record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Hash of the workload image (entry point + every segment).
    pub workload: u64,
    /// Hash of the campaign configuration (target, kinds, sample,
    /// injection, execution engine, platform config, pair mode).
    pub fingerprint: u64,
    /// Total `(site, kind)` jobs in the campaign.
    pub jobs: usize,
    /// The resolved injection cycle of the first instant (a
    /// model-observable golden fact: if the model changed since the
    /// journal was written, this disagrees).
    pub injection_cycle: u64,
    /// The golden run's cycle count (same role as `injection_cycle`).
    pub golden_cycles: u64,
    /// How many injection instants the campaign sweeps (1 for the
    /// single-instant entry points).
    pub instants: usize,
    /// FNV-1a hash over every resolved injection cycle, in sweep order —
    /// a multi-instant journal refuses a campaign with different instants
    /// even when the first one matches.
    pub instants_hash: u64,
    /// The checkpoint-pool stride in cycles (0 = no periodic grid). The
    /// stride cannot change which records exist, but it changes every
    /// entry's cost delta, so a resumed journal must agree on it.
    pub checkpoint_stride: u64,
    /// The campaign's fault kinds as canonical wire tokens
    /// ([`crate::wire::kind_to_token`]), in campaign order — the
    /// time-varying parameters (`period`, `duty`, `phase`, `flips`,
    /// `spacing`) travel here so a mismatched fault schedule is refused
    /// by field name.
    pub kinds: Vec<String>,
}

impl Header {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let kinds = self
            .kinds
            .iter()
            .map(|k| format!("\"{k}\""))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"journal\":\"{MAGIC}\",\"version\":{VERSION},\
             \"workload\":\"{:016x}\",\"fingerprint\":\"{:016x}\",\
             \"jobs\":{},\"injection_cycle\":{},\"golden_cycles\":{},\
             \"instants\":{},\"instants_hash\":\"{:016x}\",\"checkpoint_stride\":{},\
             \"kinds\":[{kinds}]}}",
            self.workload,
            self.fingerprint,
            self.jobs,
            self.injection_cycle,
            self.golden_cycles,
            self.instants,
            self.instants_hash,
            self.checkpoint_stride,
        )
    }

    /// Parse a header line.
    ///
    /// # Errors
    ///
    /// Fails with [`JournalError::MissingHeader`] when the line is not a
    /// well-formed version-1 header.
    pub fn parse(line: &str) -> Result<Header, JournalError> {
        let v = Json::parse(line).map_err(|_| JournalError::MissingHeader)?;
        let magic = v.get_str("journal").ok_or(JournalError::MissingHeader)?;
        if magic != MAGIC {
            return Err(JournalError::MissingHeader);
        }
        let version = v.get_u64("version").ok_or(JournalError::MissingHeader)?;
        if version != VERSION {
            return Err(JournalError::HeaderMismatch {
                field: "version",
                expected: VERSION.to_string(),
                found: version.to_string(),
            });
        }
        let hex = |key| {
            v.get_str(key)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or(JournalError::MissingHeader)
        };
        Ok(Header {
            workload: hex("workload")?,
            fingerprint: hex("fingerprint")?,
            jobs: v.get_u64("jobs").ok_or(JournalError::MissingHeader)? as usize,
            injection_cycle: v
                .get_u64("injection_cycle")
                .ok_or(JournalError::MissingHeader)?,
            golden_cycles: v
                .get_u64("golden_cycles")
                .ok_or(JournalError::MissingHeader)?,
            instants: v.get_u64("instants").ok_or(JournalError::MissingHeader)? as usize,
            instants_hash: hex("instants_hash")?,
            checkpoint_stride: v
                .get_u64("checkpoint_stride")
                .ok_or(JournalError::MissingHeader)?,
            kinds: v
                .get_array("kinds")
                .ok_or(JournalError::MissingHeader)?
                .iter()
                .map(|k| k.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()
                .ok_or(JournalError::MissingHeader)?,
        })
    }
}

/// One journaled job: its index in the campaign plan, its record, and its
/// execution-cost delta (what this job alone contributed to
/// [`CampaignStats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Index into the campaign's job list.
    pub job: usize,
    /// The job's classification record.
    pub record: FaultRecord,
    /// The job's stats delta (`jobs`, `prefix_cycles`, `golden_cycles`
    /// and `resumed` are campaign-level and always zero here).
    pub delta: CampaignStats,
}

impl Entry {
    /// Serialize as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let engine = if self.delta.statically_pruned > 0 {
            // The record's provenance distinguishes a pruned benign
            // record from a collapsed class member.
            match self.record.pruned_by {
                Some(crate::static_analysis::PrunedBy::Collapsed) => "collapsed",
                _ => "pruned",
            }
        } else if self.delta.skipped_inactive > 0 {
            "skip"
        } else if self.delta.forked > 0 {
            "fork"
        } else if self.delta.restored_from_checkpoint > 0 {
            "replay"
        } else if self.delta.full_reexecutions > 0 {
            "full"
        } else {
            // A double-panic job never finished under either engine.
            "none"
        };
        let mut s = String::with_capacity(160);
        let _ = write!(s, "{{\"job\":{},", self.job);
        write_record_fields(&mut s, &self.record);
        let _ = write!(
            s,
            ",\"engine\":\"{engine}\",\"short_circuited\":{},\"timed_out\":{},\
             \"retried\":{},\"cycles_simulated\":{},\"cycles_avoided\":{},\
             \"replay_cycles\":{}}}",
            self.delta.short_circuited > 0,
            self.delta.timed_out > 0,
            self.delta.retried > 0,
            self.delta.cycles_simulated,
            self.delta.cycles_avoided,
            self.delta.replay_cycles,
        );
        s
    }

    /// Parse an entry line.
    ///
    /// # Errors
    ///
    /// Fails with [`JournalError::Malformed`] (carrying `line_no`) when
    /// the line is not a well-formed entry.
    pub fn parse(line: &str, line_no: usize) -> Result<Entry, JournalError> {
        let malformed = |reason: String| JournalError::Malformed {
            line: line_no,
            reason,
        };
        let v = Json::parse(line).map_err(|e| malformed(e.to_string()))?;
        let field_u64 = |key: &str| {
            v.get_u64(key)
                .ok_or_else(|| malformed(format!("missing numeric `{key}`")))
        };
        let field_str = |key: &str| {
            v.get_str(key)
                .ok_or_else(|| malformed(format!("missing string `{key}`")))
        };
        let field_bool = |key: &str| {
            v.get_bool(key)
                .ok_or_else(|| malformed(format!("missing bool `{key}`")))
        };
        let record = record_from_obj(&v).map_err(&malformed)?;
        let mut delta = CampaignStats {
            short_circuited: usize::from(field_bool("short_circuited")?),
            timed_out: usize::from(field_bool("timed_out")?),
            retried: usize::from(field_bool("retried")?),
            anomalies: usize::from(matches!(record.outcome, FaultOutcome::EngineAnomaly { .. })),
            cycles_simulated: field_u64("cycles_simulated")?,
            cycles_avoided: field_u64("cycles_avoided")?,
            replay_cycles: field_u64("replay_cycles")?,
            ..CampaignStats::default()
        };
        match field_str("engine")? {
            "skip" => delta.skipped_inactive = 1,
            "fork" => delta.forked = 1,
            "replay" => delta.restored_from_checkpoint = 1,
            "full" => delta.full_reexecutions = 1,
            "pruned" | "collapsed" => delta.statically_pruned = 1,
            "none" => {}
            other => return Err(malformed(format!("unknown engine `{other}`"))),
        }
        // Like `anomalies` above, the ISO bucket counters are a pure
        // function of the record — reconstructed, not carried on the wire.
        delta.count_bucket(&record);
        Ok(Entry {
            job: field_u64("job")? as usize,
            record,
            delta,
        })
    }
}

/// The writer side: an open journal file, appended one flushed line per
/// completed job (write-ahead: the line is durable before the record is
/// published into the in-memory result).
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Create (truncate) a journal at `path` and write its header.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn create(path: &Path, header: &Header) -> Result<Journal, JournalError> {
        let mut file = File::create(path).map_err(|e| JournalError::io("create journal", e))?;
        file.write_all(format!("{}\n", header.to_line()).as_bytes())
            .map_err(|e| JournalError::io("write journal header", e))?;
        file.flush()
            .map_err(|e| JournalError::io("flush journal header", e))?;
        Ok(Journal { file })
    }

    /// Open an existing journal for appending (the resume path; the
    /// header is validated separately by [`read`]).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn open_append(path: &Path) -> Result<Journal, JournalError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| JournalError::io("open journal for append", e))?;
        Ok(Journal { file })
    }

    /// Append one entry and flush it to the OS before returning.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn append(&mut self, entry: &Entry) -> Result<(), JournalError> {
        self.file
            .write_all(format!("{}\n", entry.to_line()).as_bytes())
            .map_err(|e| JournalError::io("append journal entry", e))?;
        self.file
            .flush()
            .map_err(|e| JournalError::io("flush journal entry", e))
    }
}

/// Read a journal: header plus every parseable entry, in file order.
///
/// A torn **final** line — the process was killed mid-append — is treated
/// as truncation and silently dropped (`truncated = true` in the return).
/// A malformed line anywhere else is corruption and fails.
///
/// # Errors
///
/// Fails on I/O errors, a missing/mismatched header, or mid-file
/// corruption.
pub fn read(path: &Path) -> Result<(Header, Vec<Entry>, bool), JournalError> {
    let text = std::fs::read_to_string(path).map_err(|e| JournalError::io("read journal", e))?;
    read_str(&text)
}

/// [`read`] over journal text that already lives in memory — the fleet
/// coordinator validates partial shard journals uploaded by a failing
/// runner before re-offering them to the shard's next lease holder, and
/// never touches the filesystem to do it. Torn-final-line recovery is
/// identical to the file path.
///
/// # Errors
///
/// Fails on a missing/mismatched header or mid-text corruption.
pub fn read_str(text: &str) -> Result<(Header, Vec<Entry>, bool), JournalError> {
    let mut lines = text.split('\n').enumerate();
    let (_, first) = lines.next().ok_or(JournalError::MissingHeader)?;
    let header = Header::parse(first)?;
    let body: Vec<(usize, &str)> = lines.filter(|(_, l)| !l.trim().is_empty()).collect();
    let mut entries = Vec::with_capacity(body.len());
    let mut truncated = false;
    for (i, (line_idx, line)) in body.iter().enumerate() {
        match Entry::parse(line, line_idx + 1) {
            Ok(entry) => entries.push(entry),
            Err(e) if i + 1 == body.len() => {
                // Torn final line: the kill landed mid-append. Everything
                // before it is intact; the lost job is simply re-run.
                let _ = e;
                truncated = true;
            }
            Err(e) => return Err(e),
        }
    }
    Ok((header, entries, truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::safety::{Detection, Mechanism};
    use crate::sites::FaultSite;
    use rtl_sim::{FaultKind, NetId};
    use sparc_isa::Unit;

    fn entry(job: usize, outcome: FaultOutcome) -> Entry {
        entry_with_detection(job, outcome, Detection::Undetected)
    }

    fn entry_with_detection(job: usize, outcome: FaultOutcome, detection: Detection) -> Entry {
        let is_anomaly = matches!(outcome, FaultOutcome::EngineAnomaly { .. });
        let record = FaultRecord {
            site: FaultSite {
                net: NetId::from_raw(17),
                bit: 5,
                unit: Unit::Fetch,
            },
            kind: FaultKind::OpenLine,
            outcome,
            activated: true,
            detection,
            pruned_by: None,
        };
        let mut delta = CampaignStats {
            forked: 1,
            short_circuited: 1,
            // Reconstructed from the outcome tag on parse, so the
            // fixture must agree with it.
            anomalies: usize::from(is_anomaly),
            cycles_simulated: 1234,
            cycles_avoided: 88,
            ..CampaignStats::default()
        };
        // The ISO bucket counters are likewise reconstructed on parse.
        delta.count_bucket(&record);
        Entry { job, record, delta }
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            workload: 0xdead_beef_1234_5678,
            fingerprint: 0x0bad_cafe,
            jobs: 72,
            injection_cycle: 991,
            golden_cycles: 12_345,
            instants: 4,
            instants_hash: 0x1357_9bdf_2468_ace0,
            checkpoint_stride: 5_000,
            kinds: vec![
                "stuck-at-1".to_string(),
                "intermittent-stuck(level=1,period=8,duty=2,phase=0)".to_string(),
            ],
        };
        assert_eq!(Header::parse(&h.to_line()).unwrap(), h);
        let empty = Header { kinds: vec![], ..h };
        assert_eq!(Header::parse(&empty.to_line()).unwrap(), empty);
    }

    #[test]
    fn replay_entries_round_trip() {
        let mut e = entry(11, FaultOutcome::NoEffect);
        e.delta.forked = 0;
        e.delta.restored_from_checkpoint = 1;
        e.delta.replay_cycles = 321;
        let parsed = Entry::parse(&e.to_line(), 1).unwrap();
        assert_eq!(parsed, e);
        assert!(e.to_line().contains("\"engine\":\"replay\""));
    }

    #[test]
    fn pruned_and_collapsed_entries_round_trip() {
        use crate::static_analysis::PrunedBy;
        for (provenance, tag) in [
            (PrunedBy::Static, "\"engine\":\"pruned\""),
            (PrunedBy::Collapsed, "\"engine\":\"collapsed\""),
        ] {
            let mut e = entry(3, FaultOutcome::NoEffect);
            e.record.pruned_by = Some(provenance);
            e.delta.forked = 0;
            e.delta.short_circuited = 0;
            e.delta.cycles_simulated = 0;
            e.delta.statically_pruned = 1;
            let line = e.to_line();
            assert!(line.contains(tag), "{line}");
            assert_eq!(Entry::parse(&line, 1).unwrap(), e);
        }
    }

    #[test]
    fn entry_round_trips_every_outcome() {
        let outcomes = vec![
            FaultOutcome::NoEffect,
            FaultOutcome::Failure {
                divergence: 3,
                latency_cycles: 456,
            },
            FaultOutcome::Hang { latency_cycles: 77 },
            FaultOutcome::ErrorModeStop { latency_cycles: 9 },
            FaultOutcome::EngineAnomaly {
                payload: "bit 63 outside net `pc`\nwith \"quotes\" + tab\t + 🚗".to_string(),
            },
        ];
        for outcome in outcomes {
            let e = entry(4, outcome);
            let parsed = Entry::parse(&e.to_line(), 1).unwrap();
            assert_eq!(parsed, e);
        }
    }

    #[test]
    fn entry_round_trips_every_detection() {
        for mechanism in Mechanism::ALL {
            let e = entry_with_detection(
                9,
                FaultOutcome::Failure {
                    divergence: 1,
                    latency_cycles: 50,
                },
                Detection::Detected {
                    mechanism,
                    latency_cycles: 120,
                    latency_writes: 3,
                },
            );
            let parsed = Entry::parse(&e.to_line(), 1).unwrap();
            assert_eq!(parsed, e);
            assert_eq!(parsed.delta.mechanism_detections(mechanism), 1);
            assert_eq!(parsed.delta.residual, 0);
        }
        // An undetected failure reconstructs as residual.
        let e = entry(
            9,
            FaultOutcome::Failure {
                divergence: 1,
                latency_cycles: 50,
            },
        );
        assert_eq!(Entry::parse(&e.to_line(), 1).unwrap().delta.residual, 1);
    }

    #[test]
    fn torn_final_line_is_truncation_not_corruption() {
        let dir = std::env::temp_dir().join("fault-journal-test-torn");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("j.jsonl");
        let h = Header {
            workload: 1,
            fingerprint: 2,
            jobs: 3,
            injection_cycle: 0,
            golden_cycles: 100,
            instants: 1,
            instants_hash: 0,
            checkpoint_stride: 0,
            kinds: vec!["open-line".to_string()],
        };
        let e0 = entry(0, FaultOutcome::NoEffect);
        let e1 = entry(1, FaultOutcome::Hang { latency_cycles: 5 });
        let full = format!("{}\n{}\n{}\n", h.to_line(), e0.to_line(), e1.to_line());
        // Cut mid-way through the final entry line.
        let cut = full.len() - 7;
        std::fs::write(&path, &full[..cut]).unwrap();
        let (header, entries, truncated) = read(&path).unwrap();
        assert_eq!(header, h);
        assert_eq!(entries, vec![e0.clone()]);
        assert!(truncated);
        // Corruption *before* the end is an error.
        let corrupt = format!(
            "{}\n{}\nnot json\n{}\n",
            h.to_line(),
            e0.to_line(),
            e1.to_line()
        );
        std::fs::write(&path, corrupt).unwrap();
        assert!(matches!(
            read(&path),
            Err(JournalError::Malformed { line: 3, .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned values: the fingerprint must not drift across refactors,
        // or every existing journal silently stops resuming.
        assert_eq!(fnv1a64(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
