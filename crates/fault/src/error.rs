//! Structured campaign errors.
//!
//! Configuration mistakes (an empty fault list, an injection instant past
//! the end of the run, zero worker threads) used to be config-time panics;
//! they now surface as [`CampaignError`] values so callers — notably the
//! `repro` binary — can report them and exit nonzero instead of aborting
//! with a backtrace. Journal I/O and validation failures ride along as
//! [`JournalError`].

use std::fmt;

/// Why a campaign could not run (or resume).
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The campaign was asked to run on zero worker threads.
    ZeroThreads,
    /// The fault-model list is empty (`with_kinds(&[])`).
    NoFaultKinds,
    /// A parameterized fault kind carries parameters outside their
    /// canonical range (e.g. an intermittent duty longer than its period,
    /// or a zero-spacing burst).
    InvalidFaultKind {
        /// The violated constraint, human-readable.
        reason: String,
    },
    /// The fault list is empty — the target domain has no sites, the
    /// sample size was zero, or an explicit site list was empty.
    NoFaultSites,
    /// The injection instant lies past the end of the golden run: a
    /// fraction outside `[0, 1]` of the golden cycle count.
    InjectionPastEnd {
        /// The offending fraction.
        fraction: f64,
    },
    /// No injection instants were supplied to a multi-instant run.
    NoInstants,
    /// A dual-point campaign needs at least two sampled sites.
    NotEnoughSitesForPairs {
        /// How many sites the fault list actually holds.
        available: usize,
    },
    /// A lockstep comparator with a zero-write window can never fire
    /// (`with_lockstep_window(0)`); use `None` to disable it instead.
    ZeroLockstepWindow,
    /// The shard coordinates are out of range: a zero shard count, or an
    /// index at or past the count (`with_shard`).
    BadShard {
        /// The configured shard index.
        index: u32,
        /// The configured shard count.
        count: u32,
    },
    /// The simulated watchdog timeout is no longer than the golden run's
    /// largest inter-write gap — it would fire on the fault-free workload.
    WatchdogTooTight {
        /// The configured timeout in simulated cycles.
        timeout_cycles: u64,
        /// The golden run's maximum gap between consecutive off-core
        /// writes (measured from cycle 0), in cycles.
        golden_max_gap: u64,
    },
    /// A periodic checkpoint grid with zero spacing is meaningless
    /// (`with_checkpoint_stride(0)`); omit the stride to checkpoint only
    /// at the requested injection boundaries.
    ZeroCheckpointStride,
    /// A prepared workload was built for a different program or platform
    /// configuration than this campaign's.
    PreparedMismatch {
        /// Which part of the prepared identity disagreed (`"workload"` or
        /// `"config"`).
        field: &'static str,
    },
    /// Static-analysis pruning was combined with a dual-point campaign:
    /// the analyzer reasons about single faults only, so pruning either
    /// member of a pair would be unsound.
    StaticWithPairs,
    /// `with_static_audit` was configured without `with_static_analysis`
    /// — there are no pruned jobs to audit.
    AuditWithoutStaticAnalysis,
    /// A static-audit re-simulation contradicted the analyzer's verdict:
    /// a pruned or collapsed job, simulated in full, produced a different
    /// record than the one the analyzer synthesised. This is a model /
    /// declared-graph conformance bug, not a campaign-configuration
    /// mistake.
    StaticAuditFailed {
        /// The job index whose re-simulation disagreed.
        job: usize,
        /// What differed, human-readable.
        detail: String,
    },
    /// The write-ahead journal could not be created, appended, parsed or
    /// matched against this campaign.
    Journal(JournalError),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::ZeroThreads => write!(f, "campaigns need at least one worker thread"),
            CampaignError::NoFaultKinds => write!(f, "campaigns need at least one fault model"),
            CampaignError::InvalidFaultKind { reason } => {
                write!(f, "invalid fault-kind parameters: {reason}")
            }
            CampaignError::NoFaultSites => write!(f, "the campaign's fault list is empty"),
            CampaignError::InjectionPastEnd { fraction } => write!(
                f,
                "injection fraction {fraction} lies past the end of the run (must be in [0, 1])"
            ),
            CampaignError::NoInstants => {
                write!(f, "multi-instant campaigns need at least one instant")
            }
            CampaignError::NotEnoughSitesForPairs { available } => write!(
                f,
                "dual-point campaigns need at least two sites, got {available}"
            ),
            CampaignError::ZeroLockstepWindow => write!(
                f,
                "a zero-write lockstep window can never fire; omit the flag to disable lockstep"
            ),
            CampaignError::BadShard { index, count } => write!(
                f,
                "shard {index}/{count} is out of range (need index < count and count >= 1)"
            ),
            CampaignError::WatchdogTooTight {
                timeout_cycles,
                golden_max_gap,
            } => write!(
                f,
                "watchdog timeout of {timeout_cycles} cycles would fire on the fault-free run \
                 (largest golden inter-write gap is {golden_max_gap} cycles)"
            ),
            CampaignError::ZeroCheckpointStride => write!(
                f,
                "a zero-cycle checkpoint stride is meaningless; omit it to checkpoint only at \
                 the injection boundaries"
            ),
            CampaignError::PreparedMismatch { field } => write!(
                f,
                "the prepared workload was built for a different campaign (`{field}` disagrees)"
            ),
            CampaignError::StaticWithPairs => write!(
                f,
                "static-analysis pruning reasons about single faults; disable it for dual-point \
                 campaigns"
            ),
            CampaignError::AuditWithoutStaticAnalysis => write!(
                f,
                "static-audit sampling needs static analysis enabled (`with_static_analysis`)"
            ),
            CampaignError::StaticAuditFailed { job, detail } => {
                write!(f, "static-analysis audit failed on job {job}: {detail}")
            }
            CampaignError::Journal(e) => write!(f, "journal: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> CampaignError {
        CampaignError::Journal(e)
    }
}

/// Why a write-ahead journal could not be written or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O operation failed. The original `std::io::Error` is carried
    /// as text so the error stays `Clone + Eq` (and record-comparable in
    /// tests).
    Io {
        /// What the journal was doing.
        context: &'static str,
        /// The rendered I/O error.
        error: String,
    },
    /// The journal file has no parseable header line.
    MissingHeader,
    /// The journal's header does not match the campaign asked to resume
    /// from it: different workload, configuration, job universe or model
    /// version.
    HeaderMismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value this campaign expects.
        expected: String,
        /// The value found in the journal.
        found: String,
    },
    /// A journal line other than the (possibly torn) final one failed to
    /// parse — the file is corrupt, not merely truncated.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// A journal entry names a job index outside the campaign's universe.
    JobOutOfRange {
        /// The job index found.
        job: usize,
        /// The campaign's job count.
        jobs: usize,
    },
    /// A journal entry's `(site, kind)` disagrees with the job it claims
    /// to record — the journal belongs to a different fault list.
    JobMismatch {
        /// The job index whose entry disagreed.
        job: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { context, error } => write!(f, "{context}: {error}"),
            JournalError::MissingHeader => write!(f, "missing or unparseable header line"),
            JournalError::HeaderMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "header mismatch on `{field}`: campaign has {expected}, journal has {found}"
            ),
            JournalError::Malformed { line, reason } => {
                write!(f, "malformed line {line}: {reason}")
            }
            JournalError::JobOutOfRange { job, jobs } => {
                write!(f, "job index {job} outside the campaign's {jobs} jobs")
            }
            JournalError::JobMismatch { job } => write!(
                f,
                "entry for job {job} records a different (site, kind) than the campaign plan"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl JournalError {
    /// Wrap an I/O error with context.
    pub fn io(context: &'static str, error: std::io::Error) -> JournalError {
        JournalError::Io {
            context,
            error: error.to_string(),
        }
    }
}
