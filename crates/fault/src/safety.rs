//! The safety-mechanism suite and the ISO 26262 classification it feeds.
//!
//! Three configurable mechanisms observe every fault job, mirroring what
//! an automotive Leon3 derivative actually ships:
//!
//! * a **windowed lockstep comparator** — the paper's light-lockstep
//!   boundary, generalised from an end-of-run stream diff to an on-line
//!   check every `W` off-core writes (`W = ∞` reproduces today's
//!   behaviour exactly);
//! * **CMEM parity** — per-line parity bits in the RTL cache model,
//!   themselves injectable fault sites (see `leon3::cache`);
//! * a **hardware watchdog** in the simulated timer domain (see
//!   [`sparc_iss::Watchdog`]) that every off-core write services, so a
//!   silent hang becomes a *detected* reset.
//!
//! Detection is computed post-hoc from observables the engine already
//! records (golden and faulty write streams, the parity latch, the
//! outcome), which keeps the mechanisms strictly orthogonal to the
//! outcome classification: enabling them never changes *what happened*,
//! only whether the system would have *noticed*.

use crate::result::FaultOutcome;
use rtl_sim::FaultKind;
use sparc_iss::{BusEvent, Watchdog};

/// Which safety mechanisms a campaign models, and their parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SafetyConfig {
    /// Compare the write streams every this-many writes (`None` = only at
    /// end of run, the pre-mechanism behaviour).
    pub lockstep_window: Option<u64>,
    /// Model per-line parity on both cache memories.
    pub parity: bool,
    /// Watchdog timeout in simulated cycles (`None` = no watchdog). Must
    /// exceed the golden run's largest inter-write gap, or the watchdog
    /// would fire on the fault-free trajectory.
    pub watchdog_cycles: Option<u64>,
}

impl SafetyConfig {
    /// Whether any mechanism is enabled.
    pub fn any_enabled(&self) -> bool {
        self.lockstep_window.is_some() || self.parity || self.watchdog_cycles.is_some()
    }
}

/// A safety mechanism, for attribution of detections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mechanism {
    /// The windowed lockstep comparator.
    Lockstep,
    /// Cache-memory parity.
    CmemParity,
    /// The simulated-time hardware watchdog.
    Watchdog,
}

impl Mechanism {
    /// Every mechanism, in attribution (tie-break) order.
    pub const ALL: [Mechanism; 3] = [
        Mechanism::Lockstep,
        Mechanism::CmemParity,
        Mechanism::Watchdog,
    ];

    /// Stable name used in journals, CSV and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Lockstep => "lockstep",
            Mechanism::CmemParity => "cmem-parity",
            Mechanism::Watchdog => "watchdog",
        }
    }

    /// Inverse of [`Mechanism::name`].
    pub fn from_name(name: &str) -> Option<Mechanism> {
        Mechanism::ALL.iter().copied().find(|m| m.name() == name)
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether (and how) a safety mechanism caught an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Detection {
    /// No mechanism fired during the observation.
    Undetected,
    /// A mechanism fired; the earliest one wins the attribution.
    Detected {
        /// The mechanism that fired first.
        mechanism: Mechanism,
        /// Cycles from the injection instant to the detection.
        latency_cycles: u64,
        /// For the lockstep comparator: writes between the divergence and
        /// the window boundary that caught it. Zero for the others.
        latency_writes: u64,
    },
}

impl Detection {
    /// Whether any mechanism fired.
    pub fn is_detected(&self) -> bool {
        matches!(self, Detection::Detected { .. })
    }
}

/// The ISO 26262 fault classes a classified injection lands in.
///
/// `EngineAnomaly` records are excluded from the classification (they
/// describe the engine, not the device under test), exactly as they are
/// excluded from the failure probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsoBucket {
    /// The fault was activated but never disturbed the observable
    /// behaviour — no effect, nothing to detect.
    Safe,
    /// A safety mechanism caught the fault (whether or not it would have
    /// gone on to violate the safety goal).
    Detected,
    /// The dangerous class: observable behaviour diverged and no
    /// mechanism noticed.
    Residual,
    /// The fault site was never even exercised by the workload — the
    /// fault stays dormant in the hardware.
    Latent,
}

impl IsoBucket {
    /// Stable name used in CSV and reports.
    pub fn name(self) -> &'static str {
        match self {
            IsoBucket::Safe => "safe",
            IsoBucket::Detected => "detected",
            IsoBucket::Residual => "residual",
            IsoBucket::Latent => "latent",
        }
    }
}

impl std::fmt::Display for IsoBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything the post-hoc detection computation needs about one job.
pub(crate) struct DetectionContext<'a> {
    /// The golden run's off-core write stream (full, from cycle 0).
    pub golden_writes: &'a [BusEvent],
    /// The faulty run's off-core write stream (full, from cycle 0 — on
    /// the fork engine this includes the restored prefix).
    pub faulty_writes: &'a [BusEvent],
    /// How many leading writes matched the golden stream.
    pub matched: usize,
    /// Cycle of the first cache-parity mismatch, if the model latched one.
    pub parity_event: Option<u64>,
    /// The injection instant.
    pub injection_cycle: u64,
    /// The job's fault model. Time-varying kinds measure detection
    /// latency from the most recent activation (duty-cycle window start,
    /// last landed flip of a burst) instead of the injection instant.
    pub kind: FaultKind,
    /// The observation ended before the faulty core's own end state
    /// (short-circuit at divergence, or wall-clock timeout): nothing after
    /// the horizon — including a trailing watchdog expiry — may be claimed.
    pub truncated: bool,
}

/// Decide which mechanism (if any) detects the fault, and when.
///
/// All candidates are evaluated and the earliest detection cycle wins;
/// ties go to [`Mechanism::ALL`] order.
pub(crate) fn classify(
    safety: &SafetyConfig,
    outcome: &FaultOutcome,
    ctx: &DetectionContext<'_>,
) -> Detection {
    if matches!(outcome, FaultOutcome::EngineAnomaly { .. }) {
        return Detection::Undetected;
    }
    let mut best: Option<(u64, Mechanism, u64)> = None;
    let mut consider = |cycle: u64, mechanism: Mechanism, writes: u64| {
        if best.is_none_or(|(c, _, _)| cycle < c) {
            best = Some((cycle, mechanism, writes));
        }
    };

    // Windowed lockstep: the comparator runs after every W-th write, so a
    // divergence at stream index `i` is caught at the end of its window —
    // boundary b = (i/W + 1)·W — provided the golden core still produces
    // that many writes. (A faulty core that emits *extra* writes after a
    // complete golden stream, or only differs in its exit code, diverges
    // past the last golden write: no further comparison instant exists, so
    // the comparator misses it — a genuinely undetectable case for
    // write-stream lockstep.)
    if let Some(window) = safety.lockstep_window {
        let diverged = match outcome {
            FaultOutcome::Failure { divergence, .. } => Some(*divergence),
            FaultOutcome::Hang { .. } | FaultOutcome::ErrorModeStop { .. } => Some(ctx.matched),
            _ => None,
        };
        if let Some(index) = diverged {
            let boundary = (index as u64 / window + 1).saturating_mul(window);
            if boundary <= ctx.golden_writes.len() as u64 {
                let at = ctx.golden_writes[boundary as usize - 1].at;
                consider(at, Mechanism::Lockstep, boundary - index as u64);
            }
        }
    }

    // Parity: the model latched the first mismatch cycle during the run.
    if safety.parity {
        if let Some(at) = ctx.parity_event {
            consider(at, Mechanism::CmemParity, 0);
        }
    }

    // Watchdog: replay the faulty write stream as kicks and look for an
    // expiry between them; a run that stops producing writes entirely
    // (hang, error-mode stop) starves the watchdog after its last write.
    if let Some(timeout) = safety.watchdog_cycles {
        let mut wd = Watchdog::new(timeout);
        let mut fired = None;
        for write in ctx.faulty_writes {
            if let Some(at) = wd.expired_at(write.at) {
                fired = Some(at);
                break;
            }
            wd.kick(write.at);
        }
        if fired.is_none()
            && !ctx.truncated
            && matches!(
                outcome,
                FaultOutcome::Hang { .. } | FaultOutcome::ErrorModeStop { .. }
            )
        {
            fired = Some(wd.deadline());
        }
        if let Some(at) = fired {
            consider(at, Mechanism::Watchdog, 0);
        }
    }

    match best {
        None => Detection::Undetected,
        Some((at, mechanism, latency_writes)) => {
            // Per-activation latency: for the permanent kinds and the
            // single flip this is exactly the injection instant, so
            // their latencies are unchanged from the pre-v5 suite.
            let since = ctx.kind.latest_activation_at(ctx.injection_cycle, at);
            Detection::Detected {
                mechanism,
                latency_cycles: at.saturating_sub(since),
                latency_writes,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_iss::BusKind;

    fn write_at(at: u64) -> BusEvent {
        BusEvent {
            at,
            kind: BusKind::Write,
            addr: 0x4000_2000,
            size: 4,
            data: 1,
        }
    }

    fn ctx<'a>(
        golden: &'a [BusEvent],
        faulty: &'a [BusEvent],
        matched: usize,
    ) -> DetectionContext<'a> {
        DetectionContext {
            golden_writes: golden,
            faulty_writes: faulty,
            matched,
            parity_event: None,
            injection_cycle: 10,
            // Permanent: latency is measured from the injection instant,
            // exactly as before the time-varying kinds existed.
            kind: FaultKind::StuckAt0,
            truncated: false,
        }
    }

    #[test]
    fn disabled_config_detects_nothing() {
        let golden: Vec<BusEvent> = (1..=8).map(|i| write_at(i * 100)).collect();
        let outcome = FaultOutcome::Failure {
            divergence: 2,
            latency_cycles: 290,
        };
        let d = classify(
            &SafetyConfig::default(),
            &outcome,
            &ctx(&golden, &golden, 2),
        );
        assert_eq!(d, Detection::Undetected);
    }

    #[test]
    fn lockstep_catches_at_the_window_boundary() {
        let golden: Vec<BusEvent> = (1..=8).map(|i| write_at(i * 100)).collect();
        let safety = SafetyConfig {
            lockstep_window: Some(4),
            ..SafetyConfig::default()
        };
        // Divergence at index 2 → window [0,4) → compared after write 4,
        // which the golden core emits at cycle 400.
        let outcome = FaultOutcome::Failure {
            divergence: 2,
            latency_cycles: 290,
        };
        let d = classify(&safety, &outcome, &ctx(&golden, &golden, 2));
        assert_eq!(
            d,
            Detection::Detected {
                mechanism: Mechanism::Lockstep,
                latency_cycles: 390,
                latency_writes: 2,
            }
        );
    }

    #[test]
    fn intermittent_latency_measures_from_the_activation_window() {
        let golden: Vec<BusEvent> = (1..=8).map(|i| write_at(i * 100)).collect();
        let safety = SafetyConfig {
            lockstep_window: Some(4),
            ..SafetyConfig::default()
        };
        let outcome = FaultOutcome::Failure {
            divergence: 2,
            latency_cycles: 290,
        };
        // Same detection instant (cycle 400) as the permanent case, but
        // injected at 10 with period 100/duty 10: the last assertion
        // window before cycle 400 starts at 310, so the latency is 90.
        let mut c = ctx(&golden, &golden, 2);
        c.kind = FaultKind::IntermittentStuck {
            level: true,
            period: 100,
            duty: 10,
            phase: 0,
        };
        let d = classify(&safety, &outcome, &c);
        assert_eq!(
            d,
            Detection::Detected {
                mechanism: Mechanism::Lockstep,
                latency_cycles: 90,
                latency_writes: 2,
            }
        );
        // A burst measures from its last landed flip: flips at 10 and
        // 210 (spacing 200), so detection at 400 is 190 after the second.
        c.kind = FaultKind::TransientBurst {
            flips: 2,
            spacing: 200,
        };
        let d = classify(&safety, &outcome, &c);
        assert_eq!(
            d,
            Detection::Detected {
                mechanism: Mechanism::Lockstep,
                latency_cycles: 190,
                latency_writes: 2,
            }
        );
    }

    #[test]
    fn lockstep_misses_divergence_past_the_last_golden_write() {
        let golden: Vec<BusEvent> = (1..=3).map(|i| write_at(i * 100)).collect();
        let safety = SafetyConfig {
            lockstep_window: Some(2),
            ..SafetyConfig::default()
        };
        // Divergence at index 3 (an extra write, or exit-code-only): the
        // next boundary is 4, past the 3 golden writes.
        let outcome = FaultOutcome::Failure {
            divergence: 3,
            latency_cycles: 1,
        };
        let d = classify(&safety, &outcome, &ctx(&golden, &golden, 3));
        assert_eq!(d, Detection::Undetected);
    }

    #[test]
    fn watchdog_starves_on_a_hang() {
        let golden: Vec<BusEvent> = (1..=4).map(|i| write_at(i * 100)).collect();
        let faulty = &golden[..2];
        let safety = SafetyConfig {
            watchdog_cycles: Some(500),
            ..SafetyConfig::default()
        };
        let outcome = FaultOutcome::Hang {
            latency_cycles: 990,
        };
        let d = classify(&safety, &outcome, &ctx(&golden, faulty, 2));
        // Last kick at cycle 200, timeout 500 → fires at 700.
        assert_eq!(
            d,
            Detection::Detected {
                mechanism: Mechanism::Watchdog,
                latency_cycles: 690,
                latency_writes: 0,
            }
        );
    }

    #[test]
    fn watchdog_stays_quiet_when_writes_keep_coming() {
        let golden: Vec<BusEvent> = (1..=4).map(|i| write_at(i * 100)).collect();
        let safety = SafetyConfig {
            watchdog_cycles: Some(500),
            ..SafetyConfig::default()
        };
        let d = classify(&safety, &FaultOutcome::NoEffect, &ctx(&golden, &golden, 4));
        assert_eq!(d, Detection::Undetected);
    }

    #[test]
    fn truncated_observation_claims_no_trailing_expiry() {
        let golden: Vec<BusEvent> = (1..=4).map(|i| write_at(i * 100)).collect();
        let faulty = &golden[..2];
        let safety = SafetyConfig {
            watchdog_cycles: Some(500),
            ..SafetyConfig::default()
        };
        let outcome = FaultOutcome::Hang {
            latency_cycles: 990,
        };
        let mut c = ctx(&golden, faulty, 2);
        c.truncated = true;
        assert_eq!(classify(&safety, &outcome, &c), Detection::Undetected);
    }

    #[test]
    fn earliest_mechanism_wins() {
        let golden: Vec<BusEvent> = (1..=8).map(|i| write_at(i * 100)).collect();
        let safety = SafetyConfig {
            lockstep_window: Some(4),
            parity: true,
            ..SafetyConfig::default()
        };
        let outcome = FaultOutcome::Failure {
            divergence: 2,
            latency_cycles: 290,
        };
        // Parity latched at cycle 150, before the lockstep boundary at 400.
        let mut c = ctx(&golden, &golden, 2);
        c.parity_event = Some(150);
        assert_eq!(
            classify(&safety, &outcome, &c),
            Detection::Detected {
                mechanism: Mechanism::CmemParity,
                latency_cycles: 140,
                latency_writes: 0,
            }
        );
    }
}
