//! The injectable fault universe and sampling.

use analysis::SplitMix64;
use leon3_model::Leon3;
use rtl_sim::NetId;
use sparc_isa::Unit;
use std::collections::BTreeMap;
use std::fmt;

/// Injection domain, matching the paper's two campaigns (Figures 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The integer unit.
    IntegerUnit,
    /// The cache memory.
    CacheMemory,
    /// Both domains (the whole microcontroller).
    Whole,
}

impl Target {
    /// Whether `unit` belongs to this injection domain.
    pub fn includes(self, unit: Unit) -> bool {
        match self {
            Target::IntegerUnit => unit.is_iu(),
            Target::CacheMemory => unit.is_cmem(),
            Target::Whole => true,
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Target::IntegerUnit => "IU",
            Target::CacheMemory => "CMEM",
            Target::Whole => "IU+CMEM",
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injectable node: a bit of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// The net.
    pub net: NetId,
    /// The bit within the net.
    pub bit: u8,
    /// The functional unit the net belongs to.
    pub unit: Unit,
}

/// Enumerate every injectable node of a domain, in declaration order.
///
/// This is the paper's "all available points from the IU and CMEM
/// microcontroller units": every bit of every VHDL-signal-equivalent net.
pub fn fault_sites(cpu: &Leon3, target: Target) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (id, meta) in cpu.pool().iter() {
        if target.includes(meta.tag) {
            for bit in 0..meta.width {
                sites.push(FaultSite {
                    net: id,
                    bit,
                    unit: meta.tag,
                });
            }
        }
    }
    sites
}

/// Injectable-bit population per unit — the paper's proxy for the area
/// fractions `α_m` of its Eq. 1.
pub fn unit_bit_counts(cpu: &Leon3) -> BTreeMap<Unit, usize> {
    let mut counts = BTreeMap::new();
    for (_, meta) in cpu.pool().iter() {
        *counts.entry(meta.tag).or_insert(0) += usize::from(meta.width);
    }
    counts
}

/// Draw a seeded sample of `n` sites, stratified by functional unit:
/// every unit contributes sites in proportion to its injectable-bit count
/// (at least one site for any non-empty unit), so small control units are
/// not drowned out by the register file and cache data arrays.
pub fn sample_sites(sites: &[FaultSite], n: usize, seed: u64) -> Vec<FaultSite> {
    if n >= sites.len() {
        return sites.to_vec();
    }
    let mut per_unit: BTreeMap<Unit, Vec<FaultSite>> = BTreeMap::new();
    for &site in sites {
        per_unit.entry(site.unit).or_default().push(site);
    }
    let total = sites.len();
    // Proportional shares with a one-site floor per stratum; rounding
    // overshoot is shaved off the largest strata so every unit stays
    // represented.
    let mut shares: Vec<(Unit, usize)> = per_unit
        .iter()
        .map(|(&unit, unit_sites)| {
            let share = ((unit_sites.len() * n) as f64 / total as f64).round() as usize;
            (unit, share.clamp(1, unit_sites.len()))
        })
        .collect();
    let stratum_sizes: BTreeMap<Unit, usize> =
        per_unit.iter().map(|(&u, v)| (u, v.len())).collect();
    let mut overshoot = shares
        .iter()
        .map(|&(_, s)| s)
        .sum::<usize>()
        .saturating_sub(n);
    while overshoot > 0 {
        if let Some(largest) = shares
            .iter_mut()
            .filter(|(_, s)| *s > 1)
            .max_by_key(|&&mut (_, s)| s)
        {
            largest.1 -= 1;
        } else {
            // n below the stratum count: drop whole strata, smallest first,
            // so the biggest units keep their representative.
            let smallest = shares
                .iter_mut()
                .filter(|(_, s)| *s > 0)
                .min_by_key(|&&mut (u, _)| stratum_sizes[&u])
                .expect("overshoot implies a non-empty share remains");
            smallest.1 = 0;
        }
        overshoot -= 1;
    }
    let mut rng = SplitMix64::new(seed);
    let mut sample = Vec::with_capacity(n);
    for (unit, share) in shares {
        let unit_sites = per_unit.get_mut(&unit).expect("stratum exists");
        rng.shuffle(unit_sites);
        sample.extend(unit_sites.iter().take(share).copied());
    }
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use leon3_model::Leon3Config;

    fn cpu() -> Leon3 {
        Leon3::new(Leon3Config::default())
    }

    #[test]
    fn iu_and_cmem_partition_the_whole() {
        let cpu = cpu();
        let iu = fault_sites(&cpu, Target::IntegerUnit);
        let cmem = fault_sites(&cpu, Target::CacheMemory);
        let whole = fault_sites(&cpu, Target::Whole);
        assert_eq!(iu.len() + cmem.len(), whole.len());
        assert!(iu.iter().all(|s| s.unit.is_iu()));
        assert!(cmem.iter().all(|s| s.unit.is_cmem()));
        // Realistic populations (cf. the net-map tests).
        assert!(iu.len() > 4000);
        assert!(cmem.len() > 60_000);
    }

    #[test]
    fn bit_counts_sum_to_pool_bits() {
        let cpu = cpu();
        let counts = unit_bit_counts(&cpu);
        let total: usize = counts.values().sum();
        assert_eq!(total, cpu.pool().bit_count());
    }

    #[test]
    fn sampling_is_deterministic_and_stratified() {
        let cpu = cpu();
        let sites = fault_sites(&cpu, Target::IntegerUnit);
        let a = sample_sites(&sites, 200, 42);
        let b = sample_sites(&sites, 200, 42);
        assert_eq!(a, b);
        let c = sample_sites(&sites, 200, 43);
        assert_ne!(a, c);
        // Every IU unit is represented.
        for unit in Unit::IU {
            assert!(
                a.iter().any(|s| s.unit == unit),
                "unit {unit} missing from stratified sample"
            );
        }
        // Size approximately honoured (stratification may add a few for
        // minimum-one-per-unit coverage).
        assert!(a.len() >= 195 && a.len() <= 220, "{}", a.len());
    }

    #[test]
    fn oversampling_returns_everything() {
        let cpu = cpu();
        let sites = fault_sites(&cpu, Target::IntegerUnit);
        let all = sample_sites(&sites, sites.len() + 10, 1);
        assert_eq!(all.len(), sites.len());
    }
}
