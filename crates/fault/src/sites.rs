//! The injectable fault universe and sampling.

use analysis::SplitMix64;
use leon3_model::Leon3;
use rtl_sim::NetId;
use sparc_isa::Unit;
use std::collections::BTreeMap;
use std::fmt;

/// Injection domain, matching the paper's two campaigns (Figures 5 and 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// The integer unit.
    IntegerUnit,
    /// The cache memory.
    CacheMemory,
    /// Both domains (the whole microcontroller).
    Whole,
}

impl Target {
    /// Whether `unit` belongs to this injection domain.
    pub fn includes(self, unit: Unit) -> bool {
        match self {
            Target::IntegerUnit => unit.is_iu(),
            Target::CacheMemory => unit.is_cmem(),
            Target::Whole => true,
        }
    }

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Target::IntegerUnit => "IU",
            Target::CacheMemory => "CMEM",
            Target::Whole => "IU+CMEM",
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One injectable node: a bit of a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultSite {
    /// The net.
    pub net: NetId,
    /// The bit within the net.
    pub bit: u8,
    /// The functional unit the net belongs to.
    pub unit: Unit,
}

/// A semantic attack-surface class for InjectV-style targeted campaigns:
/// instead of a uniform sweep over a unit's bits, a campaign names the
/// architectural state an attacker would corrupt and the selector
/// resolves it to concrete nets of the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackTarget {
    /// Branch-condition evaluation: the decoded condition field and the
    /// execute-stage taken flag (`iu.de.cond`, `iu.ex.br_taken`).
    BranchCondition,
    /// Processor status register and condition codes
    /// (`iu.sr.icc`, `iu.sr.s`, `iu.sr.ps`, `iu.sr.et`, `iu.sr.pil`,
    /// `iu.sr.cwp`).
    StatusRegister,
    /// Control flow through the fetch stage: current and next program
    /// counter plus the branch target (`iu.fe.pc`, `iu.fe.npc`,
    /// `iu.ex.br_target`).
    NextPc,
}

impl AttackTarget {
    /// Every attack-surface class.
    pub const ALL: [AttackTarget; 3] = [
        AttackTarget::BranchCondition,
        AttackTarget::StatusRegister,
        AttackTarget::NextPc,
    ];

    /// Token accepted on the CLI and the campaign spec wire form.
    pub fn token(self) -> &'static str {
        match self {
            AttackTarget::BranchCondition => "branch",
            AttackTarget::StatusRegister => "psr",
            AttackTarget::NextPc => "pc",
        }
    }

    /// Parse a single token (see [`AttackTarget::token`]).
    pub fn from_token(token: &str) -> Option<AttackTarget> {
        AttackTarget::ALL.into_iter().find(|t| t.token() == token)
    }

    /// Parse a comma-separated token list like `"psr,branch"`, rejecting
    /// unknown tokens with the offending token in the error. Duplicates
    /// are deduplicated and the result is in canonical [`AttackTarget::ALL`]
    /// order so equivalent lists select identical site sets.
    pub fn parse_list(list: &str) -> Result<Vec<AttackTarget>, String> {
        let mut selected = Vec::new();
        for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            match AttackTarget::from_token(token) {
                Some(t) => {
                    if !selected.contains(&t) {
                        selected.push(t);
                    }
                }
                None => {
                    return Err(format!(
                        "unknown attack target `{token}` (expected one of: branch, psr, pc)"
                    ))
                }
            }
        }
        selected.sort();
        Ok(selected)
    }

    /// The hierarchical net names this class resolves to.
    pub fn net_names(self) -> &'static [&'static str] {
        match self {
            AttackTarget::BranchCondition => &["iu.de.cond", "iu.ex.br_taken"],
            AttackTarget::StatusRegister => &[
                "iu.sr.icc",
                "iu.sr.s",
                "iu.sr.ps",
                "iu.sr.et",
                "iu.sr.pil",
                "iu.sr.cwp",
            ],
            AttackTarget::NextPc => &["iu.fe.pc", "iu.fe.npc", "iu.ex.br_target"],
        }
    }
}

impl fmt::Display for AttackTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Resolve attack-surface classes to the model's concrete fault sites:
/// every bit of every net named by a selected class, in declaration
/// order (so the site list — and through it every record — is
/// deterministic in the class set).
///
/// # Panics
///
/// Panics if a class names a net the model does not declare — the name
/// tables above are part of the model contract and covered by tests.
pub fn targeted_sites(cpu: &Leon3, targets: &[AttackTarget]) -> Vec<FaultSite> {
    let mut wanted: Vec<&'static str> = Vec::new();
    for t in targets {
        wanted.extend_from_slice(t.net_names());
    }
    let mut found: Vec<&'static str> = Vec::new();
    let mut sites = Vec::new();
    for (id, meta) in cpu.pool().iter() {
        if let Some(&name) = wanted.iter().find(|&&n| n == meta.name) {
            found.push(name);
            for bit in 0..meta.width {
                sites.push(FaultSite {
                    net: id,
                    bit,
                    unit: meta.tag,
                });
            }
        }
    }
    for name in wanted {
        assert!(
            found.contains(&name),
            "attack-target net `{name}` not declared by the model"
        );
    }
    sites
}

/// Enumerate every injectable node of a domain, in declaration order.
///
/// This is the paper's "all available points from the IU and CMEM
/// microcontroller units": every bit of every VHDL-signal-equivalent net.
pub fn fault_sites(cpu: &Leon3, target: Target) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (id, meta) in cpu.pool().iter() {
        if target.includes(meta.tag) {
            for bit in 0..meta.width {
                sites.push(FaultSite {
                    net: id,
                    bit,
                    unit: meta.tag,
                });
            }
        }
    }
    sites
}

/// Injectable-bit population per unit — the paper's proxy for the area
/// fractions `α_m` of its Eq. 1.
pub fn unit_bit_counts(cpu: &Leon3) -> BTreeMap<Unit, usize> {
    let mut counts = BTreeMap::new();
    for (_, meta) in cpu.pool().iter() {
        *counts.entry(meta.tag).or_insert(0) += usize::from(meta.width);
    }
    counts
}

/// Draw a seeded sample of `n` sites, stratified by functional unit:
/// every unit contributes sites in proportion to its injectable-bit count
/// (at least one site for any non-empty unit), so small control units are
/// not drowned out by the register file and cache data arrays.
pub fn sample_sites(sites: &[FaultSite], n: usize, seed: u64) -> Vec<FaultSite> {
    if n >= sites.len() {
        return sites.to_vec();
    }
    let mut per_unit: BTreeMap<Unit, Vec<FaultSite>> = BTreeMap::new();
    for &site in sites {
        per_unit.entry(site.unit).or_default().push(site);
    }
    let total = sites.len();
    // Proportional shares with a one-site floor per stratum; rounding
    // overshoot is shaved off the largest strata so every unit stays
    // represented.
    let mut shares: Vec<(Unit, usize)> = per_unit
        .iter()
        .map(|(&unit, unit_sites)| {
            let share = ((unit_sites.len() * n) as f64 / total as f64).round() as usize;
            (unit, share.clamp(1, unit_sites.len()))
        })
        .collect();
    let stratum_sizes: BTreeMap<Unit, usize> =
        per_unit.iter().map(|(&u, v)| (u, v.len())).collect();
    let mut overshoot = shares
        .iter()
        .map(|&(_, s)| s)
        .sum::<usize>()
        .saturating_sub(n);
    while overshoot > 0 {
        if let Some(largest) = shares
            .iter_mut()
            .filter(|(_, s)| *s > 1)
            .max_by_key(|&&mut (_, s)| s)
        {
            largest.1 -= 1;
        } else {
            // n below the stratum count: drop whole strata, smallest first,
            // so the biggest units keep their representative.
            let smallest = shares
                .iter_mut()
                .filter(|(_, s)| *s > 0)
                .min_by_key(|&&mut (u, _)| stratum_sizes[&u])
                .expect("overshoot implies a non-empty share remains");
            smallest.1 = 0;
        }
        overshoot -= 1;
    }
    let mut rng = SplitMix64::new(seed);
    let mut sample = Vec::with_capacity(n);
    for (unit, share) in shares {
        let unit_sites = per_unit.get_mut(&unit).expect("stratum exists");
        rng.shuffle(unit_sites);
        sample.extend(unit_sites.iter().take(share).copied());
    }
    sample
}

#[cfg(test)]
mod tests {
    use super::*;
    use leon3_model::Leon3Config;

    fn cpu() -> Leon3 {
        Leon3::new(Leon3Config::default())
    }

    #[test]
    fn iu_and_cmem_partition_the_whole() {
        let cpu = cpu();
        let iu = fault_sites(&cpu, Target::IntegerUnit);
        let cmem = fault_sites(&cpu, Target::CacheMemory);
        let whole = fault_sites(&cpu, Target::Whole);
        assert_eq!(iu.len() + cmem.len(), whole.len());
        assert!(iu.iter().all(|s| s.unit.is_iu()));
        assert!(cmem.iter().all(|s| s.unit.is_cmem()));
        // Realistic populations (cf. the net-map tests).
        assert!(iu.len() > 4000);
        assert!(cmem.len() > 60_000);
    }

    #[test]
    fn bit_counts_sum_to_pool_bits() {
        let cpu = cpu();
        let counts = unit_bit_counts(&cpu);
        let total: usize = counts.values().sum();
        assert_eq!(total, cpu.pool().bit_count());
    }

    #[test]
    fn sampling_is_deterministic_and_stratified() {
        let cpu = cpu();
        let sites = fault_sites(&cpu, Target::IntegerUnit);
        let a = sample_sites(&sites, 200, 42);
        let b = sample_sites(&sites, 200, 42);
        assert_eq!(a, b);
        let c = sample_sites(&sites, 200, 43);
        assert_ne!(a, c);
        // Every IU unit is represented.
        for unit in Unit::IU {
            assert!(
                a.iter().any(|s| s.unit == unit),
                "unit {unit} missing from stratified sample"
            );
        }
        // Size approximately honoured (stratification may add a few for
        // minimum-one-per-unit coverage).
        assert!(a.len() >= 195 && a.len() <= 220, "{}", a.len());
    }

    #[test]
    fn oversampling_returns_everything() {
        let cpu = cpu();
        let sites = fault_sites(&cpu, Target::IntegerUnit);
        let all = sample_sites(&sites, sites.len() + 10, 1);
        assert_eq!(all.len(), sites.len());
    }

    #[test]
    fn every_attack_target_resolves_on_the_real_model() {
        let cpu = cpu();
        for target in AttackTarget::ALL {
            let sites = targeted_sites(&cpu, &[target]);
            assert!(!sites.is_empty(), "{target} resolves to no sites");
            assert!(
                sites.iter().all(|s| s.unit.is_iu()),
                "{target} must stay inside the IU"
            );
            // Exactly the named nets' bit budget, no more.
            let expected: usize = target
                .net_names()
                .iter()
                .map(|&name| {
                    cpu.pool()
                        .iter()
                        .find(|(_, m)| m.name == name)
                        .map_or(0, |(_, m)| usize::from(m.width))
                })
                .sum();
            assert_eq!(sites.len(), expected, "{target}");
        }
    }

    #[test]
    fn targeted_sites_union_and_order_are_canonical() {
        let cpu = cpu();
        let all = targeted_sites(&cpu, &AttackTarget::ALL);
        let sum: usize = AttackTarget::ALL
            .into_iter()
            .map(|t| targeted_sites(&cpu, &[t]).len())
            .sum();
        assert_eq!(all.len(), sum, "classes are disjoint");
        // Declaration order regardless of the class argument order.
        let reversed = targeted_sites(
            &cpu,
            &[
                AttackTarget::NextPc,
                AttackTarget::StatusRegister,
                AttackTarget::BranchCondition,
            ],
        );
        assert_eq!(all, reversed);
        assert!(targeted_sites(&cpu, &[]).is_empty());
    }

    #[test]
    fn attack_target_tokens_round_trip() {
        for target in AttackTarget::ALL {
            assert_eq!(AttackTarget::from_token(target.token()), Some(target));
        }
        assert_eq!(AttackTarget::from_token("bogus"), None);
        assert_eq!(
            AttackTarget::parse_list("psr, branch,psr").unwrap(),
            vec![AttackTarget::BranchCondition, AttackTarget::StatusRegister],
            "deduplicated and in canonical order"
        );
        assert_eq!(AttackTarget::parse_list("").unwrap(), vec![]);
        assert!(AttackTarget::parse_list("psr,bogus").is_err());
    }
}
