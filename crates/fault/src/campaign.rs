//! The campaign runner.
//!
//! Campaigns run on a **checkpoint-tree fork** engine by default: the
//! fault-free golden trajectory is simulated exactly once, dropping a
//! *pool* of [`leon3_model::Snapshot`] checkpoints along the way — one at
//! the reset state, one at each requested injection boundary, and (with
//! [`Campaign::with_checkpoint_stride`]) one every K cycles. Every
//! (site, kind, instant) job restores the nearest ancestor checkpoint at
//! or before its own injection boundary and replays only the fault-free
//! gap before activation, so no campaign — single-instant, multi-instant
//! or transient sweep — ever re-executes a prefix cycle twice, and no job
//! ever falls back to full re-execution. A dense instant sweep thins its
//! per-boundary checkpoints to a bounded pool (trading bounded replay for
//! bounded memory). Two further cost levers ride on the same machinery:
//!
//! * **site-activation tracking** — the golden run records, per net, the
//!   cycle of its last read. A permanent fault is observable only through a
//!   net *read*, and a faulty run tracks the golden trajectory until its
//!   first diverging read, so a job whose injected net the golden run never
//!   reads from the injection instant on is classified `NoEffect` without
//!   simulating a single cycle;
//! * **streaming divergence detection** — each off-core write of a faulty
//!   run is compared against the golden stream as it is emitted, and the
//!   run is short-circuited at the first mismatching or extra write.
//!
//! [`Execution::FullReexecution`] retains the pre-fork engine (every job
//! re-simulated from reset). Both engines produce **bit-identical
//! records**; only the [`crate::CampaignStats`] cost accounting differs.
//!
//! # Fault tolerance
//!
//! Campaigns are built to survive the failure modes of long runs:
//!
//! * **panic isolation** — every job executes under
//!   [`std::panic::catch_unwind`]. A panicking job is retried once from a
//!   fresh model restore; a second panic records the job as
//!   [`FaultOutcome::EngineAnomaly`] (payload preserved) and the campaign
//!   continues, losing at most that one job;
//! * **wall-clock watchdog** — [`Campaign::with_deadline`] bounds each job
//!   by wall-clock time (cooperatively checked in the run loop) on top of
//!   the architectural cycle budget; overruns classify as
//!   [`FaultOutcome::Hang`] and are counted in `CampaignStats::timed_out`;
//! * **write-ahead result journal** — [`Campaign::run_journaled`] appends
//!   one flushed JSONL line per completed job, and [`Campaign::resume`]
//!   validates the journal header (workload hash, configuration
//!   fingerprint, job universe), replays completed jobs and simulates only
//!   the rest, reconstituting a bit-identical [`CampaignResult`];
//! * **structured configuration errors** — invalid configurations surface
//!   as [`CampaignError`] from the `try_*` entry points instead of
//!   panicking ([`Campaign::run`] keeps the panicking contract for
//!   existing callers).

use crate::error::{CampaignError, JournalError};
use crate::journal::{self, fnv1a64, Entry, Header, Journal, FNV_OFFSET};
use crate::result::{CampaignResult, CampaignStats, FaultOutcome, FaultRecord};
use crate::safety::{self, Detection, DetectionContext, SafetyConfig};
use crate::sites::{fault_sites, sample_sites, targeted_sites, AttackTarget, FaultSite, Target};
use crate::static_analysis::{PrunedBy, StaticAnalysis};
use crate::wire::kind_to_token;
use analysis::SplitMix64;
use leon3_model::{Leon3, Leon3Config, Snapshot};
use rtl_sim::{Fault, FaultKind, NetId};
use sparc_asm::Program;
use sparc_iss::{BusEvent, Exit, StepEvent};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Maximum number of live checkpoints a fork-engine campaign keeps in its
/// pool. A dense instant sweep (or a tight [`Campaign::with_checkpoint_stride`])
/// is thinned evenly to this cap — always keeping the reset state and the
/// deepest boundary — so pool memory stays bounded; jobs whose exact
/// boundary was thinned away replay the bounded gap from the nearest
/// surviving ancestor checkpoint instead.
pub const MAX_POOL_CHECKPOINTS: usize = 32;

/// The fault-free reference execution of a workload on the RTL model.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The off-core write stream.
    pub writes: Vec<BusEvent>,
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// The exit code.
    pub exit_code: u32,
    /// The largest gap in cycles between consecutive off-core writes,
    /// measured from cycle 0 (no trailing gap after the last write): the
    /// floor a simulated watchdog timeout must clear to stay silent on
    /// the fault-free run.
    pub max_write_gap: u64,
    /// Cumulative cycle count after each `step()` call, for locating the
    /// last instruction boundary strictly before an injection instant.
    step_cycles: Vec<u64>,
    /// Per-net cycle of the last golden read (`None` = never read),
    /// indexed by raw net id.
    net_last_read: Vec<Option<u64>>,
}

impl GoldenRun {
    /// Execute the golden run.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not halt — golden runs must be
    /// trap-free and terminating by construction.
    pub fn capture(program: &Program, config: &Leon3Config) -> GoldenRun {
        let mut cpu = Leon3::new(config.clone());
        cpu.enable_read_tracking();
        cpu.load(program);
        let mut step_cycles = Vec::new();
        let exit_code = loop {
            let event = cpu.step();
            step_cycles.push(cpu.cycles());
            if event == StepEvent::Stopped {
                match cpu.exit() {
                    Some(Exit::Halted(code)) => break code,
                    other => panic!("golden run did not halt: {other:?}"),
                }
            }
        };
        let net_last_read = (0..cpu.pool().len())
            .map(|i| cpu.net_last_read(NetId::from_raw(i as u32)))
            .collect();
        let writes: Vec<BusEvent> = cpu.bus_trace().writes().copied().collect();
        let mut max_write_gap = 0;
        let mut last = 0;
        for w in &writes {
            max_write_gap = max_write_gap.max(w.at.saturating_sub(last));
            last = w.at;
        }
        GoldenRun {
            writes,
            instructions: cpu.stats().instructions,
            cycles: cpu.cycles(),
            exit_code,
            max_write_gap,
            step_cycles,
            net_last_read,
        }
    }

    /// Number of `step()` calls that complete strictly before
    /// `injection_cycle` — the longest fault-free prefix every job of a
    /// campaign injecting at that instant can share.
    pub fn prefix_steps(&self, injection_cycle: u64) -> usize {
        self.step_cycles.partition_point(|&c| c < injection_cycle)
    }

    /// Cycle count after `steps` completed `step()` calls (0 at reset).
    /// The checkpoint pool uses this to price the fault-free gap between
    /// an ancestor checkpoint and a job's injection boundary.
    pub fn cycle_at_step(&self, steps: usize) -> u64 {
        if steps == 0 {
            0
        } else {
            self.step_cycles[steps - 1]
        }
    }

    /// Whether the golden run reads `net` at or after `cycle`.
    ///
    /// A permanent fault perturbs execution only through a [`NetId`] read,
    /// and a faulty run is cycle-identical to the golden run until its
    /// first read of a perturbed net — so when this returns `false` for an
    /// injection at `cycle`, the faulty run provably reproduces the golden
    /// run to the end.
    pub fn net_exercised_from(&self, net: NetId, cycle: u64) -> bool {
        self.net_last_read
            .get(net.raw() as usize)
            .copied()
            .flatten()
            .is_some_and(|last| last >= cycle)
    }
}

/// When a campaign's faults appear (permanent from then on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionInstant {
    /// An absolute cycle.
    Cycle(u64),
    /// A fraction of the golden run's length (e.g. `0.05` = after 5% of
    /// the golden cycles). This is how the paper's "fixed injection
    /// instant" is expressed portably across workloads — and what makes
    /// open-line faults hold a *live* value rather than the reset value.
    Fraction(f64),
}

/// How a campaign executes its fault universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Checkpoint-tree fork: simulate the fault-free trajectory once,
    /// dropping a pool of checkpoints (reset state, every requested
    /// injection boundary, plus an optional periodic grid), and resume
    /// every job from its nearest ancestor checkpoint, replaying only the
    /// fault-free gap. Jobs whose nets the golden run never reads from
    /// the injection instant on are classified without simulation. There
    /// is no full-re-execution fallback: the reset-state checkpoint is an
    /// ancestor of every instant.
    #[default]
    Fork,
    /// Re-simulate every job from reset. Kept as the equivalence baseline
    /// and for A/B benchmarking; produces bit-identical records.
    FullReexecution,
}

/// A fault-injection campaign: one workload, one injection domain, a fault
/// list and a set of fault models.
#[derive(Debug, Clone)]
pub struct Campaign {
    program: Program,
    target: Target,
    kinds: Vec<FaultKind>,
    sample: Option<(usize, u64)>,
    sites_override: Option<Vec<FaultSite>>,
    attack_targets: Option<Vec<AttackTarget>>,
    injection: InjectionInstant,
    execution: Execution,
    deadline: Option<Duration>,
    config: Leon3Config,
    safety: SafetyConfig,
    shard: Option<(u32, u32)>,
    checkpoint_stride: Option<u64>,
    static_analysis: bool,
    static_audit: Option<(usize, u64)>,
}

impl Campaign {
    /// A campaign over the full fault universe of `target` with all three
    /// fault models.
    pub fn new(program: Program, target: Target) -> Campaign {
        Campaign {
            program,
            target,
            kinds: FaultKind::ALL.to_vec(),
            sample: None,
            sites_override: None,
            attack_targets: None,
            injection: InjectionInstant::Cycle(0),
            execution: Execution::default(),
            deadline: None,
            config: Leon3Config::default(),
            safety: SafetyConfig::default(),
            shard: None,
            checkpoint_stride: None,
            static_analysis: false,
            static_audit: None,
        }
    }

    /// Configure the modelled safety mechanisms (see [`SafetyConfig`]).
    /// All mechanisms are off by default, in which case every record's
    /// detection is [`Detection::Undetected`] and outcomes are
    /// bit-identical to a mechanism-free campaign.
    #[must_use]
    pub fn with_safety(mut self, safety: SafetyConfig) -> Campaign {
        self.safety = safety;
        self
    }

    /// Enable the windowed lockstep comparator: the checker fires at the
    /// first `window`-write boundary at or past the divergence. A zero
    /// window is reported as [`CampaignError::ZeroLockstepWindow`] when
    /// the campaign runs.
    #[must_use]
    pub fn with_lockstep_window(mut self, window: u64) -> Campaign {
        self.safety.lockstep_window = Some(window);
        self
    }

    /// Enable (or disable) per-line cache parity in the simulated CMEM.
    /// The parity bits are themselves injectable fault sites.
    #[must_use]
    pub fn with_parity(mut self, enabled: bool) -> Campaign {
        self.safety.parity = enabled;
        self
    }

    /// Enable the simulated-time hardware watchdog, kicked by every
    /// off-core write. A timeout no longer than the golden run's largest
    /// inter-write gap is reported as [`CampaignError::WatchdogTooTight`]
    /// when the campaign runs.
    #[must_use]
    pub fn with_watchdog_cycles(mut self, timeout: u64) -> Campaign {
        self.safety.watchdog_cycles = Some(timeout);
        self
    }

    /// Restrict to a seeded stratified sample of `n` sites.
    #[must_use]
    pub fn with_sample(mut self, n: usize, seed: u64) -> Campaign {
        self.sample = Some((n, seed));
        self
    }

    /// Restrict the fault models. An empty list is reported as
    /// [`CampaignError::NoFaultKinds`] when the campaign runs.
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Campaign {
        self.kinds = kinds.to_vec();
        self
    }

    /// Inject exactly this fault list, bypassing enumeration and sampling
    /// (custom fault lists, regression lists, or deliberately poisoned
    /// sites in the panic-isolation tests).
    #[must_use]
    pub fn with_sites(mut self, sites: Vec<FaultSite>) -> Campaign {
        self.sites_override = Some(sites);
        self
    }

    /// Restrict the fault universe to the attack-surface classes'
    /// semantic nets ([`crate::targeted_sites`]): branch condition,
    /// status register and/or program-counter state — the InjectV-style
    /// targeted campaign shape. Replaces domain enumeration; a seeded
    /// sample still applies on top when the class universe is larger
    /// than the sample. An explicit [`Campaign::with_sites`] list wins
    /// over both. An empty class list is reported as
    /// [`CampaignError::NoFaultSites`] when the campaign runs.
    #[must_use]
    pub fn with_attack_targets(mut self, targets: &[AttackTarget]) -> Campaign {
        let mut targets = targets.to_vec();
        targets.sort();
        targets.dedup();
        self.attack_targets = Some(targets);
        self
    }

    /// Set the injection instant (cycle at which faults appear; they are
    /// permanent from then on). Defaults to cycle 0.
    #[must_use]
    pub fn with_injection_cycle(mut self, cycle: u64) -> Campaign {
        self.injection = InjectionInstant::Cycle(cycle);
        self
    }

    /// Set the injection instant as a fraction of the golden run's cycle
    /// count. A fraction outside `[0, 1]` is reported as
    /// [`CampaignError::InjectionPastEnd`] when the campaign runs.
    #[must_use]
    pub fn with_injection_fraction(mut self, fraction: f64) -> Campaign {
        self.injection = InjectionInstant::Fraction(fraction);
        self
    }

    /// Select the execution engine. Defaults to [`Execution::Fork`].
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Campaign {
        self.execution = execution;
        self
    }

    /// Bound every job by wall-clock time on top of the architectural
    /// cycle budget. Overruns classify as [`FaultOutcome::Hang`] and are
    /// counted in [`CampaignStats::timed_out`]. Off by default — and best
    /// kept generous: a deadline that fires on a job the cycle budget
    /// would have classified differently makes results host-load
    /// dependent. The deadline does not enter the journal fingerprint for
    /// the same reason.
    #[must_use]
    pub fn with_deadline(mut self, per_job: Duration) -> Campaign {
        self.deadline = Some(per_job);
        self
    }

    /// Run only shard `index` of `count`: the planned job list is
    /// partitioned deterministically by stride (job `j` belongs to shard
    /// `j % count`), so `count` processes each simulate a disjoint slice
    /// of the same campaign and [`crate::wire::merge_shards`] recombines
    /// their results into the unsharded [`CampaignResult`] bit-for-bit.
    /// `index >= count` (or a zero `count`) is reported as
    /// [`CampaignError::BadShard`] when the campaign runs. The shard
    /// coordinates enter the journal fingerprint — a shard refuses
    /// another shard's journal — but not [`Campaign::fingerprint`], which
    /// identifies the whole campaign.
    #[must_use]
    pub fn with_shard(mut self, index: u32, count: u32) -> Campaign {
        self.shard = Some((index, count));
        self
    }

    /// Drop a periodic checkpoint into the fork engine's pool every
    /// `stride` cycles of the golden trajectory, in addition to the
    /// per-boundary checkpoints. A denser grid shortens the fault-free
    /// gap a thinned-pool job must replay at the price of snapshot
    /// memory; without it the pool holds only the reset state and the
    /// requested injection boundaries. A zero stride is reported as
    /// [`CampaignError::ZeroCheckpointStride`] when the campaign runs.
    /// The stride enters the configuration fingerprint (it changes every
    /// job's cost delta), so a resumed journal must agree on it.
    #[must_use]
    pub fn with_checkpoint_stride(mut self, stride: u64) -> Campaign {
        self.checkpoint_stride = Some(stride);
        self
    }

    /// Override the platform configuration.
    ///
    /// Bus-read tracing is forced off for classification runs: outcomes
    /// are defined over the off-core *write* stream.
    #[must_use]
    pub fn with_config(mut self, config: Leon3Config) -> Campaign {
        self.config = config;
        self
    }

    /// Enable static net-graph analysis (see [`StaticAnalysis`]): jobs on
    /// provably-unobservable nets — and transient flips on transient-safe
    /// latches — are recorded as benign with [`PrunedBy::Static`]
    /// provenance instead of being simulated, and stuck-at jobs on
    /// collapsed equivalence-class members copy their simulated
    /// representative's outcome with [`PrunedBy::Collapsed`] provenance.
    /// Every planned job still gets a record; nothing is silently
    /// dropped. Pruned and collapsed jobs are counted in
    /// [`CampaignStats::statically_pruned`] and the classes in
    /// [`CampaignStats::collapsed_classes`]. Off by default; the flag
    /// enters the configuration fingerprint. Dual-point campaigns refuse
    /// the flag with [`CampaignError::StaticWithPairs`].
    #[must_use]
    pub fn with_static_analysis(mut self, enabled: bool) -> Campaign {
        self.static_analysis = enabled;
        self
    }

    /// Audit the static analyzer: after the campaign completes, fully
    /// re-simulate (from reset) a seeded sample of up to `n` pruned or
    /// collapsed jobs and fail with [`CampaignError::StaticAuditFailed`]
    /// if any re-simulation contradicts the synthesised record. The audit
    /// work is a verification pass and is not billed in
    /// [`CampaignStats`]. Requires [`Campaign::with_static_analysis`];
    /// configuring it alone is reported as
    /// [`CampaignError::AuditWithoutStaticAnalysis`].
    #[must_use]
    pub fn with_static_audit(mut self, n: usize, seed: u64) -> Campaign {
        self.static_audit = Some((n, seed));
        self
    }

    /// The fault list this campaign will inject. Enumerated against the
    /// effective classification configuration, so an enabled parity
    /// mechanism contributes its parity bits as injectable sites.
    pub fn sites(&self) -> Vec<FaultSite> {
        if let Some(sites) = &self.sites_override {
            return sites.clone();
        }
        let reference = Leon3::new(self.classification_config());
        let all = match &self.attack_targets {
            Some(targets) => targeted_sites(&reference, targets),
            None => fault_sites(&reference, self.target),
        };
        match self.sample {
            Some((n, seed)) => sample_sites(&all, n, seed),
            None => all,
        }
    }

    /// Run the campaign on `threads` worker threads and aggregate.
    ///
    /// The result's [`CampaignResult::stats`] reports what the configured
    /// [`Execution`] engine actually simulated; the records themselves are
    /// engine-independent.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`Campaign::try_run`]
    /// for the structured-error contract) or the golden run does not
    /// halt.
    pub fn run(&self, threads: usize) -> CampaignResult {
        self.try_run(threads)
            .unwrap_or_else(|e| panic!("invalid campaign: {e}"))
    }

    /// Run the campaign, reporting configuration mistakes as
    /// [`CampaignError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Fails on zero threads, an empty fault-model list, an empty fault
    /// list, or an injection fraction outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt (a workload bug, not a
    /// configuration error).
    pub fn try_run(&self, threads: usize) -> Result<CampaignResult, CampaignError> {
        self.run_listed(threads, false, JournalMode::None, None)
    }

    /// Capture this campaign's golden run once for reuse across many
    /// campaigns over the same workload (e.g. a service sweeping fault
    /// kinds or instants over one benchmark). The preparation pins the
    /// workload image and the classification platform configuration;
    /// [`Campaign::try_run_prepared`] refuses a mismatch.
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run`] validation conditions.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn prepare(&self) -> Result<PreparedWorkload, CampaignError> {
        self.validate(1)?;
        let config = self.classification_config();
        Ok(PreparedWorkload {
            workload: workload_hash(&self.program),
            config: format!("{config:?}"),
            golden: GoldenRun::capture(&self.program, &config),
        })
    }

    /// [`Campaign::try_run`] reusing a [`PreparedWorkload`]'s golden run
    /// instead of re-capturing it. The result is byte-identical to
    /// [`Campaign::try_run`] — golden capture is never billed in
    /// [`CampaignStats`], so only wall-clock time changes.
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run`] conditions, or
    /// [`CampaignError::PreparedMismatch`] if `prepared` was built for a
    /// different workload or platform configuration.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn try_run_prepared(
        &self,
        threads: usize,
        prepared: &PreparedWorkload,
    ) -> Result<CampaignResult, CampaignError> {
        self.run_listed(threads, false, JournalMode::None, Some(prepared))
    }

    /// Dual-point variant for ISO 26262 latent-fault analysis: the sampled
    /// site list is chained into overlapping pairs `(s0,s1), (s1,s2), …`
    /// and both faults of a pair are present simultaneously. The record's
    /// `site` is the pair's first site.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`Campaign::try_run_pairs`]) or the golden run does not halt.
    pub fn run_pairs(&self, threads: usize) -> CampaignResult {
        self.try_run_pairs(threads)
            .unwrap_or_else(|e| panic!("invalid campaign: {e}"))
    }

    /// Dual-point variant of [`Campaign::try_run`].
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run`] conditions, or fewer than two
    /// sites in the fault list.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn try_run_pairs(&self, threads: usize) -> Result<CampaignResult, CampaignError> {
        self.run_listed(threads, true, JournalMode::None, None)
    }

    /// Run the campaign with a write-ahead result journal at `path`: the
    /// file is created (truncated) with a validating header, and every
    /// completed job appends one flushed JSONL line *before* its record is
    /// published. A killed process loses at most the job lines in flight;
    /// [`Campaign::resume`] picks the campaign back up.
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run`] conditions or journal I/O
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn run_journaled(
        &self,
        threads: usize,
        path: &Path,
    ) -> Result<CampaignResult, CampaignError> {
        self.run_listed(threads, false, JournalMode::Create(path), None)
    }

    /// Resume a campaign from the write-ahead journal at `path`: the
    /// header is validated against this campaign (workload hash,
    /// configuration fingerprint, job universe, resolved injection
    /// instant), completed jobs are replayed from the journal, and only
    /// the remaining jobs are simulated — appending to the same journal,
    /// so a resumed journal ends complete. The reconstituted
    /// [`CampaignResult`] is bit-identical to an uninterrupted
    /// [`Campaign::run_journaled`] (records, latencies, and stats, modulo
    /// [`CampaignStats::resumed`]). A torn final line (the kill landed
    /// mid-append) is dropped and its job re-run.
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run`] conditions, journal I/O or
    /// parse errors, or a journal that does not belong to this campaign.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn resume(&self, threads: usize, path: &Path) -> Result<CampaignResult, CampaignError> {
        self.run_listed(threads, false, JournalMode::Resume(path), None)
    }

    /// Run the same fault list at several injection instants as **one**
    /// campaign sharing one golden run and one checkpoint pool, returning
    /// one result per instant (in order). Under [`Execution::Fork`] the
    /// pool holds a checkpoint at (or, for a thinned dense sweep, an
    /// ancestor of) every instant's boundary, so **no** job falls back to
    /// full re-execution — any (site, kind, instant) forks or replays a
    /// bounded gap, and cold sites still skip simulation entirely. The
    /// pool-construction pass is billed to the first instant's stats.
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run`] conditions, an empty `instants`
    /// list, or any fraction outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn try_run_multi(
        &self,
        threads: usize,
        instants: &[InjectionInstant],
    ) -> Result<Vec<CampaignResult>, CampaignError> {
        self.run_multi(threads, instants, JournalMode::None)
    }

    /// Multi-instant variant of [`Campaign::run_journaled`]: one
    /// write-ahead journal covers the whole sweep, with the instant list
    /// pinned in the header (`instants`, `instants_hash`).
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run_multi`] conditions or journal I/O
    /// errors.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn run_multi_journaled(
        &self,
        threads: usize,
        instants: &[InjectionInstant],
        path: &Path,
    ) -> Result<Vec<CampaignResult>, CampaignError> {
        self.run_multi(threads, instants, JournalMode::Create(path))
    }

    /// Resume a multi-instant sweep from its write-ahead journal. The
    /// header must match this campaign *and* this instant list — a sweep
    /// over different instants, or a campaign with a different
    /// [`Campaign::with_checkpoint_stride`], is refused with
    /// [`JournalError::HeaderMismatch`].
    ///
    /// # Errors
    ///
    /// Fails on the [`Campaign::try_run_multi`] conditions, journal I/O
    /// or parse errors, or a journal that does not belong to this sweep.
    ///
    /// # Panics
    ///
    /// Panics if the golden run does not halt.
    pub fn resume_multi(
        &self,
        threads: usize,
        instants: &[InjectionInstant],
        path: &Path,
    ) -> Result<Vec<CampaignResult>, CampaignError> {
        self.run_multi(threads, instants, JournalMode::Resume(path))
    }

    fn run_multi(
        &self,
        threads: usize,
        instants: &[InjectionInstant],
        journal: JournalMode<'_>,
    ) -> Result<Vec<CampaignResult>, CampaignError> {
        self.validate(threads)?;
        if instants.is_empty() {
            return Err(CampaignError::NoInstants);
        }
        let config = self.classification_config();
        let golden = GoldenRun::capture(&self.program, &config);
        self.validate_watchdog(&golden)?;
        let cycles = instants
            .iter()
            .map(|&instant| resolve_instant(instant, &golden))
            .collect::<Result<Vec<u64>, CampaignError>>()?;
        let sites = self.sites();
        if sites.is_empty() {
            return Err(CampaignError::NoFaultSites);
        }
        let mut jobs = Vec::with_capacity(cycles.len() * sites.len() * self.kinds.len());
        for (group, &injection_cycle) in cycles.iter().enumerate() {
            for &site in &sites {
                for &kind in &self.kinds {
                    jobs.push(Job {
                        sites: [site, site],
                        n_sites: 1,
                        kind,
                        injection_cycle,
                        group,
                    });
                }
            }
        }
        let jobs = self.apply_shard(jobs);
        let plan = self.static_plan(&jobs);
        let header = self.header(false, jobs.len(), &cycles, &golden);
        let (writer, prefilled, _) = open_journal(&header, &jobs, journal)?;
        // Per-instant resumed counts (the campaign-level `resumed` of the
        // single-instant path, split by group).
        let mut resumed_by_group = vec![0usize; instants.len()];
        for (job, slot) in jobs.iter().zip(&prefilled) {
            resumed_by_group[job.group] += usize::from(slot.is_some());
        }
        let pool = self.build_pool(&config, &golden, &cycles);
        let per_job = self.execute_jobs(
            threads,
            &config,
            &golden,
            pool.as_ref(),
            &jobs,
            writer,
            prefilled,
            plan.as_deref(),
        )?;
        if let Some(plan) = &plan {
            self.run_static_audit(&config, &golden, &jobs, plan, &per_job)?;
        }
        let mut grouped: Vec<(Vec<FaultRecord>, CampaignStats)> = resumed_by_group
            .iter()
            .map(|&resumed| {
                (
                    Vec::new(),
                    CampaignStats {
                        golden_cycles: golden.cycles,
                        resumed,
                        ..CampaignStats::default()
                    },
                )
            })
            .collect();
        for (job, (record, delta)) in jobs.iter().zip(per_job) {
            let (records, stats) = &mut grouped[job.group];
            records.push(record);
            stats.jobs += 1;
            stats.merge(&delta);
        }
        if let Some(pool) = &pool {
            // The pool-construction pass is simulated once; bill it to
            // the first instant.
            grouped[0].1.prefix_cycles = pool.build_cycles();
            grouped[0].1.cycles_simulated += pool.build_cycles();
            grouped[0].1.checkpoints_taken = pool.len();
            grouped[0].1.checkpoint_bytes = pool.bytes();
        }
        if let Some(plan) = &plan {
            for (group, entry) in grouped.iter_mut().enumerate() {
                entry.1.collapsed_classes = collapsed_class_count(plan, &jobs, group);
            }
        }
        Ok(grouped
            .into_iter()
            .map(|(records, stats)| CampaignResult::with_stats(records, stats))
            .collect())
    }

    /// Reject configurations that previously died as config-time panics.
    fn validate(&self, threads: usize) -> Result<(), CampaignError> {
        if threads == 0 {
            return Err(CampaignError::ZeroThreads);
        }
        if self.kinds.is_empty() {
            return Err(CampaignError::NoFaultKinds);
        }
        for &kind in &self.kinds {
            if let Err(reason) = kind.validate() {
                return Err(CampaignError::InvalidFaultKind { reason });
            }
        }
        if let InjectionInstant::Fraction(f) = self.injection {
            if !(0.0..=1.0).contains(&f) {
                return Err(CampaignError::InjectionPastEnd { fraction: f });
            }
        }
        if self.safety.lockstep_window == Some(0) {
            return Err(CampaignError::ZeroLockstepWindow);
        }
        if self.checkpoint_stride == Some(0) {
            return Err(CampaignError::ZeroCheckpointStride);
        }
        if let Some((index, count)) = self.shard {
            if count == 0 || index >= count {
                return Err(CampaignError::BadShard { index, count });
            }
        }
        if self.static_audit.is_some() && !self.static_analysis {
            return Err(CampaignError::AuditWithoutStaticAnalysis);
        }
        Ok(())
    }

    /// Keep only this shard's stride of the planned job list (identity
    /// when the campaign is unsharded).
    fn apply_shard(&self, jobs: Vec<Job>) -> Vec<Job> {
        match self.shard {
            None => jobs,
            Some((index, count)) => jobs
                .into_iter()
                .enumerate()
                .filter(|(j, _)| j % count as usize == index as usize)
                .map(|(_, job)| job)
                .collect(),
        }
    }

    /// Reject a watchdog timeout that would fire on the fault-free run.
    /// Needs the golden run, so it cannot live in [`Campaign::validate`].
    fn validate_watchdog(&self, golden: &GoldenRun) -> Result<(), CampaignError> {
        if let Some(timeout) = self.safety.watchdog_cycles {
            if timeout <= golden.max_write_gap {
                return Err(CampaignError::WatchdogTooTight {
                    timeout_cycles: timeout,
                    golden_max_gap: golden.max_write_gap,
                });
            }
        }
        Ok(())
    }

    /// The single-instant run path shared by `try_run`, `try_run_pairs`,
    /// `run_journaled`, `resume` and `try_run_prepared`. When `prepared`
    /// is given its golden run is reused instead of re-captured; the
    /// result is byte-identical either way, since golden capture is never
    /// billed in [`CampaignStats`].
    fn run_listed(
        &self,
        threads: usize,
        pairs: bool,
        journal: JournalMode<'_>,
        prepared: Option<&PreparedWorkload>,
    ) -> Result<CampaignResult, CampaignError> {
        self.validate(threads)?;
        let config = self.classification_config();
        let captured;
        let golden = match prepared {
            Some(p) => {
                p.check(&self.program, &config)?;
                &p.golden
            }
            None => {
                captured = GoldenRun::capture(&self.program, &config);
                &captured
            }
        };
        self.validate_watchdog(golden)?;
        if pairs && self.static_analysis {
            return Err(CampaignError::StaticWithPairs);
        }
        let injection_cycle = resolve_instant(self.injection, golden)?;
        let sites = self.sites();
        if sites.is_empty() {
            return Err(CampaignError::NoFaultSites);
        }
        let jobs = self.plan_jobs(&sites, pairs, injection_cycle)?;
        let plan = self.static_plan(&jobs);
        let header = self.header(pairs, jobs.len(), &[injection_cycle], golden);
        let (writer, prefilled, resumed) = open_journal(&header, &jobs, journal)?;
        let pool = self.build_pool(&config, golden, &[injection_cycle]);
        let per_job = self.execute_jobs(
            threads,
            &config,
            golden,
            pool.as_ref(),
            &jobs,
            writer,
            prefilled,
            plan.as_deref(),
        )?;
        if let Some(plan) = &plan {
            self.run_static_audit(&config, golden, &jobs, plan, &per_job)?;
        }
        let mut stats = CampaignStats {
            jobs: jobs.len(),
            golden_cycles: golden.cycles,
            resumed,
            ..CampaignStats::default()
        };
        if let Some(plan) = &plan {
            stats.collapsed_classes = collapsed_class_count(plan, &jobs, 0);
        }
        if let Some(pool) = &pool {
            // The checkpoint pool is simulated exactly once.
            stats.prefix_cycles = pool.build_cycles();
            stats.cycles_simulated = pool.build_cycles();
            stats.checkpoints_taken = pool.len();
            stats.checkpoint_bytes = pool.bytes();
        }
        let mut records = Vec::with_capacity(per_job.len());
        for (record, delta) in per_job {
            stats.merge(&delta);
            records.push(record);
        }
        Ok(CampaignResult::with_stats(records, stats))
    }

    /// The journal header identifying this campaign over `cycles` (one
    /// entry per resolved instant; single-instant paths pass one).
    fn header(&self, pairs: bool, jobs: usize, cycles: &[u64], golden: &GoldenRun) -> Header {
        let mut instants_hash = FNV_OFFSET;
        for &c in cycles {
            instants_hash = fnv1a64(instants_hash, &c.to_be_bytes());
        }
        Header {
            workload: workload_hash(&self.program),
            fingerprint: self.config_fingerprint(pairs),
            jobs,
            injection_cycle: cycles[0],
            golden_cycles: golden.cycles,
            instants: cycles.len(),
            instants_hash,
            checkpoint_stride: self.checkpoint_stride.unwrap_or(0),
            kinds: self.kinds.iter().map(|&k| kind_to_token(k)).collect(),
        }
    }

    /// Expand the fault list into the campaign's job universe.
    fn plan_jobs(
        &self,
        sites: &[FaultSite],
        pairs: bool,
        injection_cycle: u64,
    ) -> Result<Vec<Job>, CampaignError> {
        let jobs: Vec<Job> = if pairs {
            if sites.len() < 2 {
                return Err(CampaignError::NotEnoughSitesForPairs {
                    available: sites.len(),
                });
            }
            sites
                .windows(2)
                .flat_map(|w| {
                    self.kinds.iter().map(move |&kind| Job {
                        sites: [w[0], w[1]],
                        n_sites: 2,
                        kind,
                        injection_cycle,
                        group: 0,
                    })
                })
                .collect()
        } else {
            sites
                .iter()
                .flat_map(|&site| {
                    self.kinds.iter().map(move |&kind| Job {
                        sites: [site, site],
                        n_sites: 1,
                        kind,
                        injection_cycle,
                        group: 0,
                    })
                })
                .collect()
        };
        Ok(self.apply_shard(jobs))
    }

    /// Hash of everything that determines the job universe and its
    /// records: used to refuse resuming a journal of a different
    /// campaign. The wall-clock deadline is deliberately excluded — it
    /// cannot change which jobs exist or what a completed job recorded.
    /// The shard coordinates are *included*: a shard's journal holds only
    /// that shard's jobs, so another shard must refuse it.
    fn config_fingerprint(&self, pairs: bool) -> u64 {
        let mut s = String::new();
        let _ = write!(
            s,
            "{:?}|{:?}|{:?}|{:?}|targets={:?}|{:?}|{:?}|{:?}|pairs={pairs}|{:?}|shard={:?}|stride={:?}|static={:?}|audit={:?}",
            self.target,
            self.kinds,
            self.sample,
            self.sites_override,
            self.attack_targets,
            self.injection,
            self.execution,
            self.config,
            self.safety,
            self.shard,
            self.checkpoint_stride,
            self.static_analysis,
            self.static_audit,
        );
        fnv1a64(FNV_OFFSET, s.as_bytes())
    }

    /// The campaign's public identity: `workload_hash-config_fingerprint`,
    /// both as 16-digit hex — the same two hashes the journal header
    /// carries, rendered as one string. The service's result cache and
    /// the shard merge key on it. Computed with the shard coordinates
    /// cleared, so every shard of one campaign (and the unsharded run)
    /// shares one fingerprint; like the journal fingerprint, the
    /// wall-clock deadline is excluded.
    pub fn fingerprint(&self) -> String {
        let mut identity = self.clone();
        identity.shard = None;
        format!(
            "{:016x}-{:016x}",
            workload_hash(&self.program),
            identity.config_fingerprint(false)
        )
    }

    /// The platform configuration used for classification runs. Bus-read
    /// tracing is forced off: outcomes are classified against the off-core
    /// write stream, and the divergence cursor indexes writes. CMEM parity
    /// follows the safety configuration, so the parity nets exist exactly
    /// when the mechanism is modelled.
    fn classification_config(&self) -> Leon3Config {
        let mut config = self.config.clone();
        config.trace_reads = false;
        config.cmem_parity = self.safety.parity;
        config
    }

    /// Simulate the golden trajectory once (fork engine only), dropping a
    /// [`Checkpoint`] at the reset state, at every requested injection
    /// boundary, and — under [`Campaign::with_checkpoint_stride`] — every
    /// `stride` cycles up to the deepest boundary. Each checkpoint sits
    /// at the last instruction boundary whose cycle count is strictly
    /// below its target cycle, so the activation tick — and an open-line
    /// fault's held value — are bit-identical to a run from reset.
    /// Candidates are deduplicated and, beyond [`MAX_POOL_CHECKPOINTS`],
    /// thinned evenly (always keeping the reset state and the deepest
    /// boundary) so pool memory stays bounded; a job whose exact boundary
    /// was thinned away replays the gap from the nearest surviving
    /// ancestor. Returns `None` under [`Execution::FullReexecution`].
    fn build_pool(
        &self,
        config: &Leon3Config,
        golden: &GoldenRun,
        instant_cycles: &[u64],
    ) -> Option<CheckpointPool> {
        if self.execution != Execution::Fork {
            return None;
        }
        let mut boundaries: Vec<u64> = vec![0];
        let mut deepest_cycle = 0u64;
        for &cycle in instant_cycles {
            boundaries.push(golden.prefix_steps(cycle) as u64);
            deepest_cycle = deepest_cycle.max(cycle);
        }
        if let Some(stride) = self.checkpoint_stride {
            let mut at = stride;
            while at <= deepest_cycle {
                boundaries.push(golden.prefix_steps(at) as u64);
                at += stride;
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        if boundaries.len() > MAX_POOL_CHECKPOINTS {
            let last = boundaries.len() - 1;
            let mut kept: Vec<u64> = (0..MAX_POOL_CHECKPOINTS)
                .map(|i| boundaries[i * last / (MAX_POOL_CHECKPOINTS - 1)])
                .collect();
            kept.dedup();
            boundaries = kept;
        }
        // One monotone sweep: each checkpoint continues stepping from the
        // previous one, so pool construction costs the deepest boundary
        // once, not the sum of all boundaries.
        let mut cpu = Leon3::new(config.clone());
        cpu.load(&self.program);
        let mut stepped = 0u64;
        let mut checkpoints = Vec::with_capacity(boundaries.len());
        let mut bytes = 0u64;
        for &steps in &boundaries {
            while stepped < steps {
                cpu.step();
                stepped += 1;
            }
            let snapshot = cpu.snapshot();
            bytes += snapshot.approx_bytes() as u64;
            checkpoints.push(Checkpoint { snapshot, steps });
        }
        Some(CheckpointPool { checkpoints, bytes })
    }

    /// Run `jobs` on `threads` workers, honouring prefilled (resumed)
    /// slots and appending each completed job to the journal before its
    /// record is published. With a static `plan`, the workers simulate
    /// only the [`StaticVerdict::Simulate`] jobs; the pruned and
    /// collapsed records are synthesised on the main thread afterwards
    /// (so a collapsed member always finds its representative's slot
    /// filled) and journaled in that order — representative entries
    /// strictly precede member entries, keeping resume torn-line-safe.
    #[allow(clippy::too_many_arguments)]
    fn execute_jobs(
        &self,
        threads: usize,
        config: &Leon3Config,
        golden: &GoldenRun,
        pool: Option<&CheckpointPool>,
        jobs: &[Job],
        journal: Option<Journal>,
        prefilled: Vec<Option<(FaultRecord, CampaignStats)>>,
        plan: Option<&[StaticVerdict]>,
    ) -> Result<Vec<(FaultRecord, CampaignStats)>, CampaignError> {
        let ctx = JobContext {
            program: &self.program,
            golden,
            pool,
            deadline: self.deadline,
            safety: self.safety,
        };
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Which slots were reconstituted from the journal; read-only, so
        // workers can skip them without taking the lock.
        let done: Vec<bool> = prefilled.iter().map(Option::is_some).collect();
        let shared = std::sync::Mutex::new(SharedState {
            slots: prefilled,
            journal,
            journal_error: None,
        });
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    // One model instance per worker, reset or restored
                    // between runs.
                    let mut cpu = Leon3::new(config.clone());
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= jobs.len() {
                            break;
                        }
                        if done[idx] {
                            continue;
                        }
                        if plan.is_some_and(|p| p[idx] != StaticVerdict::Simulate) {
                            continue;
                        }
                        let job = &jobs[idx];
                        let (outcome, detection, mut delta) = run_job_isolated(&mut cpu, &ctx, job);
                        let record = FaultRecord {
                            site: job.sites[0],
                            kind: job.kind,
                            outcome,
                            activated: job
                                .sites()
                                .iter()
                                .any(|s| ctx.golden.net_exercised_from(s.net, job.injection_cycle)),
                            detection,
                            pruned_by: None,
                        };
                        delta.count_bucket(&record);
                        // Jobs are panic-isolated, so a poisoned lock can
                        // only mean a panic *outside* a job (e.g. an OOM
                        // abort path); every update below is
                        // whole-record, so recovery is safe.
                        let mut guard = shared.lock().unwrap_or_else(PoisonError::into_inner);
                        if guard.journal_error.is_none() {
                            if let Some(journal) = guard.journal.as_mut() {
                                // Write-ahead: the line is flushed before
                                // the record is published in memory.
                                if let Err(e) = journal.append(&Entry {
                                    job: idx,
                                    record: record.clone(),
                                    delta,
                                }) {
                                    guard.journal_error = Some(e);
                                    guard.journal = None;
                                }
                            }
                        }
                        guard.slots[idx] = Some((record, delta));
                    }
                });
            }
        });
        let mut shared = shared.into_inner().unwrap_or_else(PoisonError::into_inner);
        if let Some(e) = shared.journal_error {
            return Err(e.into());
        }
        if let Some(plan) = plan {
            for idx in 0..jobs.len() {
                if shared.slots[idx].is_some() {
                    // Simulated by a worker, or resumed from the journal.
                    continue;
                }
                let job = &jobs[idx];
                let (record, delta) = match plan[idx] {
                    StaticVerdict::Simulate => {
                        unreachable!("unpruned slots are filled by the workers")
                    }
                    StaticVerdict::Prune => synthesize_pruned(golden, job),
                    StaticVerdict::Member { rep } => {
                        let rep_record = shared.slots[rep]
                            .as_ref()
                            .expect("class representatives are never pruned")
                            .0
                            .clone();
                        synthesize_member(golden, job, &rep_record)
                    }
                };
                if let Some(journal) = shared.journal.as_mut() {
                    journal.append(&Entry {
                        job: idx,
                        record: record.clone(),
                        delta,
                    })?;
                }
                shared.slots[idx] = Some((record, delta));
            }
        }
        Ok(shared
            .slots
            .into_iter()
            // Invariant: the atomic counter hands every index to exactly
            // one worker, prefilled indices arrive occupied, and the
            // synthesis pass above fills every pruned/collapsed slot — so
            // every slot is filled once the scope joins.
            .map(|slot| slot.expect("all jobs ran"))
            .collect())
    }

    /// Compute the per-job static verdicts, or `None` when the analyzer
    /// is disabled. Deterministic in the (post-shard) job list: the same
    /// campaign resumes to the same plan. Collapsing is shard-local — a
    /// member is collapsed only onto a representative job present (and
    /// simulated) in this shard's own list, so no record ever depends on
    /// another shard's results.
    fn static_plan(&self, jobs: &[Job]) -> Option<Vec<StaticVerdict>> {
        if !self.static_analysis {
            return None;
        }
        let sa = StaticAnalysis::for_config(&self.classification_config());
        let mut verdicts = Vec::with_capacity(jobs.len());
        // (root net, bit, kind, group) -> index of the simulated job on
        // the class-root net that members of the class copy from.
        let mut reps: std::collections::HashMap<(u32, u8, FaultKind, usize), usize> =
            std::collections::HashMap::new();
        for (idx, job) in jobs.iter().enumerate() {
            debug_assert_eq!(job.n_sites, 1, "pairs are rejected before planning");
            let site = job.sites[0];
            if sa.prunes(site.net, job.kind) {
                verdicts.push(StaticVerdict::Prune);
                continue;
            }
            verdicts.push(StaticVerdict::Simulate);
            if StaticAnalysis::collapsible(job.kind) && sa.class_root(site.net) == site.net {
                reps.entry((site.net.raw(), site.bit, job.kind, job.group))
                    .or_insert(idx);
            }
        }
        for (idx, job) in jobs.iter().enumerate() {
            if verdicts[idx] != StaticVerdict::Simulate || !StaticAnalysis::collapsible(job.kind) {
                continue;
            }
            let site = job.sites[0];
            let root = sa.class_root(site.net);
            if root == site.net {
                continue;
            }
            if let Some(&rep) = reps.get(&(root.raw(), site.bit, job.kind, job.group)) {
                verdicts[idx] = StaticVerdict::Member { rep };
            }
        }
        Some(verdicts)
    }

    /// Re-simulate a seeded sample of pruned/collapsed jobs from reset
    /// (no checkpoint shortcuts, no activation skip) and fail if any
    /// contradicts its synthesised record. Verification work: not billed
    /// in [`CampaignStats`] and run without the wall-clock deadline so
    /// the verdict stays host-independent.
    fn run_static_audit(
        &self,
        config: &Leon3Config,
        golden: &GoldenRun,
        jobs: &[Job],
        plan: &[StaticVerdict],
        per_job: &[(FaultRecord, CampaignStats)],
    ) -> Result<(), CampaignError> {
        let Some((n, seed)) = self.static_audit else {
            return Ok(());
        };
        let mut candidates: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, v)| !matches!(v, StaticVerdict::Simulate))
            .map(|(i, _)| i)
            .collect();
        let take = n.min(candidates.len());
        let mut rng = SplitMix64::new(seed);
        for i in 0..take {
            let j = i + rng.gen_range((candidates.len() - i) as u64) as usize;
            candidates.swap(i, j);
        }
        let ctx = JobContext {
            program: &self.program,
            golden,
            pool: None,
            deadline: None,
            safety: self.safety,
        };
        let mut cpu = Leon3::new(config.clone());
        for &idx in &candidates[..take] {
            let mut scratch = CampaignStats::default();
            let (outcome, detection) = run_job(&mut cpu, &ctx, &mut scratch, &jobs[idx]);
            let synthesised = &per_job[idx].0;
            if outcome != synthesised.outcome || detection != synthesised.detection {
                return Err(CampaignError::StaticAuditFailed {
                    job: idx,
                    detail: format!(
                        "analyzer recorded {:?}/{:?}, full re-simulation produced {:?}/{:?}",
                        synthesised.outcome, synthesised.detection, outcome, detection
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A workload's golden run captured once for reuse across campaigns (see
/// [`Campaign::prepare`]). Cheap to share behind an `Arc`: campaigns
/// borrow it read-only.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// Hash of the workload image this golden run belongs to.
    workload: u64,
    /// Debug rendering of the classification platform configuration —
    /// the golden trajectory depends on every field of it.
    config: String,
    golden: GoldenRun,
}

impl PreparedWorkload {
    /// The workload-image hash this preparation pins.
    pub fn workload_hash(&self) -> u64 {
        self.workload
    }

    /// Refuse reuse across a different workload or platform configuration.
    fn check(&self, program: &Program, config: &Leon3Config) -> Result<(), CampaignError> {
        if self.workload != workload_hash(program) {
            return Err(CampaignError::PreparedMismatch { field: "workload" });
        }
        if self.config != format!("{config:?}") {
            return Err(CampaignError::PreparedMismatch { field: "config" });
        }
        Ok(())
    }
}

/// Where `run_listed`/`run_multi` journal to, if anywhere.
enum JournalMode<'a> {
    None,
    Create(&'a Path),
    Resume(&'a Path),
}

/// Open (or resume) the journal for `jobs`: the writer, the prefilled
/// result slots, and how many jobs were reconstituted from disk.
#[allow(clippy::type_complexity)]
fn open_journal(
    expected: &Header,
    jobs: &[Job],
    mode: JournalMode<'_>,
) -> Result<
    (
        Option<Journal>,
        Vec<Option<(FaultRecord, CampaignStats)>>,
        usize,
    ),
    CampaignError,
> {
    match mode {
        JournalMode::None => Ok((None, vec![None; jobs.len()], 0)),
        JournalMode::Create(path) => Ok((
            Some(Journal::create(path, expected)?),
            vec![None; jobs.len()],
            0,
        )),
        JournalMode::Resume(path) => {
            let (found, entries, truncated) = journal::read(path)?;
            check_header(expected, &found)?;
            let mut prefilled: Vec<Option<(FaultRecord, CampaignStats)>> = vec![None; jobs.len()];
            let mut resumed = 0;
            for entry in &entries {
                let job = jobs.get(entry.job).ok_or(JournalError::JobOutOfRange {
                    job: entry.job,
                    jobs: jobs.len(),
                })?;
                if entry.record.site != job.sites[0] || entry.record.kind != job.kind {
                    return Err(JournalError::JobMismatch { job: entry.job }.into());
                }
                if prefilled[entry.job].is_none() {
                    resumed += 1;
                }
                prefilled[entry.job] = Some((entry.record.clone(), entry.delta));
            }
            let writer = if truncated {
                // The kill landed mid-append, so the file ends in a
                // torn fragment with no newline — appending onto it
                // would corrupt the next line. Rewrite the validated
                // prefix (serialization is canonical) and go on from
                // there.
                let mut journal = Journal::create(path, expected)?;
                for entry in &entries {
                    journal.append(entry)?;
                }
                journal
            } else {
                Journal::open_append(path)?
            };
            Ok((Some(writer), prefilled, resumed))
        }
    }
}

/// Worker-shared mutable state, updated whole-record under one lock.
struct SharedState {
    slots: Vec<Option<(FaultRecord, CampaignStats)>>,
    journal: Option<Journal>,
    journal_error: Option<JournalError>,
}

/// Resolve an instant against the golden run, rejecting fractions outside
/// the run.
fn resolve_instant(instant: InjectionInstant, golden: &GoldenRun) -> Result<u64, CampaignError> {
    match instant {
        InjectionInstant::Cycle(c) => Ok(c),
        InjectionInstant::Fraction(f) if (0.0..=1.0).contains(&f) => {
            Ok((golden.cycles as f64 * f) as u64)
        }
        InjectionInstant::Fraction(f) => Err(CampaignError::InjectionPastEnd { fraction: f }),
    }
}

/// Hash of the workload image (entry + segments), for journal validation.
fn workload_hash(program: &Program) -> u64 {
    let mut h = fnv1a64(FNV_OFFSET, &program.entry.to_be_bytes());
    for seg in &program.segments {
        h = fnv1a64(h, &seg.base.to_be_bytes());
        h = fnv1a64(h, &(seg.bytes.len() as u64).to_be_bytes());
        h = fnv1a64(h, &seg.bytes);
    }
    h
}

/// Field-by-field header validation with a precise error. The opaque
/// configuration fingerprint is checked *after* the named structural
/// fields — including the fault-kind token list with its time-varying
/// parameters — so a mismatch one of them can explain (a different
/// checkpoint stride, instant list, fault schedule or job universe) is
/// reported by name.
fn check_header(expected: &Header, found: &Header) -> Result<(), JournalError> {
    let structural: [(&'static str, u64, u64); 5] = [
        ("workload", expected.workload, found.workload),
        ("jobs", expected.jobs as u64, found.jobs as u64),
        ("instants", expected.instants as u64, found.instants as u64),
        ("instants_hash", expected.instants_hash, found.instants_hash),
        (
            "checkpoint_stride",
            expected.checkpoint_stride,
            found.checkpoint_stride,
        ),
    ];
    for (field, want, got) in structural {
        if want != got {
            return Err(JournalError::HeaderMismatch {
                field,
                expected: want.to_string(),
                found: got.to_string(),
            });
        }
    }
    check_header_kinds(&expected.kinds, &found.kinds)?;
    let trailing: [(&'static str, u64, u64); 3] = [
        ("fingerprint", expected.fingerprint, found.fingerprint),
        (
            "injection_cycle",
            expected.injection_cycle,
            found.injection_cycle,
        ),
        ("golden_cycles", expected.golden_cycles, found.golden_cycles),
    ];
    for (field, want, got) in trailing {
        if want != got {
            return Err(JournalError::HeaderMismatch {
                field,
                expected: want.to_string(),
                found: got.to_string(),
            });
        }
    }
    Ok(())
}

/// Compare the header's fault-kind token lists, naming the first
/// mismatched *parameter* field (e.g. `kinds.period`) when two kinds
/// share a base name and differ only in a time-varying parameter, and
/// the `kinds` list itself otherwise.
fn check_header_kinds(expected: &[String], found: &[String]) -> Result<(), JournalError> {
    let list_mismatch = || JournalError::HeaderMismatch {
        field: "kinds",
        expected: expected.join(","),
        found: found.join(","),
    };
    if expected.len() != found.len() {
        return Err(list_mismatch());
    }
    for (want, got) in expected.iter().zip(found) {
        if want == got {
            continue;
        }
        let split = |token: &str| -> (String, Vec<(String, String)>) {
            match token.split_once('(') {
                Some((base, rest)) => (
                    base.to_string(),
                    rest.trim_end_matches(')')
                        .split(',')
                        .filter_map(|pair| {
                            pair.split_once('=')
                                .map(|(k, v)| (k.to_string(), v.to_string()))
                        })
                        .collect(),
                ),
                None => (token.to_string(), Vec::new()),
            }
        };
        let (want_base, want_params) = split(want);
        let (got_base, got_params) = split(got);
        if want_base != got_base || want_params.len() != got_params.len() {
            return Err(list_mismatch());
        }
        for ((wk, wv), (gk, gv)) in want_params.iter().zip(&got_params) {
            if wk != gk {
                return Err(list_mismatch());
            }
            if wv != gv {
                let field = match wk.as_str() {
                    "level" => "kinds.level",
                    "period" => "kinds.period",
                    "duty" => "kinds.duty",
                    "phase" => "kinds.phase",
                    "flips" => "kinds.flips",
                    "spacing" => "kinds.spacing",
                    _ => "kinds",
                };
                return Err(JournalError::HeaderMismatch {
                    field,
                    expected: wv.clone(),
                    found: gv.clone(),
                });
            }
        }
        return Err(list_mismatch());
    }
    Ok(())
}

/// The static analyzer's verdict for one planned job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StaticVerdict {
    /// No static argument applies: simulate normally.
    Simulate,
    /// Provably benign (unobservable net, or a transient flip on a
    /// transient-safe latch): record `NoEffect` without simulation.
    Prune,
    /// Stuck-at equivalence-class member: copy the outcome of the
    /// representative job at this index of the same (post-shard) list.
    Member { rep: usize },
}

/// The record and cost delta of a statically pruned job. The `activated`
/// flag is computed honestly from the golden trace — a pruned fault on a
/// hot-but-unobservable net is *safe*, not *latent* — so the record is
/// bit-identical (modulo provenance) to what a full simulation would
/// produce, which is exactly what the audit mode re-checks.
fn synthesize_pruned(golden: &GoldenRun, job: &Job) -> (FaultRecord, CampaignStats) {
    let record = FaultRecord {
        site: job.sites[0],
        kind: job.kind,
        outcome: FaultOutcome::NoEffect,
        activated: golden.net_exercised_from(job.sites[0].net, job.injection_cycle),
        detection: Detection::Undetected,
        pruned_by: Some(PrunedBy::Static),
    };
    let mut delta = CampaignStats {
        statically_pruned: 1,
        cycles_avoided: golden.cycles,
        ..CampaignStats::default()
    };
    delta.count_bucket(&record);
    (record, delta)
}

/// The record and cost delta of a collapsed equivalence-class member:
/// outcome and detection are copied from the simulated representative
/// (the runs are behaviourally identical by the stuck-at equivalence
/// argument); the `activated` flag is the member's own.
fn synthesize_member(
    golden: &GoldenRun,
    job: &Job,
    rep: &FaultRecord,
) -> (FaultRecord, CampaignStats) {
    let record = FaultRecord {
        site: job.sites[0],
        kind: job.kind,
        outcome: rep.outcome.clone(),
        activated: golden.net_exercised_from(job.sites[0].net, job.injection_cycle),
        detection: rep.detection,
        pruned_by: Some(PrunedBy::Collapsed),
    };
    let mut delta = CampaignStats {
        statically_pruned: 1,
        cycles_avoided: golden.cycles,
        ..CampaignStats::default()
    };
    delta.count_bucket(&record);
    (record, delta)
}

/// How many distinct representatives the members of `group` collapse
/// onto — the campaign-level [`CampaignStats::collapsed_classes`].
fn collapsed_class_count(plan: &[StaticVerdict], jobs: &[Job], group: usize) -> usize {
    let mut reps = std::collections::BTreeSet::new();
    for (verdict, job) in plan.iter().zip(jobs) {
        if job.group == group {
            if let StaticVerdict::Member { rep } = *verdict {
                reps.insert(rep);
            }
        }
    }
    reps.len()
}

/// One unit of campaign work: one or two simultaneous faults of one model
/// at one injection instant.
#[derive(Clone, Copy)]
struct Job {
    sites: [FaultSite; 2],
    n_sites: usize,
    kind: FaultKind,
    injection_cycle: u64,
    /// Which result bucket the job belongs to (instant index in
    /// `try_run_multi`; always 0 for single-instant campaigns).
    group: usize,
}

impl Job {
    fn sites(&self) -> &[FaultSite] {
        &self.sites[..self.n_sites]
    }
}

/// One fault-free snapshot of the golden trajectory, restorable by any
/// job whose injection boundary lies at or beyond `steps`.
struct Checkpoint {
    snapshot: Snapshot,
    /// `step()` calls consumed before the snapshot, so a restored run's
    /// hang budget counts exactly as a run from reset would.
    steps: u64,
}

/// The fork engine's checkpoint pool: golden-trajectory snapshots sorted
/// by depth (always starting at the reset state), shared read-only by
/// every worker.
struct CheckpointPool {
    checkpoints: Vec<Checkpoint>,
    /// Approximate resident bytes across every snapshot in the pool.
    bytes: u64,
}

impl CheckpointPool {
    /// The deepest checkpoint at or before `boundary` (in steps). The
    /// pool always holds the reset-state checkpoint (`steps == 0`), so
    /// every boundary has an ancestor.
    fn nearest(&self, boundary: u64) -> &Checkpoint {
        let idx = self.checkpoints.partition_point(|c| c.steps <= boundary);
        &self.checkpoints[idx - 1]
    }

    /// Cycles simulated to build the pool: the deepest checkpoint's
    /// cycle, since construction is one monotone sweep.
    fn build_cycles(&self) -> u64 {
        self.checkpoints.last().map_or(0, |c| c.snapshot.cycle())
    }

    fn len(&self) -> usize {
        self.checkpoints.len()
    }

    fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Everything a worker needs to classify one job.
struct JobContext<'a> {
    program: &'a Program,
    golden: &'a GoldenRun,
    /// The checkpoint pool (fork engine only).
    pool: Option<&'a CheckpointPool>,
    /// Per-job wall-clock budget, if configured.
    deadline: Option<Duration>,
    /// Which safety mechanisms to evaluate over the observation.
    safety: SafetyConfig,
}

/// Classify one job with panic isolation: a panicking attempt is retried
/// once from a fresh model restore (the job entry points `restore`/`reset`
/// the model, so the retry never sees torn state); a second panic yields
/// [`FaultOutcome::EngineAnomaly`] with the panic payload.
fn run_job_isolated(
    cpu: &mut Leon3,
    ctx: &JobContext<'_>,
    job: &Job,
) -> (FaultOutcome, Detection, CampaignStats) {
    for attempt in 0..2 {
        // `&mut Leon3` is not `UnwindSafe` by definition, but the model
        // documents its unwind boundary: `restore`/`reset`/`load` rebuild
        // every field, so a torn model from a caught panic cannot leak
        // into the next run (see `leon3_model::Leon3` docs).
        let run = catch_unwind(AssertUnwindSafe(|| {
            let mut delta = CampaignStats::default();
            let (outcome, detection) = run_job(cpu, ctx, &mut delta, job);
            (outcome, detection, delta)
        }));
        match run {
            Ok((outcome, detection, mut delta)) => {
                delta.retried = usize::from(attempt > 0);
                return (outcome, detection, delta);
            }
            Err(_) if attempt == 0 => continue,
            Err(payload) => {
                let delta = CampaignStats {
                    retried: 1,
                    anomalies: 1,
                    ..CampaignStats::default()
                };
                return (
                    FaultOutcome::EngineAnomaly {
                        // `&*` derefs the box: `&payload` would coerce
                        // the `Box` itself to `&dyn Any` and every
                        // downcast would miss.
                        payload: panic_message(&*payload),
                    },
                    Detection::Undetected,
                    delta,
                );
            }
        }
    }
    unreachable!("the retry loop returns on every branch")
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classify one job. On the fork engine the model is restored from the
/// nearest-ancestor checkpoint — replaying any gap up to the injection
/// boundary with the fault armed but not yet active, so the activation
/// tick is bit-identical to a run from reset — or the job is skipped
/// outright when the golden run never reads any injected net from the
/// injection instant on. On the full-reexecution engine the model is
/// reset and re-run from cycle 0.
fn run_job(
    cpu: &mut Leon3,
    ctx: &JobContext<'_>,
    tally: &mut CampaignStats,
    job: &Job,
) -> (FaultOutcome, Detection) {
    let deadline = ctx.deadline.map(|d| Instant::now() + d);
    if let Some(pool) = ctx.pool {
        let inert = job
            .sites()
            .iter()
            .all(|s| !ctx.golden.net_exercised_from(s.net, job.injection_cycle));
        if inert {
            // The fault can never be read: the faulty run reproduces
            // the golden run to the end by construction. (This theorem
            // is about the golden run, so it holds at any instant — and
            // it equally means no mechanism can fire.)
            tally.skipped_inactive += 1;
            tally.cycles_avoided += ctx.golden.cycles;
            return (FaultOutcome::NoEffect, Detection::Undetected);
        }
        let boundary = ctx.golden.prefix_steps(job.injection_cycle) as u64;
        let ckpt = pool.nearest(boundary);
        if ckpt.steps == boundary {
            tally.forked += 1;
        } else {
            tally.restored_from_checkpoint += 1;
            tally.replay_cycles +=
                ctx.golden.cycle_at_step(boundary as usize) - ckpt.snapshot.cycle();
        }
        cpu.restore(&ckpt.snapshot);
        inject_all(cpu, job);
        let run = observe(
            cpu,
            ctx.golden,
            job.injection_cycle,
            ckpt.steps,
            ckpt.snapshot.trace_len(),
            deadline,
        );
        tally.cycles_simulated += cpu.cycles() - ckpt.snapshot.cycle();
        tally.cycles_avoided += ckpt.snapshot.cycle();
        tally.short_circuited += usize::from(run.short_circuited);
        tally.timed_out += usize::from(run.timed_out);
        let detection = classify_run(cpu, ctx, job, &run);
        return (run.outcome, detection);
    }
    tally.full_reexecutions += 1;
    cpu.reset();
    cpu.load(ctx.program);
    inject_all(cpu, job);
    let run = observe(cpu, ctx.golden, job.injection_cycle, 0, 0, deadline);
    tally.cycles_simulated += cpu.cycles();
    tally.short_circuited += usize::from(run.short_circuited);
    tally.timed_out += usize::from(run.timed_out);
    let detection = classify_run(cpu, ctx, job, &run);
    (run.outcome, detection)
}

/// Evaluate the safety mechanisms over a finished observation. The fork
/// engine restores the prefix trace into the model, so the faulty write
/// stream is always the full from-cycle-0 trace either way.
fn classify_run(cpu: &Leon3, ctx: &JobContext<'_>, job: &Job, run: &Observation) -> Detection {
    safety::classify(
        &ctx.safety,
        &run.outcome,
        &DetectionContext {
            golden_writes: &ctx.golden.writes,
            faulty_writes: cpu.bus_trace().events(),
            matched: run.matched,
            parity_event: cpu.parity_detected_at(),
            injection_cycle: job.injection_cycle,
            kind: job.kind,
            truncated: run.short_circuited || run.timed_out,
        },
    )
}

fn inject_all(cpu: &mut Leon3, job: &Job) {
    for site in job.sites() {
        cpu.inject(Fault {
            net: site.net,
            bit: site.bit,
            kind: job.kind,
            from_cycle: job.injection_cycle,
        });
    }
}

/// What [`observe`] saw.
struct Observation {
    outcome: FaultOutcome,
    /// The run was cut short at a diverging write, before the faulty core
    /// reached a halt, error-mode stop or its cycle budget.
    short_circuited: bool,
    /// The run overran its wall-clock deadline (classified `Hang`).
    timed_out: bool,
    /// Leading writes that matched the golden stream — where the lockstep
    /// divergence cursor stopped, for outcomes that carry no index.
    matched: usize,
}

/// Run an already-prepared (loaded/restored and injected) model to
/// completion, classifying against the golden run with online divergence
/// detection. `steps_done` and `writes_checked` seed the hang budget and
/// the divergence cursor when resuming from a prefix snapshot; both are 0
/// for a run from reset. `deadline` is the cooperative wall-clock
/// watchdog, checked every 256 steps.
fn observe(
    cpu: &mut Leon3,
    golden: &GoldenRun,
    injection_cycle: u64,
    steps_done: u64,
    writes_checked: usize,
    deadline: Option<Instant>,
) -> Observation {
    // Budget: generous multiple of the golden run, so hangs terminate.
    let budget = golden.instructions * 2 + 10_000;
    let mut executed: u64 = steps_done;
    let mut checked: usize = writes_checked;
    let mut ticks: u32 = 0;
    let stop = |outcome, matched| Observation {
        outcome,
        short_circuited: true,
        timed_out: false,
        matched,
    };
    loop {
        if let Some(d) = deadline {
            if ticks & 0xff == 0 && Instant::now() >= d {
                return Observation {
                    outcome: FaultOutcome::Hang {
                        latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
                    },
                    short_circuited: false,
                    timed_out: true,
                    matched: checked,
                };
            }
        }
        ticks = ticks.wrapping_add(1);
        let event = cpu.step();
        executed += 1;
        // Compare any newly produced writes against the golden stream.
        let writes = cpu.bus_trace().events();
        while checked < writes.len() {
            let w = &writes[checked];
            match golden.writes.get(checked) {
                None => {
                    // Extra write beyond the golden stream.
                    return stop(
                        FaultOutcome::Failure {
                            divergence: checked,
                            latency_cycles: w.at.saturating_sub(injection_cycle),
                        },
                        checked,
                    );
                }
                Some(g) if !w.same_payload(g) => {
                    return stop(
                        FaultOutcome::Failure {
                            divergence: checked,
                            latency_cycles: w.at.saturating_sub(injection_cycle),
                        },
                        checked,
                    );
                }
                Some(_) => checked += 1,
            }
        }
        if event == StepEvent::Stopped {
            break;
        }
        if executed >= budget {
            return Observation {
                outcome: FaultOutcome::Hang {
                    latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
                },
                short_circuited: false,
                timed_out: false,
                matched: checked,
            };
        }
    }
    let outcome = match cpu.exit() {
        Some(Exit::Halted(code)) => {
            if checked < golden.writes.len() {
                // Truncated write stream: the missing write is detected at
                // the moment the golden core produces it.
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: golden.writes[checked].at.saturating_sub(injection_cycle),
                }
            } else if code != golden.exit_code {
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
                }
            } else {
                FaultOutcome::NoEffect
            }
        }
        Some(Exit::ErrorMode(_)) => FaultOutcome::ErrorModeStop {
            latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
        },
        None => FaultOutcome::Hang {
            latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
        },
    };
    Observation {
        outcome,
        short_circuited: false,
        timed_out: false,
        matched: checked,
    }
}

/// Execute one faulty run from reset (full re-execution), comparing the
/// write stream against the golden run online and stopping at the first
/// divergence.
#[cfg(test)]
fn run_one(
    cpu: &mut Leon3,
    program: &Program,
    golden: &GoldenRun,
    site: FaultSite,
    kind: FaultKind,
    injection_cycle: u64,
) -> FaultOutcome {
    cpu.reset();
    cpu.load(program);
    cpu.inject(Fault {
        net: site.net,
        bit: site.bit,
        kind,
        from_cycle: injection_cycle,
    });
    observe(cpu, golden, injection_cycle, 0, 0, None).outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_asm::assemble;
    use sparc_isa::Unit;

    fn small_program() -> Program {
        assemble(
            r#"
            _start:
                set 0x40001000, %l0
                mov 10, %l1
                mov 0, %o0
            loop:
                add %o0, %l1, %o0
                st %o0, [%l0]
                add %l0, 4, %l0
                subcc %l1, 1, %l1
                bne loop
                 nop
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn attack_targets_restrict_the_fault_universe() {
        let program = small_program();
        let full = Campaign::new(program.clone(), Target::IntegerUnit).sites();
        let targeted = Campaign::new(program.clone(), Target::IntegerUnit)
            .with_attack_targets(&[AttackTarget::BranchCondition])
            .sites();
        assert!(!targeted.is_empty());
        assert!(targeted.len() < full.len());
        let reference = Leon3::new(Leon3Config::default());
        assert_eq!(
            targeted,
            targeted_sites(&reference, &[AttackTarget::BranchCondition])
        );
        // Duplicate and unordered class lists canonicalize, so the
        // fingerprint (and thus journal identity) is order-insensitive.
        let a = Campaign::new(program.clone(), Target::IntegerUnit).with_attack_targets(&[
            AttackTarget::StatusRegister,
            AttackTarget::BranchCondition,
            AttackTarget::BranchCondition,
        ]);
        let b = Campaign::new(program.clone(), Target::IntegerUnit)
            .with_attack_targets(&[AttackTarget::BranchCondition, AttackTarget::StatusRegister]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // ...but a targeted campaign never shares an identity with the
        // untargeted enumeration of the same domain.
        let plain = Campaign::new(program, Target::IntegerUnit);
        assert_ne!(a.fingerprint(), plain.fingerprint());
    }

    #[test]
    fn golden_run_captures_writes() {
        let golden = GoldenRun::capture(&small_program(), &Leon3Config::default());
        assert_eq!(golden.writes.len(), 10);
        assert!(golden.instructions > 30);
        // One step-cycle entry per step() call, monotonically increasing,
        // ending at the golden cycle count.
        assert!(golden.step_cycles.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(golden.step_cycles.last().copied(), Some(golden.cycles));
        assert_eq!(golden.prefix_steps(0), 0);
        assert_eq!(
            golden.prefix_steps(golden.cycles + 1),
            golden.step_cycles.len()
        );
    }

    #[test]
    fn no_fault_site_is_flagged_without_cause() {
        // A fault on a net the program never meaningfully exercises (a high
        // register-file slot) must be NoEffect; a fault on the PC must
        // fail.
        let program = small_program();
        let cpu = Leon3::new(Leon3Config::default());
        let pc_net = cpu.nets().pc;
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let mut worker = Leon3::new(Leon3Config::default());
        let out = run_one(
            &mut worker,
            &program,
            &golden,
            FaultSite {
                net: pc_net,
                bit: 2,
                unit: Unit::Fetch,
            },
            FaultKind::StuckAt1,
            0,
        );
        assert!(out.is_failure(), "PC stuck-at must fail: {out:?}");

        let unused_rf = cpu.nets().rf[100];
        let out = run_one(
            &mut worker,
            &program,
            &golden,
            FaultSite {
                net: unused_rf,
                bit: 5,
                unit: Unit::RegFile,
            },
            FaultKind::StuckAt1,
            0,
        );
        assert_eq!(out, FaultOutcome::NoEffect);
    }

    #[test]
    fn open_line_is_weaker_than_stuck_at() {
        // On a net whose value is already 0, open-line (hold 0) at cycle 0
        // behaves like stuck-at-0 on day one; this test just exercises the
        // path end-to-end for all three models.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit).with_sample(30, 7);
        let result = campaign.run(4);
        for kind in FaultKind::ALL {
            let s = result.summary(kind);
            assert!(s.injections >= 30, "{kind}: {}", s.injections);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let program = small_program();
        let campaign = Campaign::new(program.clone(), Target::IntegerUnit)
            .with_sample(20, 99)
            .with_kinds(&[FaultKind::StuckAt1]);
        let a = campaign.run(4);
        let b = campaign.run(2);
        assert_eq!(
            a.records(),
            b.records(),
            "thread count must not change results"
        );
    }

    #[test]
    fn injection_cycle_delays_the_fault() {
        // Injecting a PC fault long after the program halted is NoEffect.
        let program = small_program();
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let cpu = Leon3::new(Leon3Config::default());
        let site = FaultSite {
            net: cpu.nets().pc,
            bit: 2,
            unit: Unit::Fetch,
        };
        let mut worker = Leon3::new(Leon3Config::default());
        let late = run_one(
            &mut worker,
            &program,
            &golden,
            site,
            FaultKind::StuckAt1,
            golden.cycles + 1000,
        );
        assert_eq!(late, FaultOutcome::NoEffect);
        let early = run_one(&mut worker, &program, &golden, site, FaultKind::StuckAt1, 0);
        assert!(early.is_failure());
    }

    #[test]
    fn fork_engine_matches_full_reexecution_mid_run() {
        // The correctness bar of the fork engine: bit-identical records,
        // fewer cycles simulated. A mid-run injection instant exercises
        // the shared prefix snapshot and open-line live-value capture.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(25, 11)
            .with_injection_fraction(0.4);
        let fork = campaign.run(4);
        let full = campaign
            .clone()
            .with_execution(Execution::FullReexecution)
            .run(4);
        assert_eq!(fork.records(), full.records());
        assert!(
            fork.stats().cycles_simulated < full.stats().cycles_simulated,
            "fork must simulate fewer cycles: {} vs {}",
            fork.stats().cycles_simulated,
            full.stats().cycles_simulated,
        );
        assert_eq!(fork.stats().jobs, full.stats().jobs);
        assert_eq!(
            fork.stats().forked + fork.stats().skipped_inactive,
            fork.stats().jobs,
            "every fork-engine job is either forked or tracker-skipped",
        );
        assert_eq!(full.stats().full_reexecutions, full.stats().jobs);
        assert_eq!(full.stats().cycles_avoided, 0);
    }

    #[test]
    fn pair_campaign_forks_and_matches_full_reexecution() {
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(12, 5)
            .with_kinds(&[FaultKind::StuckAt0, FaultKind::OpenLine])
            .with_injection_fraction(0.25);
        let fork = campaign.run_pairs(4);
        let full = campaign
            .clone()
            .with_execution(Execution::FullReexecution)
            .run_pairs(4);
        assert_eq!(fork.records(), full.records());
        assert!(fork.stats().cycles_simulated < full.stats().cycles_simulated);
    }

    #[test]
    fn activation_tracker_skips_cold_sites() {
        // Injecting long after the halt leaves every net unread from the
        // injection instant on: the fork engine classifies the whole
        // campaign without simulating a single faulty cycle.
        let program = small_program();
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(10, 23)
            .with_injection_cycle(golden.cycles + 1000);
        let result = campaign.run(2);
        assert!(result
            .records()
            .iter()
            .all(|r| r.outcome == FaultOutcome::NoEffect));
        assert_eq!(result.stats().skipped_inactive, result.stats().jobs);
        assert_eq!(result.stats().forked, 0);
        // Only the (full-length) prefix was simulated, once.
        assert_eq!(result.stats().cycles_simulated, golden.cycles);
    }

    #[test]
    fn failures_short_circuit_before_the_faulty_halt() {
        // A PC stuck-at diverges almost immediately; the stream comparator
        // must cut the run at the first bad write rather than simulate to
        // the budget.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(40, 3)
            .with_kinds(&[FaultKind::StuckAt1]);
        let result = campaign.run(4);
        let failures = result
            .records()
            .iter()
            .filter(|r| r.outcome.is_failure())
            .count();
        assert!(failures > 0, "expected some failures in an IU campaign");
        assert!(
            result.stats().short_circuited > 0,
            "diverging runs must be cut short: {:?}",
            result.stats(),
        );
    }

    #[test]
    fn config_errors_are_structured() {
        let program = small_program();
        let campaign = Campaign::new(program.clone(), Target::IntegerUnit).with_sample(5, 1);
        assert_eq!(campaign.try_run(0), Err(CampaignError::ZeroThreads));
        assert_eq!(
            campaign.clone().with_kinds(&[]).try_run(2),
            Err(CampaignError::NoFaultKinds)
        );
        assert_eq!(
            campaign.clone().with_sites(Vec::new()).try_run(2),
            Err(CampaignError::NoFaultSites)
        );
        let err = campaign
            .clone()
            .with_injection_fraction(1.5)
            .try_run(2)
            .unwrap_err();
        assert!(
            matches!(err, CampaignError::InjectionPastEnd { .. }),
            "{err}"
        );
        assert_eq!(
            campaign.try_run_multi(2, &[]),
            Err(CampaignError::NoInstants)
        );
        assert!(matches!(
            Campaign::new(program, Target::IntegerUnit)
                .with_sites(vec![FaultSite {
                    net: NetId::from_raw(0),
                    bit: 0,
                    unit: Unit::Fetch,
                }])
                .try_run_pairs(2),
            Err(CampaignError::NotEnoughSitesForPairs { available: 1 })
        ));
    }

    #[test]
    fn zero_deadline_times_out_every_simulated_job() {
        // A zero wall-clock budget fires the watchdog before the first
        // step of every non-skipped job: all are classified Hang with the
        // timed_out counter, and the campaign still terminates.
        let program = small_program();
        let result = Campaign::new(program, Target::IntegerUnit)
            .with_sample(10, 17)
            .with_kinds(&[FaultKind::StuckAt1])
            .with_deadline(Duration::ZERO)
            .run(2);
        let stats = result.stats();
        assert!(stats.timed_out > 0, "{stats:?}");
        assert_eq!(stats.timed_out, stats.forked, "{stats:?}");
        for r in result.records() {
            assert!(
                matches!(
                    r.outcome,
                    FaultOutcome::Hang { .. } | FaultOutcome::NoEffect
                ),
                "{r:?}"
            );
        }
    }

    #[test]
    fn safety_config_mistakes_are_structured() {
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit).with_sample(5, 1);
        assert_eq!(
            campaign.clone().with_lockstep_window(0).try_run(2),
            Err(CampaignError::ZeroLockstepWindow)
        );
        // A 1-cycle watchdog cannot outlast even the tightest golden
        // inter-write gap.
        let err = campaign.with_watchdog_cycles(1).try_run(2).unwrap_err();
        assert!(
            matches!(err, CampaignError::WatchdogTooTight { .. }),
            "{err}"
        );
    }

    #[test]
    fn multi_instant_matches_separate_campaigns() {
        // One multi-instant campaign must reproduce, per instant, the
        // records of a dedicated campaign at that instant — with every
        // instant forking from its own pool checkpoint, never falling
        // back to full re-execution.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(12, 29)
            .with_kinds(&[FaultKind::StuckAt1, FaultKind::OpenLine]);
        let instants = [
            InjectionInstant::Fraction(0.2),
            InjectionInstant::Fraction(0.6),
        ];
        let multi = campaign.try_run_multi(4, &instants).expect("valid");
        assert_eq!(multi.len(), 2);
        for (instant, result) in instants.iter().zip(&multi) {
            let single = match instant {
                InjectionInstant::Fraction(f) => {
                    campaign.clone().with_injection_fraction(*f).run(4)
                }
                InjectionInstant::Cycle(c) => campaign.clone().with_injection_cycle(*c).run(4),
            };
            assert_eq!(result.records(), single.records());
        }
        // Every instant has its own checkpoint in the pool: no instant
        // falls back to full re-execution, and each one forks whenever it
        // has an active job.
        for result in &multi {
            assert_eq!(result.stats().full_reexecutions, 0, "{:?}", result.stats());
            assert!(
                result.stats().forked + result.stats().skipped_inactive == result.stats().jobs,
                "{:?}",
                result.stats()
            );
        }
        assert!(multi[0].stats().forked > 0, "{:?}", multi[0].stats());
        assert!(multi[1].stats().forked > 0, "{:?}", multi[1].stats());
        // The pool (one reset checkpoint + one per instant boundary) is
        // billed to the first instant.
        assert_eq!(multi[0].stats().checkpoints_taken, 3);
        assert_eq!(multi[1].stats().checkpoints_taken, 0);
        assert!(multi[0].stats().checkpoint_bytes > 0);
    }

    #[test]
    fn prepared_workload_reuses_golden_and_refuses_mismatch() {
        let program = small_program();
        let campaign = Campaign::new(program.clone(), Target::IntegerUnit).with_sample(8, 11);
        let prepared = campaign.prepare().expect("valid");
        let direct = campaign.try_run(2).expect("valid");
        let reused = campaign.try_run_prepared(2, &prepared).expect("valid");
        assert_eq!(direct.records(), reused.records());
        assert_eq!(direct.stats(), reused.stats());
        // A different platform configuration invalidates the preparation
        // (parity toggles the classification config's cmem_parity).
        let other = campaign.clone().with_parity(true);
        assert!(matches!(
            other.try_run_prepared(2, &prepared),
            Err(CampaignError::PreparedMismatch { field: "config" })
        ));
    }

    #[test]
    fn zero_checkpoint_stride_is_refused() {
        let campaign = Campaign::new(small_program(), Target::IntegerUnit)
            .with_sample(4, 7)
            .with_checkpoint_stride(0);
        assert!(matches!(
            campaign.try_run(1),
            Err(CampaignError::ZeroCheckpointStride)
        ));
    }

    #[test]
    fn stride_checkpoints_bound_the_replay_gap() {
        // A stride adds grid checkpoints between reset and the injection
        // boundary; the job's own boundary checkpoint still exists, so
        // records and fork counts are unchanged by the stride.
        let program = small_program();
        let base = Campaign::new(program, Target::IntegerUnit)
            .with_sample(10, 13)
            .with_injection_fraction(0.8);
        let plain = base.clone().try_run(2).expect("valid");
        let strided = base.with_checkpoint_stride(50).try_run(2).expect("valid");
        assert_eq!(plain.records(), strided.records());
        assert_eq!(plain.stats().forked, strided.stats().forked);
        assert_eq!(strided.stats().replay_cycles, 0);
        assert!(strided.stats().checkpoints_taken > plain.stats().checkpoints_taken);
    }
}
