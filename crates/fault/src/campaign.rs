//! The campaign runner.
//!
//! Campaigns run on a **checkpoint-and-fork** engine by default: the
//! fault-free prefix up to the injection instant is simulated exactly once,
//! captured as a [`leon3_model::Snapshot`], and every (site, kind) job of
//! the campaign *forks* from that snapshot instead of re-executing the
//! prefix from reset. Because the paper-style campaigns inject every fault
//! of the universe at one shared instant ([`InjectionInstant::Fraction`] or
//! [`InjectionInstant::Cycle`]), the prefix is common to the whole
//! campaign. Two further cost levers ride on the same machinery:
//!
//! * **site-activation tracking** — the golden run records, per net, the
//!   cycle of its last read. A permanent fault is observable only through a
//!   net *read*, and a faulty run tracks the golden trajectory until its
//!   first diverging read, so a job whose injected net the golden run never
//!   reads from the injection instant on is classified `NoEffect` without
//!   simulating a single cycle;
//! * **streaming divergence detection** — each off-core write of a faulty
//!   run is compared against the golden stream as it is emitted, and the
//!   run is short-circuited at the first mismatching or extra write.
//!
//! [`Execution::FullReexecution`] retains the pre-fork engine (every job
//! re-simulated from reset). Both engines produce **bit-identical
//! records**; only the [`crate::CampaignStats`] cost accounting differs.

use crate::result::{CampaignResult, CampaignStats, FaultOutcome, FaultRecord};
use crate::sites::{fault_sites, sample_sites, FaultSite, Target};
use leon3_model::{Leon3, Leon3Config, Snapshot};
use rtl_sim::{Fault, FaultKind, NetId};
use sparc_asm::Program;
use sparc_iss::{BusEvent, Exit, StepEvent};

/// The fault-free reference execution of a workload on the RTL model.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The off-core write stream.
    pub writes: Vec<BusEvent>,
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// The exit code.
    pub exit_code: u32,
    /// Cumulative cycle count after each `step()` call, for locating the
    /// last instruction boundary strictly before an injection instant.
    step_cycles: Vec<u64>,
    /// Per-net cycle of the last golden read (`None` = never read),
    /// indexed by raw net id.
    net_last_read: Vec<Option<u64>>,
}

impl GoldenRun {
    /// Execute the golden run.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not halt — golden runs must be
    /// trap-free and terminating by construction.
    pub fn capture(program: &Program, config: &Leon3Config) -> GoldenRun {
        let mut cpu = Leon3::new(config.clone());
        cpu.enable_read_tracking();
        cpu.load(program);
        let mut step_cycles = Vec::new();
        let exit_code = loop {
            let event = cpu.step();
            step_cycles.push(cpu.cycles());
            if event == StepEvent::Stopped {
                match cpu.exit() {
                    Some(Exit::Halted(code)) => break code,
                    other => panic!("golden run did not halt: {other:?}"),
                }
            }
        };
        let net_last_read = (0..cpu.pool().len())
            .map(|i| cpu.net_last_read(NetId::from_raw(i as u32)))
            .collect();
        GoldenRun {
            writes: cpu.bus_trace().writes().copied().collect(),
            instructions: cpu.stats().instructions,
            cycles: cpu.cycles(),
            exit_code,
            step_cycles,
            net_last_read,
        }
    }

    /// Number of `step()` calls that complete strictly before
    /// `injection_cycle` — the longest fault-free prefix every job of a
    /// campaign injecting at that instant can share.
    pub fn prefix_steps(&self, injection_cycle: u64) -> usize {
        self.step_cycles.partition_point(|&c| c < injection_cycle)
    }

    /// Whether the golden run reads `net` at or after `cycle`.
    ///
    /// A permanent fault perturbs execution only through a [`NetId`] read,
    /// and a faulty run is cycle-identical to the golden run until its
    /// first read of a perturbed net — so when this returns `false` for an
    /// injection at `cycle`, the faulty run provably reproduces the golden
    /// run to the end.
    pub fn net_exercised_from(&self, net: NetId, cycle: u64) -> bool {
        self.net_last_read
            .get(net.raw() as usize)
            .copied()
            .flatten()
            .is_some_and(|last| last >= cycle)
    }
}

/// When a campaign's faults appear (permanent from then on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionInstant {
    /// An absolute cycle.
    Cycle(u64),
    /// A fraction of the golden run's length (e.g. `0.05` = after 5% of
    /// the golden cycles). This is how the paper's "fixed injection
    /// instant" is expressed portably across workloads — and what makes
    /// open-line faults hold a *live* value rather than the reset value.
    Fraction(f64),
}

/// How a campaign executes its fault universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Checkpoint-and-fork: simulate the shared fault-free prefix once,
    /// snapshot it, and resume every job from the snapshot; jobs whose
    /// nets the golden run never reads from the injection instant on are
    /// classified without simulation.
    #[default]
    Fork,
    /// Re-simulate every job from reset. Kept as the equivalence baseline
    /// and for A/B benchmarking; produces bit-identical records.
    FullReexecution,
}

/// A fault-injection campaign: one workload, one injection domain, a fault
/// list and a set of fault models.
#[derive(Debug, Clone)]
pub struct Campaign {
    program: Program,
    target: Target,
    kinds: Vec<FaultKind>,
    sample: Option<(usize, u64)>,
    injection: InjectionInstant,
    execution: Execution,
    config: Leon3Config,
}

impl Campaign {
    /// A campaign over the full fault universe of `target` with all three
    /// fault models.
    pub fn new(program: Program, target: Target) -> Campaign {
        Campaign {
            program,
            target,
            kinds: FaultKind::ALL.to_vec(),
            sample: None,
            injection: InjectionInstant::Cycle(0),
            execution: Execution::default(),
            config: Leon3Config::default(),
        }
    }

    /// Restrict to a seeded stratified sample of `n` sites.
    #[must_use]
    pub fn with_sample(mut self, n: usize, seed: u64) -> Campaign {
        self.sample = Some((n, seed));
        self
    }

    /// Restrict the fault models.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Campaign {
        assert!(!kinds.is_empty(), "at least one fault model");
        self.kinds = kinds.to_vec();
        self
    }

    /// Set the injection instant (cycle at which faults appear; they are
    /// permanent from then on). Defaults to cycle 0.
    #[must_use]
    pub fn with_injection_cycle(mut self, cycle: u64) -> Campaign {
        self.injection = InjectionInstant::Cycle(cycle);
        self
    }

    /// Set the injection instant as a fraction of the golden run's cycle
    /// count.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    #[must_use]
    pub fn with_injection_fraction(mut self, fraction: f64) -> Campaign {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        self.injection = InjectionInstant::Fraction(fraction);
        self
    }

    /// Select the execution engine. Defaults to [`Execution::Fork`].
    #[must_use]
    pub fn with_execution(mut self, execution: Execution) -> Campaign {
        self.execution = execution;
        self
    }

    /// Override the platform configuration.
    ///
    /// Bus-read tracing is forced off for classification runs: outcomes
    /// are defined over the off-core *write* stream.
    #[must_use]
    pub fn with_config(mut self, config: Leon3Config) -> Campaign {
        self.config = config;
        self
    }

    /// The fault list this campaign will inject.
    pub fn sites(&self) -> Vec<FaultSite> {
        let reference = Leon3::new(self.config.clone());
        let all = fault_sites(&reference, self.target);
        match self.sample {
            Some((n, seed)) => sample_sites(&all, n, seed),
            None => all,
        }
    }

    /// Run the campaign on `threads` worker threads and aggregate.
    ///
    /// The result's [`CampaignResult::stats`] reports what the configured
    /// [`Execution`] engine actually simulated; the records themselves are
    /// engine-independent.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or the golden run does not halt.
    pub fn run(&self, threads: usize) -> CampaignResult {
        assert!(threads > 0);
        let config = self.classification_config();
        let golden = GoldenRun::capture(&self.program, &config);
        let injection_cycle = self.injection_cycle(&golden);
        let jobs: Vec<Job> = self
            .sites()
            .iter()
            .flat_map(|&site| {
                self.kinds.iter().map(move |&kind| Job {
                    sites: [site, site],
                    n_sites: 1,
                    kind,
                })
            })
            .collect();
        self.execute(threads, &config, &golden, injection_cycle, &jobs)
    }

    /// Dual-point variant for ISO 26262 latent-fault analysis: the sampled
    /// site list is chained into overlapping pairs `(s0,s1), (s1,s2), …`
    /// and both faults of a pair are present simultaneously. The record's
    /// `site` is the pair's first site.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0, fewer than two sites are sampled, or the
    /// golden run does not halt.
    pub fn run_pairs(&self, threads: usize) -> CampaignResult {
        assert!(threads > 0);
        let config = self.classification_config();
        let golden = GoldenRun::capture(&self.program, &config);
        let injection_cycle = self.injection_cycle(&golden);
        let sites = self.sites();
        assert!(
            sites.len() >= 2,
            "dual-point campaigns need at least two sites"
        );
        let jobs: Vec<Job> = sites
            .windows(2)
            .flat_map(|w| {
                self.kinds.iter().map(move |&kind| Job {
                    sites: [w[0], w[1]],
                    n_sites: 2,
                    kind,
                })
            })
            .collect();
        self.execute(threads, &config, &golden, injection_cycle, &jobs)
    }

    /// The platform configuration used for classification runs. Bus-read
    /// tracing is forced off: outcomes are classified against the off-core
    /// write stream, and the divergence cursor indexes writes.
    fn classification_config(&self) -> Leon3Config {
        let mut config = self.config.clone();
        config.trace_reads = false;
        config
    }

    fn injection_cycle(&self, golden: &GoldenRun) -> u64 {
        match self.injection {
            InjectionInstant::Cycle(c) => c,
            InjectionInstant::Fraction(f) => (golden.cycles as f64 * f) as u64,
        }
    }

    /// Simulate the shared fault-free prefix once and snapshot it (fork
    /// engine only). The snapshot sits at the last instruction boundary
    /// whose cycle count is strictly below the injection instant, so the
    /// activation tick — and an open-line fault's held value — are
    /// bit-identical to a run from reset.
    fn prefix(
        &self,
        config: &Leon3Config,
        golden: &GoldenRun,
        injection_cycle: u64,
    ) -> Option<Prefix> {
        if self.execution != Execution::Fork {
            return None;
        }
        let steps = golden.prefix_steps(injection_cycle);
        let mut cpu = Leon3::new(config.clone());
        cpu.load(&self.program);
        for _ in 0..steps {
            cpu.step();
        }
        Some(Prefix {
            snapshot: cpu.snapshot(),
            steps: steps as u64,
        })
    }

    fn execute(
        &self,
        threads: usize,
        config: &Leon3Config,
        golden: &GoldenRun,
        injection_cycle: u64,
        jobs: &[Job],
    ) -> CampaignResult {
        let prefix = self.prefix(config, golden, injection_cycle);
        let ctx = JobContext {
            program: &self.program,
            golden,
            prefix: prefix.as_ref(),
            injection_cycle,
        };
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut records = vec![None; jobs.len()];
        let records_mutex = std::sync::Mutex::new(&mut records);
        let mut stats = CampaignStats {
            jobs: jobs.len(),
            golden_cycles: golden.cycles,
            ..CampaignStats::default()
        };
        if let Some(prefix) = &prefix {
            // The shared prefix is simulated exactly once.
            stats.prefix_cycles = prefix.snapshot.cycle();
            stats.cycles_simulated = prefix.snapshot.cycle();
        }
        let stats_mutex = std::sync::Mutex::new(&mut stats);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(usize, FaultRecord)> = Vec::new();
                    let mut tally = CampaignStats::default();
                    // One model instance per worker, reset or restored
                    // between runs.
                    let mut cpu = Leon3::new(config.clone());
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= jobs.len() {
                            break;
                        }
                        let job = &jobs[idx];
                        let outcome = run_job(&mut cpu, &ctx, &mut tally, job);
                        local.push((
                            idx,
                            FaultRecord {
                                site: job.sites[0],
                                kind: job.kind,
                                outcome,
                            },
                        ));
                    }
                    let mut guard = records_mutex.lock().expect("no poisoned workers");
                    for (idx, record) in local {
                        guard[idx] = Some(record);
                    }
                    drop(guard);
                    stats_mutex
                        .lock()
                        .expect("no poisoned workers")
                        .merge(&tally);
                });
            }
        });
        CampaignResult::with_stats(
            records
                .into_iter()
                .map(|r| r.expect("all jobs ran"))
                .collect(),
            stats,
        )
    }
}

/// One unit of campaign work: one or two simultaneous faults of one model.
#[derive(Clone, Copy)]
struct Job {
    sites: [FaultSite; 2],
    n_sites: usize,
    kind: FaultKind,
}

impl Job {
    fn sites(&self) -> &[FaultSite] {
        &self.sites[..self.n_sites]
    }
}

/// The shared fault-free prefix of a fork-engine campaign.
struct Prefix {
    snapshot: Snapshot,
    /// `step()` calls consumed by the prefix, so a forked run's hang
    /// budget counts exactly as a run from reset would.
    steps: u64,
}

/// Everything a worker needs to classify one job.
struct JobContext<'a> {
    program: &'a Program,
    golden: &'a GoldenRun,
    prefix: Option<&'a Prefix>,
    injection_cycle: u64,
}

/// Classify one job. On the fork engine the model is restored from the
/// shared prefix snapshot — or the job is skipped outright when the golden
/// run never reads any injected net from the injection instant on; on the
/// full-reexecution engine it is reset and re-run from cycle 0.
fn run_job(
    cpu: &mut Leon3,
    ctx: &JobContext<'_>,
    tally: &mut CampaignStats,
    job: &Job,
) -> FaultOutcome {
    match ctx.prefix {
        Some(prefix) => {
            let inert = job
                .sites()
                .iter()
                .all(|s| !ctx.golden.net_exercised_from(s.net, ctx.injection_cycle));
            if inert {
                // The fault can never be read: the faulty run reproduces
                // the golden run to the end by construction.
                tally.skipped_inactive += 1;
                tally.cycles_avoided += ctx.golden.cycles;
                return FaultOutcome::NoEffect;
            }
            tally.forked += 1;
            cpu.restore(&prefix.snapshot);
            inject_all(cpu, job, ctx.injection_cycle);
            let run = observe(
                cpu,
                ctx.golden,
                ctx.injection_cycle,
                prefix.steps,
                prefix.snapshot.trace_len(),
            );
            tally.cycles_simulated += cpu.cycles() - prefix.snapshot.cycle();
            tally.cycles_avoided += prefix.snapshot.cycle();
            tally.short_circuited += usize::from(run.short_circuited);
            run.outcome
        }
        None => {
            tally.full_reexecutions += 1;
            cpu.reset();
            cpu.load(ctx.program);
            inject_all(cpu, job, ctx.injection_cycle);
            let run = observe(cpu, ctx.golden, ctx.injection_cycle, 0, 0);
            tally.cycles_simulated += cpu.cycles();
            tally.short_circuited += usize::from(run.short_circuited);
            run.outcome
        }
    }
}

fn inject_all(cpu: &mut Leon3, job: &Job, injection_cycle: u64) {
    for site in job.sites() {
        cpu.inject(Fault {
            net: site.net,
            bit: site.bit,
            kind: job.kind,
            from_cycle: injection_cycle,
        });
    }
}

/// What [`observe`] saw.
struct Observation {
    outcome: FaultOutcome,
    /// The run was cut short at a diverging write, before the faulty core
    /// reached a halt, error-mode stop or its cycle budget.
    short_circuited: bool,
}

/// Run an already-prepared (loaded/restored and injected) model to
/// completion, classifying against the golden run with online divergence
/// detection. `steps_done` and `writes_checked` seed the hang budget and
/// the divergence cursor when resuming from a prefix snapshot; both are 0
/// for a run from reset.
fn observe(
    cpu: &mut Leon3,
    golden: &GoldenRun,
    injection_cycle: u64,
    steps_done: u64,
    writes_checked: usize,
) -> Observation {
    // Budget: generous multiple of the golden run, so hangs terminate.
    let budget = golden.instructions * 2 + 10_000;
    let mut executed: u64 = steps_done;
    let mut checked: usize = writes_checked;
    let stop = |outcome| Observation {
        outcome,
        short_circuited: true,
    };
    loop {
        let event = cpu.step();
        executed += 1;
        // Compare any newly produced writes against the golden stream.
        let writes = cpu.bus_trace().events();
        while checked < writes.len() {
            let w = &writes[checked];
            match golden.writes.get(checked) {
                None => {
                    // Extra write beyond the golden stream.
                    return stop(FaultOutcome::Failure {
                        divergence: checked,
                        latency_cycles: w.at.saturating_sub(injection_cycle),
                    });
                }
                Some(g) if !w.same_payload(g) => {
                    return stop(FaultOutcome::Failure {
                        divergence: checked,
                        latency_cycles: w.at.saturating_sub(injection_cycle),
                    });
                }
                Some(_) => checked += 1,
            }
        }
        if event == StepEvent::Stopped {
            break;
        }
        if executed >= budget {
            return Observation {
                outcome: FaultOutcome::Hang,
                short_circuited: false,
            };
        }
    }
    let outcome = match cpu.exit() {
        Some(Exit::Halted(code)) => {
            if checked < golden.writes.len() {
                // Truncated write stream: the missing write is detected at
                // the moment the golden core produces it.
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: golden.writes[checked].at.saturating_sub(injection_cycle),
                }
            } else if code != golden.exit_code {
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
                }
            } else {
                FaultOutcome::NoEffect
            }
        }
        Some(Exit::ErrorMode(_)) => FaultOutcome::ErrorModeStop {
            latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
        },
        None => FaultOutcome::Hang,
    };
    Observation {
        outcome,
        short_circuited: false,
    }
}

/// Execute one faulty run from reset (full re-execution), comparing the
/// write stream against the golden run online and stopping at the first
/// divergence.
#[cfg(test)]
fn run_one(
    cpu: &mut Leon3,
    program: &Program,
    golden: &GoldenRun,
    site: FaultSite,
    kind: FaultKind,
    injection_cycle: u64,
) -> FaultOutcome {
    cpu.reset();
    cpu.load(program);
    cpu.inject(Fault {
        net: site.net,
        bit: site.bit,
        kind,
        from_cycle: injection_cycle,
    });
    observe(cpu, golden, injection_cycle, 0, 0).outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_asm::assemble;
    use sparc_isa::Unit;

    fn small_program() -> Program {
        assemble(
            r#"
            _start:
                set 0x40001000, %l0
                mov 10, %l1
                mov 0, %o0
            loop:
                add %o0, %l1, %o0
                st %o0, [%l0]
                add %l0, 4, %l0
                subcc %l1, 1, %l1
                bne loop
                 nop
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn golden_run_captures_writes() {
        let golden = GoldenRun::capture(&small_program(), &Leon3Config::default());
        assert_eq!(golden.writes.len(), 10);
        assert!(golden.instructions > 30);
        // One step-cycle entry per step() call, monotonically increasing,
        // ending at the golden cycle count.
        assert!(golden.step_cycles.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(golden.step_cycles.last().copied(), Some(golden.cycles));
        assert_eq!(golden.prefix_steps(0), 0);
        assert_eq!(
            golden.prefix_steps(golden.cycles + 1),
            golden.step_cycles.len()
        );
    }

    #[test]
    fn no_fault_site_is_flagged_without_cause() {
        // A fault on a net the program never meaningfully exercises (a high
        // register-file slot) must be NoEffect; a fault on the PC must
        // fail.
        let program = small_program();
        let cpu = Leon3::new(Leon3Config::default());
        let pc_net = cpu.nets().pc;
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let mut worker = Leon3::new(Leon3Config::default());
        let out = run_one(
            &mut worker,
            &program,
            &golden,
            FaultSite {
                net: pc_net,
                bit: 2,
                unit: Unit::Fetch,
            },
            FaultKind::StuckAt1,
            0,
        );
        assert!(out.is_failure(), "PC stuck-at must fail: {out:?}");

        let unused_rf = cpu.nets().rf[100];
        let out = run_one(
            &mut worker,
            &program,
            &golden,
            FaultSite {
                net: unused_rf,
                bit: 5,
                unit: Unit::RegFile,
            },
            FaultKind::StuckAt1,
            0,
        );
        assert_eq!(out, FaultOutcome::NoEffect);
    }

    #[test]
    fn open_line_is_weaker_than_stuck_at() {
        // On a net whose value is already 0, open-line (hold 0) at cycle 0
        // behaves like stuck-at-0 on day one; this test just exercises the
        // path end-to-end for all three models.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit).with_sample(30, 7);
        let result = campaign.run(4);
        for kind in FaultKind::ALL {
            let s = result.summary(kind);
            assert!(s.injections >= 30, "{kind}: {}", s.injections);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let program = small_program();
        let campaign = Campaign::new(program.clone(), Target::IntegerUnit)
            .with_sample(20, 99)
            .with_kinds(&[FaultKind::StuckAt1]);
        let a = campaign.run(4);
        let b = campaign.run(2);
        assert_eq!(
            a.records(),
            b.records(),
            "thread count must not change results"
        );
    }

    #[test]
    fn injection_cycle_delays_the_fault() {
        // Injecting a PC fault long after the program halted is NoEffect.
        let program = small_program();
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let cpu = Leon3::new(Leon3Config::default());
        let site = FaultSite {
            net: cpu.nets().pc,
            bit: 2,
            unit: Unit::Fetch,
        };
        let mut worker = Leon3::new(Leon3Config::default());
        let late = run_one(
            &mut worker,
            &program,
            &golden,
            site,
            FaultKind::StuckAt1,
            golden.cycles + 1000,
        );
        assert_eq!(late, FaultOutcome::NoEffect);
        let early = run_one(&mut worker, &program, &golden, site, FaultKind::StuckAt1, 0);
        assert!(early.is_failure());
    }

    #[test]
    fn fork_engine_matches_full_reexecution_mid_run() {
        // The correctness bar of the fork engine: bit-identical records,
        // fewer cycles simulated. A mid-run injection instant exercises
        // the shared prefix snapshot and open-line live-value capture.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(25, 11)
            .with_injection_fraction(0.4);
        let fork = campaign.run(4);
        let full = campaign
            .clone()
            .with_execution(Execution::FullReexecution)
            .run(4);
        assert_eq!(fork.records(), full.records());
        assert!(
            fork.stats().cycles_simulated < full.stats().cycles_simulated,
            "fork must simulate fewer cycles: {} vs {}",
            fork.stats().cycles_simulated,
            full.stats().cycles_simulated,
        );
        assert_eq!(fork.stats().jobs, full.stats().jobs);
        assert_eq!(
            fork.stats().forked + fork.stats().skipped_inactive,
            fork.stats().jobs,
            "every fork-engine job is either forked or tracker-skipped",
        );
        assert_eq!(full.stats().full_reexecutions, full.stats().jobs);
        assert_eq!(full.stats().cycles_avoided, 0);
    }

    #[test]
    fn pair_campaign_forks_and_matches_full_reexecution() {
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(12, 5)
            .with_kinds(&[FaultKind::StuckAt0, FaultKind::OpenLine])
            .with_injection_fraction(0.25);
        let fork = campaign.run_pairs(4);
        let full = campaign
            .clone()
            .with_execution(Execution::FullReexecution)
            .run_pairs(4);
        assert_eq!(fork.records(), full.records());
        assert!(fork.stats().cycles_simulated < full.stats().cycles_simulated);
    }

    #[test]
    fn activation_tracker_skips_cold_sites() {
        // Injecting long after the halt leaves every net unread from the
        // injection instant on: the fork engine classifies the whole
        // campaign without simulating a single faulty cycle.
        let program = small_program();
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(10, 23)
            .with_injection_cycle(golden.cycles + 1000);
        let result = campaign.run(2);
        assert!(result
            .records()
            .iter()
            .all(|r| r.outcome == FaultOutcome::NoEffect));
        assert_eq!(result.stats().skipped_inactive, result.stats().jobs);
        assert_eq!(result.stats().forked, 0);
        // Only the (full-length) prefix was simulated, once.
        assert_eq!(result.stats().cycles_simulated, golden.cycles);
    }

    #[test]
    fn failures_short_circuit_before_the_faulty_halt() {
        // A PC stuck-at diverges almost immediately; the stream comparator
        // must cut the run at the first bad write rather than simulate to
        // the budget.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit)
            .with_sample(40, 3)
            .with_kinds(&[FaultKind::StuckAt1]);
        let result = campaign.run(4);
        let failures = result
            .records()
            .iter()
            .filter(|r| r.outcome.is_failure())
            .count();
        assert!(failures > 0, "expected some failures in an IU campaign");
        assert!(
            result.stats().short_circuited > 0,
            "diverging runs must be cut short: {:?}",
            result.stats(),
        );
    }
}
