//! The campaign runner.

use crate::result::{CampaignResult, FaultOutcome, FaultRecord};
use crate::sites::{fault_sites, sample_sites, FaultSite, Target};
use leon3_model::{Leon3, Leon3Config};
use rtl_sim::{Fault, FaultKind};
use sparc_asm::Program;
use sparc_iss::{BusEvent, Exit, RunOutcome, StepEvent};

/// The fault-free reference execution of a workload on the RTL model.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// The off-core write stream.
    pub writes: Vec<BusEvent>,
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// The exit code.
    pub exit_code: u32,
}

impl GoldenRun {
    /// Execute the golden run.
    ///
    /// # Panics
    ///
    /// Panics if the workload does not halt — golden runs must be
    /// trap-free and terminating by construction.
    pub fn capture(program: &Program, config: &Leon3Config) -> GoldenRun {
        let mut cpu = Leon3::new(config.clone());
        cpu.load(program);
        let outcome = cpu.run(u64::MAX / 2);
        let exit_code = match outcome {
            RunOutcome::Halted { code } => code,
            other => panic!("golden run did not halt: {other:?}"),
        };
        GoldenRun {
            writes: cpu.bus_trace().writes().copied().collect(),
            instructions: cpu.stats().instructions,
            cycles: cpu.cycles(),
            exit_code,
        }
    }
}

/// When a campaign's faults appear (permanent from then on).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionInstant {
    /// An absolute cycle.
    Cycle(u64),
    /// A fraction of the golden run's length (e.g. `0.05` = after 5% of
    /// the golden cycles). This is how the paper's "fixed injection
    /// instant" is expressed portably across workloads — and what makes
    /// open-line faults hold a *live* value rather than the reset value.
    Fraction(f64),
}

/// A fault-injection campaign: one workload, one injection domain, a fault
/// list and a set of fault models.
#[derive(Debug, Clone)]
pub struct Campaign {
    program: Program,
    target: Target,
    kinds: Vec<FaultKind>,
    sample: Option<(usize, u64)>,
    injection: InjectionInstant,
    config: Leon3Config,
}

impl Campaign {
    /// A campaign over the full fault universe of `target` with all three
    /// fault models.
    pub fn new(program: Program, target: Target) -> Campaign {
        Campaign {
            program,
            target,
            kinds: FaultKind::ALL.to_vec(),
            sample: None,
            injection: InjectionInstant::Cycle(0),
            config: Leon3Config::default(),
        }
    }

    /// Restrict to a seeded stratified sample of `n` sites.
    #[must_use]
    pub fn with_sample(mut self, n: usize, seed: u64) -> Campaign {
        self.sample = Some((n, seed));
        self
    }

    /// Restrict the fault models.
    ///
    /// # Panics
    ///
    /// Panics if `kinds` is empty.
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Campaign {
        assert!(!kinds.is_empty(), "at least one fault model");
        self.kinds = kinds.to_vec();
        self
    }

    /// Set the injection instant (cycle at which faults appear; they are
    /// permanent from then on). Defaults to cycle 0.
    #[must_use]
    pub fn with_injection_cycle(mut self, cycle: u64) -> Campaign {
        self.injection = InjectionInstant::Cycle(cycle);
        self
    }

    /// Set the injection instant as a fraction of the golden run's cycle
    /// count.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction <= 1.0`.
    #[must_use]
    pub fn with_injection_fraction(mut self, fraction: f64) -> Campaign {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        self.injection = InjectionInstant::Fraction(fraction);
        self
    }

    /// Override the platform configuration.
    #[must_use]
    pub fn with_config(mut self, config: Leon3Config) -> Campaign {
        self.config = config;
        self
    }

    /// The fault list this campaign will inject.
    pub fn sites(&self) -> Vec<FaultSite> {
        let reference = Leon3::new(self.config.clone());
        let all = fault_sites(&reference, self.target);
        match self.sample {
            Some((n, seed)) => sample_sites(&all, n, seed),
            None => all,
        }
    }

    /// Run the campaign on `threads` worker threads and aggregate.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or the golden run does not halt.
    pub fn run(&self, threads: usize) -> CampaignResult {
        assert!(threads > 0);
        let golden = GoldenRun::capture(&self.program, &self.config);
        let injection_cycle = match self.injection {
            InjectionInstant::Cycle(c) => c,
            InjectionInstant::Fraction(f) => (golden.cycles as f64 * f) as u64,
        };
        let sites = self.sites();
        let jobs: Vec<(FaultSite, FaultKind)> = sites
            .iter()
            .flat_map(|&site| self.kinds.iter().map(move |&kind| (site, kind)))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut records = vec![None; jobs.len()];
        let records_mutex = std::sync::Mutex::new(&mut records);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local: Vec<(usize, FaultRecord)> = Vec::new();
                    // One model instance per worker, reset between runs.
                    let mut cpu = Leon3::new(self.config.clone());
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= jobs.len() {
                            break;
                        }
                        let (site, kind) = jobs[idx];
                        let outcome =
                            run_one(&mut cpu, &self.program, &golden, site, kind, injection_cycle);
                        local.push((idx, FaultRecord { site, kind, outcome }));
                    }
                    let mut guard = records_mutex.lock().expect("no poisoned workers");
                    for (idx, record) in local {
                        guard[idx] = Some(record);
                    }
                });
            }
        });
        CampaignResult::new(records.into_iter().map(|r| r.expect("all jobs ran")).collect())
    }
}

impl Campaign {
    /// Dual-point variant for ISO 26262 latent-fault analysis: the sampled
    /// site list is chained into overlapping pairs `(s0,s1), (s1,s2), …`
    /// and both faults of a pair are present simultaneously. The record's
    /// `site` is the pair's first site.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0, fewer than two sites are sampled, or the
    /// golden run does not halt.
    pub fn run_pairs(&self, threads: usize) -> CampaignResult {
        assert!(threads > 0);
        let golden = GoldenRun::capture(&self.program, &self.config);
        let injection_cycle = match self.injection {
            InjectionInstant::Cycle(c) => c,
            InjectionInstant::Fraction(f) => (golden.cycles as f64 * f) as u64,
        };
        let sites = self.sites();
        assert!(sites.len() >= 2, "dual-point campaigns need at least two sites");
        let jobs: Vec<(FaultSite, FaultSite, FaultKind)> = sites
            .windows(2)
            .flat_map(|w| self.kinds.iter().map(move |&kind| (w[0], w[1], kind)))
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut records = vec![None; jobs.len()];
        let records_mutex = std::sync::Mutex::new(&mut records);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    let mut cpu = Leon3::new(self.config.clone());
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= jobs.len() {
                            break;
                        }
                        let (first, second, kind) = jobs[idx];
                        cpu.reset();
                        cpu.load(&self.program);
                        for site in [first, second] {
                            cpu.inject(Fault {
                                net: site.net,
                                bit: site.bit,
                                kind,
                                from_cycle: injection_cycle,
                            });
                        }
                        let outcome = observe(&mut cpu, &golden, injection_cycle);
                        local.push((idx, FaultRecord { site: first, kind, outcome }));
                    }
                    let mut guard = records_mutex.lock().expect("no poisoned workers");
                    for (idx, record) in local {
                        guard[idx] = Some(record);
                    }
                });
            }
        });
        CampaignResult::new(records.into_iter().map(|r| r.expect("all jobs ran")).collect())
    }
}

/// Execute one faulty run, comparing the write stream against the golden
/// run online and stopping at the first divergence.
fn run_one(
    cpu: &mut Leon3,
    program: &Program,
    golden: &GoldenRun,
    site: FaultSite,
    kind: FaultKind,
    injection_cycle: u64,
) -> FaultOutcome {
    cpu.reset();
    cpu.load(program);
    cpu.inject(Fault { net: site.net, bit: site.bit, kind, from_cycle: injection_cycle });
    observe(cpu, golden, injection_cycle)
}

/// Run an already-prepared (loaded and injected) model to completion,
/// classifying against the golden run with online divergence detection.
fn observe(cpu: &mut Leon3, golden: &GoldenRun, injection_cycle: u64) -> FaultOutcome {
    // Budget: generous multiple of the golden run, so hangs terminate.
    let budget = golden.instructions * 2 + 10_000;
    let mut executed: u64 = 0;
    let mut checked: usize = 0;
    loop {
        let event = cpu.step();
        executed += 1;
        // Compare any newly produced writes against the golden stream.
        let writes = cpu.bus_trace().events();
        while checked < writes.len() {
            let w = &writes[checked];
            match golden.writes.get(checked) {
                None => {
                    // Extra write beyond the golden stream.
                    return FaultOutcome::Failure {
                        divergence: checked,
                        latency_cycles: w.at.saturating_sub(injection_cycle),
                    };
                }
                Some(g) if !w.same_payload(g) => {
                    return FaultOutcome::Failure {
                        divergence: checked,
                        latency_cycles: w.at.saturating_sub(injection_cycle),
                    };
                }
                Some(_) => checked += 1,
            }
        }
        if event == StepEvent::Stopped {
            break;
        }
        if executed >= budget {
            return FaultOutcome::Hang;
        }
    }
    match cpu.exit() {
        Some(Exit::Halted(code)) => {
            if checked < golden.writes.len() {
                // Truncated write stream: the missing write is detected at
                // the moment the golden core produces it.
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: golden.writes[checked].at.saturating_sub(injection_cycle),
                }
            } else if code != golden.exit_code {
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
                }
            } else {
                FaultOutcome::NoEffect
            }
        }
        Some(Exit::ErrorMode(_)) => FaultOutcome::ErrorModeStop {
            latency_cycles: cpu.cycles().saturating_sub(injection_cycle),
        },
        None => FaultOutcome::Hang,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_asm::assemble;
    use sparc_isa::Unit;

    fn small_program() -> Program {
        assemble(
            r#"
            _start:
                set 0x40001000, %l0
                mov 10, %l1
                mov 0, %o0
            loop:
                add %o0, %l1, %o0
                st %o0, [%l0]
                add %l0, 4, %l0
                subcc %l1, 1, %l1
                bne loop
                 nop
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn golden_run_captures_writes() {
        let golden = GoldenRun::capture(&small_program(), &Leon3Config::default());
        assert_eq!(golden.writes.len(), 10);
        assert!(golden.instructions > 30);
    }

    #[test]
    fn no_fault_site_is_flagged_without_cause() {
        // A fault on a net the program never meaningfully exercises (a high
        // register-file slot) must be NoEffect; a fault on the PC must
        // fail.
        let program = small_program();
        let cpu = Leon3::new(Leon3Config::default());
        let pc_net = cpu.nets().pc;
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let mut worker = Leon3::new(Leon3Config::default());
        let out = run_one(
            &mut worker,
            &program,
            &golden,
            FaultSite { net: pc_net, bit: 2, unit: Unit::Fetch },
            FaultKind::StuckAt1,
            0,
        );
        assert!(out.is_failure(), "PC stuck-at must fail: {out:?}");

        let unused_rf = cpu.nets().rf[100];
        let out = run_one(
            &mut worker,
            &program,
            &golden,
            FaultSite { net: unused_rf, bit: 5, unit: Unit::RegFile },
            FaultKind::StuckAt1,
            0,
        );
        assert_eq!(out, FaultOutcome::NoEffect);
    }

    #[test]
    fn open_line_is_weaker_than_stuck_at() {
        // On a net whose value is already 0, open-line (hold 0) at cycle 0
        // behaves like stuck-at-0 on day one; this test just exercises the
        // path end-to-end for all three models.
        let program = small_program();
        let campaign = Campaign::new(program, Target::IntegerUnit).with_sample(30, 7);
        let result = campaign.run(4);
        for kind in FaultKind::ALL {
            let s = result.summary(kind);
            assert!(s.injections >= 30, "{kind}: {}", s.injections);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let program = small_program();
        let campaign = Campaign::new(program.clone(), Target::IntegerUnit)
            .with_sample(20, 99)
            .with_kinds(&[FaultKind::StuckAt1]);
        let a = campaign.run(4);
        let b = campaign.run(2);
        assert_eq!(a.records(), b.records(), "thread count must not change results");
    }

    #[test]
    fn injection_cycle_delays_the_fault() {
        // Injecting a PC fault long after the program halted is NoEffect.
        let program = small_program();
        let golden = GoldenRun::capture(&program, &Leon3Config::default());
        let cpu = Leon3::new(Leon3Config::default());
        let site = FaultSite { net: cpu.nets().pc, bit: 2, unit: Unit::Fetch };
        let mut worker = Leon3::new(Leon3Config::default());
        let late = run_one(
            &mut worker,
            &program,
            &golden,
            site,
            FaultKind::StuckAt1,
            golden.cycles + 1000,
        );
        assert_eq!(late, FaultOutcome::NoEffect);
        let early = run_one(&mut worker, &program, &golden, site, FaultKind::StuckAt1, 0);
        assert!(early.is_failure());
    }
}
