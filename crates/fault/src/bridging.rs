//! Bridging-fault (short-circuit) campaigns.
//!
//! The reproduced paper's related work (Baraza et al.) notes that
//! multi-point fault models like short-circuits require the intrusive
//! *saboteur* technique in VHDL simulation. On this suite's substrate they
//! are a first-class overlay, so a bridging campaign runs exactly like a
//! stuck-at campaign: inject, run, compare the off-core write stream.
//!
//! Bridged pairs model physically adjacent wires: adjacent bits of one
//! net, or the same bit of two nets declared consecutively within one
//! functional unit.

use crate::campaign::GoldenRun;
use crate::result::FaultOutcome;
use crate::sites::Target;
use analysis::SplitMix64;
use leon3_model::{Leon3, Leon3Config};
use rtl_sim::{Bridge, BridgeKind, NetId};
use sparc_asm::Program;
use sparc_iss::{Exit, StepEvent};

/// One bridging injection record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BridgeRecord {
    /// The injected short.
    pub bridge: Bridge,
    /// What happened.
    pub outcome: FaultOutcome,
}

/// Enumerate candidate adjacent-wire pairs in a domain.
pub fn bridge_pairs(cpu: &Leon3, target: Target) -> Vec<((NetId, u8), (NetId, u8))> {
    let mut pairs = Vec::new();
    let mut previous: Option<(NetId, u8)> = None;
    for (id, meta) in cpu.pool().iter() {
        if !target.includes(meta.tag) {
            previous = None;
            continue;
        }
        // Adjacent bits within one net.
        for bit in 0..meta.width - 1 {
            pairs.push(((id, bit), (id, bit + 1)));
        }
        // MSB of the previous net to LSB of this one (routing adjacency).
        if let Some(prev) = previous {
            pairs.push((prev, (id, 0)));
        }
        previous = Some((id, meta.width - 1));
    }
    pairs
}

/// A bridging campaign over one workload and injection domain.
#[derive(Debug, Clone)]
pub struct BridgingCampaign {
    program: Program,
    target: Target,
    kinds: Vec<BridgeKind>,
    sample: Option<(usize, u64)>,
    config: Leon3Config,
}

impl BridgingCampaign {
    /// A campaign with both wired-AND and wired-OR shorts.
    pub fn new(program: Program, target: Target) -> BridgingCampaign {
        BridgingCampaign {
            program,
            target,
            kinds: vec![BridgeKind::WiredAnd, BridgeKind::WiredOr],
            sample: None,
            config: Leon3Config::default(),
        }
    }

    /// Restrict to a seeded sample of `n` pairs.
    #[must_use]
    pub fn with_sample(mut self, n: usize, seed: u64) -> BridgingCampaign {
        self.sample = Some((n, seed));
        self
    }

    /// The pair list this campaign will inject.
    pub fn pairs(&self) -> Vec<((NetId, u8), (NetId, u8))> {
        let reference = Leon3::new(self.config.clone());
        let mut all = bridge_pairs(&reference, self.target);
        if let Some((n, seed)) = self.sample {
            let mut rng = SplitMix64::new(seed);
            rng.shuffle(&mut all);
            all.truncate(n);
        }
        all
    }

    /// Run the campaign on `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or the golden run does not halt.
    pub fn run(&self, threads: usize) -> Vec<BridgeRecord> {
        assert!(threads > 0);
        let golden = GoldenRun::capture(&self.program, &self.config);
        let jobs: Vec<Bridge> = self
            .pairs()
            .into_iter()
            .flat_map(|(a, b)| {
                self.kinds.iter().map(move |&kind| Bridge {
                    a,
                    b,
                    kind,
                    from_cycle: 0,
                })
            })
            .collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut records = vec![None; jobs.len()];
        let records_mutex = std::sync::Mutex::new(&mut records);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    let mut cpu = Leon3::new(self.config.clone());
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= jobs.len() {
                            break;
                        }
                        let bridge = jobs[idx];
                        let outcome = run_one(&mut cpu, &self.program, &golden, bridge);
                        local.push((idx, BridgeRecord { bridge, outcome }));
                    }
                    let mut guard = records_mutex.lock().expect("no poisoned workers");
                    for (idx, record) in local {
                        guard[idx] = Some(record);
                    }
                });
            }
        });
        records
            .into_iter()
            .map(|r| r.expect("all jobs ran"))
            .collect()
    }
}

fn run_one(cpu: &mut Leon3, program: &Program, golden: &GoldenRun, bridge: Bridge) -> FaultOutcome {
    cpu.reset();
    cpu.load(program);
    cpu.inject_bridge(bridge);
    let budget = golden.instructions * 2 + 10_000;
    let mut executed = 0u64;
    let mut checked = 0usize;
    loop {
        let event = cpu.step();
        executed += 1;
        let writes = cpu.bus_trace().events();
        while checked < writes.len() {
            let w = &writes[checked];
            match golden.writes.get(checked) {
                Some(g) if w.same_payload(g) => checked += 1,
                _ => {
                    return FaultOutcome::Failure {
                        divergence: checked,
                        latency_cycles: w.at,
                    }
                }
            }
        }
        if event == StepEvent::Stopped {
            break;
        }
        if executed >= budget {
            return FaultOutcome::Hang {
                latency_cycles: cpu.cycles(),
            };
        }
    }
    match cpu.exit() {
        Some(Exit::Halted(code)) => {
            if checked < golden.writes.len() {
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: golden.writes[checked].at,
                }
            } else if code != golden.exit_code {
                FaultOutcome::Failure {
                    divergence: checked,
                    latency_cycles: cpu.cycles(),
                }
            } else {
                FaultOutcome::NoEffect
            }
        }
        Some(Exit::ErrorMode(_)) => FaultOutcome::ErrorModeStop {
            latency_cycles: cpu.cycles(),
        },
        None => FaultOutcome::Hang {
            latency_cycles: cpu.cycles(),
        },
    }
}

/// `Pf` over a set of bridging records, optionally filtered by kind.
pub fn bridge_pf(records: &[BridgeRecord], kind: Option<BridgeKind>) -> f64 {
    let filtered: Vec<&BridgeRecord> = records
        .iter()
        .filter(|r| kind.is_none_or(|k| r.bridge.kind == k))
        .collect();
    if filtered.is_empty() {
        return 0.0;
    }
    filtered.iter().filter(|r| r.outcome.is_failure()).count() as f64 / filtered.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparc_asm::assemble;

    fn program() -> Program {
        assemble(
            r#"
            _start:
                set 0x40001000, %l0
                mov 7, %l1
                mov 0, %o0
            loop:
                add %o0, %l1, %o0
                st %o0, [%l0]
                subcc %l1, 1, %l1
                bne loop
                 nop
                halt
            "#,
        )
        .expect("assembles")
    }

    #[test]
    fn pair_enumeration_is_adjacent() {
        let cpu = Leon3::new(Leon3Config::default());
        let pairs = bridge_pairs(&cpu, Target::IntegerUnit);
        assert!(!pairs.is_empty());
        for (a, b) in &pairs {
            if a.0 == b.0 {
                assert_eq!(a.1 + 1, b.1, "same-net pairs must be adjacent bits");
            } else {
                assert_eq!(b.1, 0, "cross-net pairs couple MSB to LSB");
            }
        }
    }

    #[test]
    fn campaign_runs_and_classifies() {
        let records = BridgingCampaign::new(program(), Target::IntegerUnit)
            .with_sample(25, 0xB71D)
            .run(2);
        assert_eq!(records.len(), 50); // 25 pairs x 2 wired kinds
        let pf = bridge_pf(&records, None);
        assert!((0.0..=1.0).contains(&pf));
        // A PC-bit bridge exists somewhere in the IU sample space; overall
        // some shorts must matter and some must not.
        let and_pf = bridge_pf(&records, Some(BridgeKind::WiredAnd));
        let or_pf = bridge_pf(&records, Some(BridgeKind::WiredOr));
        assert!((0.0..=1.0).contains(&and_pf));
        assert!((0.0..=1.0).contains(&or_pf));
    }

    #[test]
    fn deterministic_pair_sampling() {
        let a = BridgingCampaign::new(program(), Target::IntegerUnit)
            .with_sample(10, 3)
            .pairs();
        let b = BridgingCampaign::new(program(), Target::IntegerUnit)
            .with_sample(10, 3)
            .pairs();
        assert_eq!(a, b);
    }
}
