//! Permanent-fault injection campaigns over the RTL model's nets.
//!
//! This crate implements the experimental methodology of the reproduced
//! paper (§4.1): single permanent hardware faults (stuck-at-1, stuck-at-0,
//! open-line) applied to all available points of the IU and CMEM units of
//! the Leon3-like model, with failures detected as **any mismatch of the
//! off-core memory-write stream** against the golden run — the
//! light-lockstep comparison boundary.
//!
//! * [`fault_sites`] enumerates the injectable universe (every bit of every
//!   net of the target domain) and [`sample_sites`] draws seeded, stratified
//!   samples from it (the paper used 25,478 CPU-hours for exhaustive
//!   campaigns; sampling makes the same study laptop-sized while exhaustive
//!   mode remains available).
//! * [`Campaign`] runs one workload against a fault list across all three
//!   fault models, multi-threaded, stopping each faulty run at its first
//!   observable divergence. The default [`Execution::Fork`] engine
//!   simulates the shared fault-free prefix once, forks every job from the
//!   resulting snapshot, and skips jobs whose nets the golden run never
//!   exercises after the injection instant; [`CampaignStats`] accounts for
//!   the cycles saved. [`Execution::FullReexecution`] re-runs every job
//!   from reset and produces bit-identical records.
//! * [`CampaignResult`] aggregates `Pf` (fraction of injected faults that
//!   become failures) and propagation-latency statistics per fault model.
//!
//! Campaigns are **crash-safe**: every job runs under panic isolation
//! (a panicking job retries once, then records as
//! [`FaultOutcome::EngineAnomaly`] instead of aborting the campaign), an
//! optional wall-clock watchdog ([`Campaign::with_deadline`]) bounds
//! runaway jobs, and [`Campaign::run_journaled`] / [`Campaign::resume`]
//! persist completed jobs to an append-only write-ahead [`journal`] so a
//! killed campaign picks up where it left off. Configuration mistakes
//! surface as structured [`CampaignError`]s from the `try_*` entry points.
//!
//! Campaigns can additionally model the chip's **safety mechanisms**
//! ([`SafetyConfig`]): a windowed lockstep comparator, CMEM parity and a
//! simulated hardware watchdog. Every record then carries a [`Detection`]
//! verdict and classifies into an ISO 26262 bucket ([`IsoBucket`]:
//! safe / detected / residual / latent); [`CampaignResult::coverage`]
//! aggregates per-mechanism diagnostic coverage and the residual-fault
//! fraction. With all mechanisms disabled (the default) campaigns are
//! bit-identical to the pre-safety suite.
//!
//! # Example
//!
//! ```
//! use fault_inject::{fault_sites, sample_sites, Campaign, Target};
//! use rtl_sim::FaultKind;
//! use workloads::{Benchmark, Params};
//!
//! let program = Benchmark::Intbench.program(&Params::default());
//! let campaign = Campaign::new(program, Target::IntegerUnit)
//!     .with_sample(40, 0xed)
//!     .with_kinds(&[FaultKind::StuckAt1]);
//! let result = campaign.run(2);
//! let pf = result.pf(FaultKind::StuckAt1);
//! assert!((0.0..=1.0).contains(&pf));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridging;
mod campaign;
mod correlation;
mod error;
mod explain;
mod iss_campaign;
pub mod journal;
mod result;
mod safety;
mod sites;
mod static_analysis;
pub mod wire;

pub use bridging::{bridge_pairs, bridge_pf, BridgeRecord, BridgingCampaign};
pub use campaign::{
    Campaign, Execution, GoldenRun, InjectionInstant, PreparedWorkload, MAX_POOL_CHECKPOINTS,
};
pub use correlation::{
    fitted_model_from_obj, fitted_model_to_json, merge_correlation_shards, CellMeasurement,
    CorrelationCell, CorrelationReport, CorrelationShard, CorrelationSpec, DatasetSelection,
    DomainFit, PredictRequest, Prediction, SweepPoint,
};
pub use error::{CampaignError, JournalError};
pub use explain::{explain, explain_with_safety};
pub use iss_campaign::{arch_pf, ArchRecord, IssCampaign};
pub use result::{
    CampaignResult, CampaignStats, CoverageSummary, FaultOutcome, FaultRecord, ModelSummary,
};
pub use safety::{Detection, IsoBucket, Mechanism, SafetyConfig};
pub use sites::{
    fault_sites, sample_sites, targeted_sites, unit_bit_counts, AttackTarget, FaultSite, Target,
};
pub use static_analysis::{PrunedBy, StaticAnalysis, UnitObservability};
pub use wire::{merge_shards, ShardResult};
